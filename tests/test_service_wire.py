"""Tests for the compile-service wire codecs (repro.service.wire).

Every encoded payload goes through ``json.dumps``/``json.loads`` before
decoding — the tests exercise exactly what crosses the HTTP boundary,
including float exactness and tuple/list round-trips.
"""

import dataclasses
import json

import pytest

from repro import ScheduleOptions, Session, paper_case_study
from repro.core import SetGranularity
from repro.core.cache import graph_fingerprint
from repro.exec import (
    CompileJob,
    EvaluateJob,
    ExploreJob,
    JobResult,
    SweepJob,
)
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_sequential
from repro.service import (
    WIRE_VERSION,
    WireError,
    decode_job,
    decode_result,
    encode_job,
    encode_result,
)

COARSE = SetGranularity(rows_per_set=4)
COARSE_OPTIONS = ScheduleOptions(granularity=COARSE)


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def arch(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + 4)


def roundtrip(record):
    """The exact transformation the HTTP layer applies."""
    return json.loads(json.dumps(record))


class TestJobCodecs:
    def test_compile_job_with_graph_options_arch(self, canonical, arch):
        job = CompileJob(
            canonical, COARSE_OPTIONS, arch=arch,
            assume_canonical=True, key="c1",
        )
        decoded = decode_job(roundtrip(encode_job(job)))
        assert isinstance(decoded, CompileJob)
        assert decoded.key == "c1"
        assert decoded.assume_canonical is True
        assert decoded.options == COARSE_OPTIONS
        assert decoded.arch == arch
        assert graph_fingerprint(decoded.graph) == graph_fingerprint(canonical)

    def test_evaluate_job_model_name_and_flags(self):
        job = EvaluateJob("tinyyolov3", want_energy=False, key="e1")
        decoded = decode_job(roundtrip(encode_job(job)))
        assert isinstance(decoded, EvaluateJob)
        assert decoded.graph == "tinyyolov3"
        assert decoded.want_energy is False
        assert decoded.options is None and decoded.arch is None

    def test_sweep_job_with_spec_graphs_and_overrides(self, canonical):
        spec = BenchmarkSpec("tiny", (8, 8, 3), base_layers=3, min_pes=4)
        job = SweepJob(
            (spec, "tinyyolov3"),
            xs=(2, 4),
            options_overrides={"granularity": COARSE, "mapping": "wdup"},
            graphs={"tiny": canonical},
            key="s1",
        )
        decoded = decode_job(roundtrip(encode_job(job)))
        assert isinstance(decoded, SweepJob)
        assert decoded.benchmarks[0] == spec
        assert decoded.benchmarks[1] == "tinyyolov3"
        assert decoded.xs == (2, 4)
        assert decoded.options_overrides["granularity"] == COARSE
        assert decoded.options_overrides["mapping"] == "wdup"
        assert graph_fingerprint(decoded.graphs["tiny"]) == graph_fingerprint(
            canonical
        )

    def test_explore_job_carries_default_space_bound(self):
        job = ExploreJob("tinyyolov3", budget=7, seed=3, max_total_pes=64)
        record = roundtrip(encode_job(job))
        record["max_extra_pes"] = 32
        decoded = decode_job(record)
        assert isinstance(decoded, ExploreJob)
        assert decoded.model == "tinyyolov3"
        assert decoded.budget == 7 and decoded.seed == 3
        assert decoded.max_total_pes == 64
        assert decoded.space is not None  # default_space(max_extra_pes=32)

    def test_explore_job_without_bound_keeps_space_none(self):
        decoded = decode_job(roundtrip(encode_job(ExploreJob("tinyyolov3"))))
        assert decoded.space is None

    def test_verify_jobs_rejected(self, canonical):
        with pytest.raises(WireError, match="verify"):
            encode_job(EvaluateJob(canonical, verify=True))

    def test_custom_search_space_rejected(self):
        from repro.explore import default_space

        with pytest.raises(WireError, match="SearchSpace"):
            encode_job(ExploreJob("tinyyolov3", space=default_space()))

    def test_unknown_override_type_rejected(self):
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_job(
                SweepJob(("tinyyolov3",), options_overrides={"hooks": object()})
            )

    def test_wrong_version_rejected(self):
        record = encode_job(EvaluateJob("tinyyolov3"))
        record["version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_job(record)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="unknown job kind"):
            decode_job({"version": WIRE_VERSION, "kind": "teleport"})


class TestResultCodecs:
    @pytest.fixture(scope="class")
    def evaluate_envelope(self, canonical, arch):
        session = Session(arch)
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="e")
        ).result()
        session.close()
        assert result.ok
        return result

    def test_evaluate_envelope_roundtrip(self, evaluate_envelope):
        decoded = decode_result(roundtrip(encode_result("evaluate", evaluate_envelope)))
        assert decoded.ok
        assert decoded.key == evaluate_envelope.key
        assert decoded.value.metrics == evaluate_envelope.value.metrics
        assert decoded.value.energy == evaluate_envelope.value.energy
        assert decoded.timings == evaluate_envelope.timings
        assert decoded.cache_misses == evaluate_envelope.cache_misses
        assert decoded.cache_stages == evaluate_envelope.cache_stages
        assert decoded.attempts == evaluate_envelope.attempts
        assert decoded.backend == evaluate_envelope.backend

    def test_compile_envelope_roundtrip(self, canonical, arch):
        session = Session(arch)
        result = session.submit(
            CompileJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        ).result()
        session.close()
        decoded = decode_result(roundtrip(encode_result("compile", result)))
        assert decoded.ok
        local = result.value.evaluate()
        remote = decoded.value.evaluate()
        assert dataclasses.asdict(remote) == dataclasses.asdict(local)

    def test_sweep_envelope_roundtrip(self, canonical):
        spec = BenchmarkSpec(
            "tiny",
            canonical.shape_of(canonical.input_names()[0]).hwc,
            base_layers=len(canonical.base_layers()),
            min_pes=minimum_pe_requirement(canonical, paper_case_study(1).crossbar),
        )
        session = Session(paper_case_study(1))
        result = session.submit(
            SweepJob(
                (spec,), xs=(2,),
                options_overrides={"granularity": COARSE},
                graphs={spec.name: canonical},
            )
        ).result()
        session.close()
        decoded = decode_result(roundtrip(encode_result("sweep", result)))
        assert decoded.ok
        (local,) = result.value
        (remote,) = decoded.value
        assert remote.benchmark == local.benchmark
        assert remote.min_pes == local.min_pes
        assert remote.baseline == local.baseline
        assert remote.baseline_cache == local.baseline_cache
        assert remote.points == local.points
        assert remote.failures == local.failures

    def test_failed_envelope_roundtrip(self):
        session = Session(paper_case_study(1))
        result = session.submit(SweepJob(("no-such-benchmark",))).result()
        session.close()
        assert not result.ok
        decoded = decode_result(roundtrip(encode_result("sweep", result)))
        assert not decoded.ok
        assert decoded.error is not None
        assert decoded.error.kind == result.error.kind
        assert decoded.error.message == result.error.message
        assert decoded.error.traceback == result.error.traceback

    def test_result_version_rejected(self, evaluate_envelope):
        record = encode_result("evaluate", evaluate_envelope)
        record["version"] = 99
        with pytest.raises(WireError, match="version"):
            decode_result(record)

    def test_unknown_result_kind_rejected(self):
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_result("teleport", JobResult(key="x", value=object()))
