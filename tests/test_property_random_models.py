"""Property tests over randomly generated CNN graphs.

Hypothesis builds small random models (chains with optional branches,
pooling, upsampling, concats and residual adds), and the whole compiler
stack must uphold its invariants on every one of them:

* schedules are dependency- and resource-valid;
* CLSA-CIM never loses to layer-by-layer;
* busy cycles (total work) are conserved across configurations;
* the duplication rewrite preserves numerical semantics;
* Eq. 3 links utilizations and speedups exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model, validate_schedule
from repro.frontend import preprocess
from repro.ir import Executor, GraphBuilder
from repro.mapping import minimum_pe_requirement
from repro.sim import evaluate, speedup_eq3


@st.composite
def random_models(draw):
    """A small random CNN with realistic structural variety."""
    b = GraphBuilder("random")
    size = draw(st.sampled_from([8, 12, 16]))
    x = b.input((size, size, 2), name="in")
    current_size = size
    num_blocks = draw(st.integers(1, 3))
    for _ in range(num_blocks):
        choice = draw(st.sampled_from(["conv", "conv_pool", "branch", "residual"]))
        channels = draw(st.sampled_from([2, 4, 6]))
        kernel = draw(st.sampled_from([1, 3]))
        if choice == "conv":
            x = b.conv2d(x, channels, kernel=kernel, padding="same", use_bias=True)
            x = b.relu(x)
        elif choice == "conv_pool" and current_size >= 4:
            x = b.conv2d(x, channels, kernel=kernel, padding="same", use_bias=True)
            x = b.maxpool(x, 2)
            current_size //= 2
        elif choice == "branch":
            left = b.conv2d(x, channels, kernel=kernel, padding="same", use_bias=True)
            right = b.conv2d(x, channels, kernel=1, padding="same", use_bias=True)
            x = b.concat([left, right])
        else:  # residual
            inner = b.conv2d(x, channels, kernel=kernel, padding="same", use_bias=True)
            skip = b.conv2d(x, channels, kernel=1, padding="same", use_bias=True)
            x = b.add([inner, skip])
            x = b.relu(x)
    return b.graph


@settings(max_examples=25, deadline=None)
@given(model=random_models())
def test_property_compiler_invariants(model):
    canonical = preprocess(model, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    arch = paper_case_study(min_pes + 4)

    compiled = {}
    for mapping in ("none", "wdup"):
        for scheduling in ("layer-by-layer", "clsa-cim"):
            options = ScheduleOptions(mapping=mapping, scheduling=scheduling)
            compiled[options.paper_name] = compile_model(
                canonical, arch, options, assume_canonical=True
            )

    # 1. schedule validity (resource + data dependencies)
    for result in compiled.values():
        result.schedule.validate_intra_layer_order()
        if result.dependencies is not None:
            validate_schedule(result.schedule, result.dependencies)

    # 2. cross-layer never loses to layer-by-layer at equal mapping
    assert (
        compiled["xinf"].latency_cycles
        <= compiled["layer-by-layer"].latency_cycles
    )
    assert compiled["wdup+xinf"].latency_cycles <= compiled["wdup"].latency_cycles

    # 3. total work conserved
    totals = set()
    for result in compiled.values():
        busy = result.schedule.busy_cycles()
        totals.add(
            sum(
                result.placement.tilings[layer].num_pes * cycles
                for layer, cycles in busy.items()
            )
        )
    assert len(totals) == 1

    # 4. Eq. 3 is exact
    baseline = evaluate(compiled["layer-by-layer"])
    for name in ("wdup", "xinf", "wdup+xinf"):
        metrics = evaluate(compiled[name])
        assert speedup_eq3(metrics, baseline) == pytest.approx(
            metrics.speedup_over(baseline), rel=1e-9
        )


@settings(max_examples=15, deadline=None)
@given(model=random_models(), batch_size=st.integers(2, 4))
def test_property_csr_and_python_engines_identical(model, batch_size):
    """The columnar kernels match the reference schedulers set-for-set.

    For every random graph: static, dynamic and batch schedules are
    identical point-wise between ``engine='csr'`` and
    ``engine='python'``, and the array-backed simulator replay
    reproduces the analytical makespan of both.
    """
    from repro.core import cross_layer_schedule_batch
    from repro.sim import simulate

    canonical = preprocess(model, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    arch = paper_case_study(min_pes + 4)

    def keys(schedule):
        return sorted(
            (t.layer, t.set_index, t.image, t.start, t.end, t.rect)
            for t in schedule.tasks
        )

    for order_mode in ("static", "dynamic"):
        compiled = {}
        for engine in ("csr", "python"):
            compiled[engine] = compile_model(
                canonical,
                arch,
                ScheduleOptions(order_mode=order_mode, engine=engine),
                assume_canonical=True,
            )
        assert keys(compiled["csr"].schedule) == keys(compiled["python"].schedule)
        validate_schedule(compiled["csr"].schedule, compiled["csr"].dependencies)

    csr, ref = compiled["csr"], compiled["python"]
    fast = cross_layer_schedule_batch(
        csr.mapped, csr.dependencies, batch_size, engine="csr"
    )
    slow = cross_layer_schedule_batch(
        ref.mapped, ref.dependencies, batch_size, engine="python"
    )
    assert keys(fast.schedule) == keys(slow.schedule)
    assert fast.image_spans == slow.image_spans

    for result in (csr, ref):
        replay = simulate(result)
        assert replay.finish_cycles == result.schedule.makespan


@settings(max_examples=15, deadline=None)
@given(model=random_models(), seed=st.integers(0, 10_000))
def test_property_duplication_preserves_semantics(model, seed):
    """The wdup rewrite never changes the network's function."""
    model.initialize_weights(seed=seed)
    canonical = preprocess(model, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    arch = paper_case_study(min_pes + 3)
    compiled = compile_model(
        canonical, arch, ScheduleOptions(mapping="wdup"), assume_canonical=True
    )
    in_shape = canonical.shape_of(canonical.input_names()[0]).hwc
    image = np.random.default_rng(seed).normal(size=in_shape)
    expected = Executor(canonical).run(image)
    actual = Executor(compiled.mapped).run(image)
    expected_list = sorted(expected.values(), key=lambda a: a.shape)
    actual_list = sorted(actual.values(), key=lambda a: a.shape)
    for exp, act in zip(expected_list, actual_list):
        np.testing.assert_allclose(act, exp, atol=1e-10)
