"""Unit tests for the unified static verifier (repro.verify).

Covers the diagnostics vocabulary, the rule registry, the IR and
architecture rule packs (including error paths the historical
validators never had tests for), the placement/sets/duplication rules,
and the deprecated shims' one-shot warnings and message parity.
"""

import dataclasses

import pytest

from repro.arch import paper_case_study
from repro.arch.memory import DramSpec
from repro.arch.tile import GpeuSpec
from repro.exec.runtime import reset_deprecation_warnings
from repro.frontend import preprocess
from repro.ir import Graph, GraphBuilder, GraphError, Identity, Input
from repro.mapping import minimum_pe_requirement
from repro.session import Session
from repro.verify import (
    Diagnostic,
    Location,
    Rule,
    Severity,
    VerificationError,
    VerifyContext,
    VerifyReport,
    assert_graph,
    graph_issues,
    register_rule,
    resolve_rule,
    rule_names,
    rules_for,
    unregister_rule,
    verify_context,
    verify_graph,
)


def tiny_graph() -> Graph:
    b = GraphBuilder("tiny")
    x = b.input((8, 8, 2), name="in")
    c = b.conv2d(x, 4, kernel=3, padding="same", name="c1")
    r = b.relu(c, name="r1")
    b.maxpool(r, 2, name="p1")
    return b.graph


@pytest.fixture(scope="module")
def compiled_tiny():
    """One compiled tiny model shared by the placement/sets rule tests."""
    from repro.models import build

    canonical = preprocess(build("tiny_sequential"), quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    session = Session(paper_case_study(min_pes + 4))
    return session.compile(canonical, assume_canonical=True)


# ---------------------------------------------------------------------------
# diagnostics model
# ---------------------------------------------------------------------------


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str(self):
        assert str(Severity.ERROR) == "error"

    def test_parse(self):
        assert Severity.parse("warning") is Severity.WARNING
        assert Severity.parse(30) is Severity.ERROR
        assert Severity.parse(Severity.INFO) is Severity.INFO

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestLocation:
    def test_empty_is_falsy(self):
        assert not Location()
        assert Location(layer="c1")

    def test_str_and_dict(self):
        loc = Location(layer="c1", set_index=3, pe=7, cycle=100)
        assert str(loc) == "layer=c1 set=3 pe=7 cycle=100"
        assert loc.to_dict() == {"layer": "c1", "set_index": 3, "pe": 7, "cycle": 100}


class TestDiagnostic:
    def test_format(self):
        diag = Diagnostic(
            rule="x.y",
            severity=Severity.ERROR,
            message="boom",
            location=Location(layer="c1"),
            hint="fix it",
        )
        assert diag.format() == "error[x.y] boom (at layer=c1) — hint: fix it"

    def test_format_bare(self):
        diag = Diagnostic(rule="x.y", severity=Severity.INFO, message="note")
        assert diag.format() == "info[x.y] note"


class TestVerifyReport:
    def _report(self) -> VerifyReport:
        report = VerifyReport(target="m", rules_run=("a", "b"))
        report.extend(
            [
                Diagnostic(rule="a", severity=Severity.ERROR, message="e1"),
                Diagnostic(rule="b", severity=Severity.WARNING, message="w1"),
            ]
        )
        return report

    def test_flags(self):
        report = self._report()
        assert not report.ok
        assert not report.clean
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert report.max_severity is Severity.ERROR
        assert report.fired_rules() == ("a", "b")
        assert [d.message for d in report.by_rule("a")] == ["e1"]
        assert len(report.at_least("warning")) == 2
        assert len(report.at_least(Severity.ERROR)) == 1

    def test_clean_report(self):
        report = VerifyReport(target="m", rules_run=("a",))
        assert report.ok and report.clean
        assert report.max_severity is None
        assert "clean" in report.summary()

    def test_extend_dedupes(self):
        report = self._report()
        report.extend([Diagnostic(rule="a", severity=Severity.ERROR, message="e1")])
        assert len(report) == 2

    def test_merged(self):
        other = VerifyReport(rules_run=("c",))
        other.extend([Diagnostic(rule="c", severity=Severity.INFO, message="i1")])
        merged = self._report().merged(other)
        assert len(merged) == 3
        assert merged.rules_run == ("a", "b", "c")

    def test_format_and_json(self):
        report = self._report()
        text = report.format()
        assert "1 error(s), 1 warning(s)" in text
        assert "error[a] e1" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 0}

    def test_raise_if_errors(self):
        with pytest.raises(VerificationError) as excinfo:
            self._report().raise_if_errors()
        # historical raising validators used AssertionError
        assert isinstance(excinfo.value, AssertionError)
        assert excinfo.value.report.errors


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_register_and_run_custom_rule(self):
        def check(ctx):
            return [
                Diagnostic(
                    rule="test.always",
                    severity=Severity.INFO,
                    message=f"saw graph {ctx.graph.name}",
                )
            ]

        rule = Rule(name="test.always", check=check, requires=("graph",))
        register_rule(rule)
        try:
            assert "test.always" in rule_names()
            report = verify_graph(tiny_graph())
            assert [d.message for d in report.by_rule("test.always")] == [
                "saw graph tiny"
            ]
        finally:
            unregister_rule("test.always")
        assert "test.always" not in rule_names()

    def test_duplicate_registration_refused(self):
        rule = Rule(name="test.dup", check=lambda ctx: [])
        register_rule(rule)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_rule(rule)
            register_rule(rule, replace=True)  # explicit replace is fine
        finally:
            unregister_rule("test.dup")

    def test_builtins_protected(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_rule("schedule.raw-race")

    def test_unregister_unknown(self):
        with pytest.raises(KeyError):
            unregister_rule("test.nope")

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="unknown rule"):
            resolve_rule("test.nope")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="cost"):
            Rule(name="x", check=lambda ctx: [], cost="medium")
        with pytest.raises(ValueError, match="unknown field"):
            Rule(name="x", check=lambda ctx: [], requires=("nonsense",))
        with pytest.raises(ValueError, match="non-empty"):
            Rule(name="", check=lambda ctx: [])

    def test_rules_for_filters_by_requirements(self):
        names = {r.name for r in rules_for(("graph",))}
        assert "ir.inputs" in names
        assert "schedule.raw-race" not in names

    def test_rules_for_cheap_drops_full_rules(self):
        available = ("graph", "arch", "mapped", "placement", "sets",
                     "dependencies", "schedule")
        all_names = {r.name for r in rules_for(available)}
        cheap = {r.name for r in rules_for(available, cost="cheap")}
        assert "schedule.buffer-capacity" in all_names - cheap
        assert "sets.partition" in all_names - cheap

    def test_crashing_rule_becomes_diagnostic(self):
        def check(ctx):
            raise RuntimeError("kaboom")

        register_rule(Rule(name="test.crash", check=check, requires=("graph",)))
        try:
            report = verify_graph(tiny_graph())
            [diag] = report.by_rule("test.crash")
            assert diag.severity is Severity.ERROR
            assert "rule crashed" in diag.message
        finally:
            unregister_rule("test.crash")


# ---------------------------------------------------------------------------
# IR rules (the historical validate_graph error paths, now per-rule)
# ---------------------------------------------------------------------------


class TestIrRules:
    def test_clean_graph(self):
        report = verify_graph(tiny_graph())
        assert report.clean
        assert "ir.inputs" in report.rules_run
        # schedule rules cannot run on a bare graph
        assert "schedule.raw-race" in report.rules_skipped

    def test_no_inputs(self):
        g = Graph("empty")
        g.add(Identity("a", []))
        report = verify_graph(g)
        assert report.by_rule("ir.inputs")[0].message == "graph has no Input nodes"
        assert (
            report.by_rule("ir.producers")[0].message
            == "non-input node 'a' has no producers"
        )

    def test_cycle(self):
        g = Graph("cyc")
        g.add(Input("in", shape=(4, 4, 1)))
        g.add(Identity("a", ["b"]))
        g.add(Identity("b", ["a"]))
        report = verify_graph(g)
        assert report.fired_rules() == ("ir.structure",)
        assert "cycle" in report.by_rule("ir.structure")[0].message

    def test_bad_regions(self):
        class BadRegions(Identity):
            def input_regions(self, out_rect, input_shapes, out_shape):
                return []

        b = GraphBuilder("badr")
        b.input((4, 4, 1), name="in")
        g = b.graph
        g.add(BadRegions("bad", ["in"]))
        report = verify_graph(g)
        assert (
            report.by_rule("ir.regions")[0].message
            == "'bad' returned 0 input regions for 1 inputs"
        )

    def test_region_out_of_bounds(self):
        from repro.ir.tensor import Rect

        class HugeRegions(Identity):
            def input_regions(self, out_rect, input_shapes, out_shape):
                return [Rect(0, 0, 100, 100)]

        b = GraphBuilder("huge")
        b.input((4, 4, 1), name="in")
        g = b.graph
        g.add(HugeRegions("big", ["in"]))
        report = verify_graph(g)
        [diag] = report.by_rule("ir.regions")
        assert "exceeds bounds" in diag.message

    def test_dead_layer(self):
        # Shape forbids zero dims, so a zero-element base layer can only
        # arise from a corrupted/injected shape table — exercise the
        # rule through the context memo.
        class FakeShape:
            num_elements = 0

        g = tiny_graph()
        ctx = VerifyContext(graph=g, target="t")
        ctx._memo["topo_order"] = g.topological_order()
        shapes = dict.fromkeys(g.topological_order(), FakeShape())
        ctx._memo["graph_shapes"] = shapes
        report = verify_context(ctx, rules=("ir.dead-layer",))
        assert (
            report.by_rule("ir.dead-layer")[0].message
            == "base layer 'c1' has an empty output"
        )

    def test_unconsumed_input_is_warning(self):
        b = GraphBuilder("un")
        x = b.input((4, 4, 1), name="used")
        b.input((4, 4, 1), name="dangling")
        b.relu(x, name="r")
        report = verify_graph(b.graph)
        assert report.ok  # warnings do not fail verification
        [diag] = report.by_rule("ir.unconsumed")
        assert diag.severity is Severity.WARNING
        assert diag.message == "input 'dangling' is never consumed"

    def test_inference_failure_is_structural(self):
        b = GraphBuilder("t")
        x = b.input((4, 4, 1), name="in")
        b.conv2d(x, 2, kernel=1, name="c")
        g = b.graph
        g["c"].out_channels = 0  # corrupt: Shape rejects 0 channels
        report = verify_graph(g)
        assert report.fired_rules() == ("ir.structure",)


# ---------------------------------------------------------------------------
# architecture rules (the historical check_requirements paths)
# ---------------------------------------------------------------------------


class TestArchRules:
    def test_clean(self):
        g = tiny_graph()
        arch = paper_case_study(minimum_pe_requirement(g, paper_case_study(1).crossbar))
        assert verify_graph(g, arch).clean

    def test_pe_capacity(self):
        b = GraphBuilder("wide")
        x = b.input((8, 8, 2), name="in")
        b.conv2d(x, 300, kernel=3, padding="same", name="c1")  # 2 crossbars
        report = verify_graph(b.graph, paper_case_study(1))
        [diag] = report.by_rule("arch.pe-capacity")
        assert "weights must be storable at least once" in diag.message

    def test_no_buffers(self):
        arch = paper_case_study(150)
        tile = dataclasses.replace(
            arch.tile, input_buffer_bytes=0, output_buffer_bytes=0
        )
        report = verify_graph(tiny_graph(), dataclasses.replace(arch, tile=tile))
        assert (
            report.by_rule("arch.buffers")[0].message
            == "tiles have no buffers for partial IFM/OFM data"
        )

    def test_gpeu_unsupported_op(self):
        arch = paper_case_study(150)
        tile = dataclasses.replace(
            arch.tile, gpeu=GpeuSpec(supported_ops=("Identity",))
        )
        report = verify_graph(tiny_graph(), dataclasses.replace(arch, tile=tile))
        messages = [d.message for d in report.by_rule("arch.gpeu-support")]
        assert "GPEU does not support non-base op type 'MaxPool'" in messages

    def test_dram_too_small(self):
        arch = dataclasses.replace(
            paper_case_study(150), dram=DramSpec(capacity_bytes=1)
        )
        report = verify_graph(tiny_graph(), arch)
        assert (
            report.by_rule("arch.dram-capacity")[0].message
            == "feature maps exceed global DRAM capacity"
        )


# ---------------------------------------------------------------------------
# placement / duplication / set-partition rules
# ---------------------------------------------------------------------------


class TestMappingRules:
    def test_clean_compile_passes_all(self, compiled_tiny):
        from repro.verify import verify_compiled

        assert verify_compiled(compiled_tiny).clean

    def _with_placement(self, compiled, pe_ranges):
        placement = dataclasses.replace(
            compiled.placement, pe_ranges=dict(pe_ranges)
        )
        return dataclasses.replace(compiled, placement=placement)

    def test_place_bounds(self, compiled_tiny):
        from repro.verify import verify_compiled

        ranges = dict(compiled_tiny.placement.pe_ranges)
        layer = next(iter(ranges))
        lo, hi = ranges[layer]
        ranges[layer] = (lo, compiled_tiny.arch.num_pes + 50)
        report = verify_compiled(
            self._with_placement(compiled_tiny, ranges),
            rules=("place.bounds",),
        )
        [diag] = report.by_rule("place.bounds")
        assert "invalid PE range" in diag.message
        assert diag.location.layer == layer

    def test_place_overlap(self, compiled_tiny):
        from repro.verify import verify_compiled

        ranges = dict(compiled_tiny.placement.pe_ranges)
        layers = list(ranges)
        assert len(layers) >= 2
        ranges[layers[1]] = ranges[layers[0]]  # collide two layers
        report = verify_compiled(
            self._with_placement(compiled_tiny, ranges),
            rules=("place.overlap",),
        )
        assert report.by_rule("place.overlap")
        assert "PE oversubscription" in report.by_rule("place.overlap")[0].message

    def test_place_capacity_unplaced_layer(self, compiled_tiny):
        from repro.verify import verify_compiled

        ranges = dict(compiled_tiny.placement.pe_ranges)
        layer, _ = ranges.popitem()
        report = verify_compiled(
            self._with_placement(compiled_tiny, ranges),
            rules=("place.capacity",),
        )
        messages = [d.message for d in report.by_rule("place.capacity")]
        assert f"base layer '{layer}' is not placed on any PEs" in messages

    def test_place_capacity_wrong_width(self, compiled_tiny):
        from repro.verify import verify_compiled

        ranges = dict(compiled_tiny.placement.pe_ranges)
        layer = next(iter(ranges))
        lo, hi = ranges[layer]
        ranges[layer] = (lo, hi + 1)
        report = verify_compiled(
            self._with_placement(compiled_tiny, ranges),
            rules=("place.capacity",),
        )
        assert any(
            "crossbar tiling needs" in d.message
            for d in report.by_rule("place.capacity")
        )

    def test_duplication_ghost(self, compiled_tiny):
        from repro.verify import verify_compiled

        if compiled_tiny.rewrite is None or not compiled_tiny.rewrite.duplicated:
            pytest.skip("tiny model has no duplicated layers at this budget")
        rewrite = compiled_tiny.rewrite
        original, dup = next(iter(rewrite.duplicated.items()))
        corrupted = dataclasses.replace(
            dup, duplicates=list(dup.duplicates) + ["ghost"]
        )
        bad = dataclasses.replace(
            rewrite, duplicated={**rewrite.duplicated, original: corrupted}
        )
        report = verify_compiled(
            dataclasses.replace(compiled_tiny, rewrite=bad),
            rules=("mapping.duplication",),
        )
        assert any(
            "'ghost'" in d.message and "missing" in d.message
            for d in report.by_rule("mapping.duplication")
        )

    def test_sets_partition_gap_and_overlap(self, compiled_tiny):
        from repro.verify import verify_compiled

        layer = next(l for l, rects in compiled_tiny.sets.items() if len(rects) > 1)
        # gap: drop one set
        gapped = {**compiled_tiny.sets, layer: compiled_tiny.sets[layer][1:]}
        report = verify_compiled(
            dataclasses.replace(compiled_tiny, sets=gapped),
            rules=("sets.partition",),
        )
        assert any("uncovered" in d.message for d in report.by_rule("sets.partition"))
        # overlap: duplicate one set
        doubled = {
            **compiled_tiny.sets,
            layer: list(compiled_tiny.sets[layer]) + [compiled_tiny.sets[layer][0]],
        }
        report = verify_compiled(
            dataclasses.replace(compiled_tiny, sets=doubled),
            rules=("sets.partition",),
        )
        assert any("overlap" in d.message for d in report.by_rule("sets.partition"))


# ---------------------------------------------------------------------------
# deprecated shims
# ---------------------------------------------------------------------------


class TestShims:
    def test_validate_graph_parity_and_warning(self):
        from repro.ir.validate import validate_graph

        reset_deprecation_warnings()
        g = tiny_graph()
        with pytest.warns(DeprecationWarning, match="validate_graph"):
            assert validate_graph(g) == []
        # one-shot: the second call stays silent
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert validate_graph(g) == []

    def test_validate_graph_message_parity(self):
        from repro.ir.validate import validate_graph

        reset_deprecation_warnings()
        g = Graph("empty")
        g.add(Identity("a", []))
        with pytest.warns(DeprecationWarning):
            issues = validate_graph(g)
        assert issues == graph_issues(g)
        assert any("no Input nodes" in issue for issue in issues)

    def test_check_graph_raises(self):
        from repro.ir.validate import check_graph

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="check_graph"):
            with pytest.raises(GraphError, match="failed validation"):
                check_graph(Graph("empty"))

    def test_assert_graph_no_warning(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert_graph(tiny_graph())  # the supported path is warning-free

    def test_check_requirements_shim(self):
        from repro.arch.validate import RequirementReport, check_requirements

        reset_deprecation_warnings()
        g = tiny_graph()
        with pytest.warns(DeprecationWarning, match="check_requirements"):
            report = check_requirements(g, paper_case_study(1), pe_demand=99)
        assert isinstance(report, RequirementReport)
        assert not report.satisfied
        assert any("needs 99 PEs" in issue for issue in report.issues)

    def test_core_validators_warn(self, compiled_tiny):
        from repro.core import validate_schedule

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="validate_schedule"):
            validate_schedule(compiled_tiny.schedule, compiled_tiny.dependencies)
