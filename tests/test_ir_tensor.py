"""Unit tests for repro.ir.tensor: Shape, Rect and tiling helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import Rect, Shape, rect_grid, split_extent


class TestShape:
    def test_basic_properties(self):
        shape = Shape(4, 5, 3)
        assert shape.hwc == (4, 5, 3)
        assert shape.num_elements == 60
        assert shape.spatial_size == 20

    def test_from_tuple(self):
        assert Shape.from_tuple([7, 8, 9]) == Shape(7, 8, 9)

    def test_from_tuple_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Shape.from_tuple((1, 2))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Shape(0, 1, 1)
        with pytest.raises(ValueError):
            Shape(1, -2, 1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Shape(1.5, 2, 3)

    def test_with_channels(self):
        assert Shape(2, 3, 4).with_channels(9) == Shape(2, 3, 9)

    def test_full_rect(self):
        assert Shape(4, 6, 1).full_rect() == Rect(0, 0, 4, 6)

    def test_str(self):
        assert str(Shape(208, 208, 32)) == "(208, 208, 32)"

    def test_equality_and_hash(self):
        assert Shape(1, 2, 3) == Shape(1, 2, 3)
        assert hash(Shape(1, 2, 3)) == hash(Shape(1, 2, 3))
        assert Shape(1, 2, 3) != Shape(1, 2, 4)


class TestRect:
    def test_dimensions(self):
        rect = Rect(1, 2, 4, 7)
        assert rect.rows == 3
        assert rect.cols == 5
        assert rect.area == 15
        assert not rect.is_empty()

    def test_empty(self):
        assert Rect(3, 3, 3, 5).is_empty()
        assert Rect(3, 3, 2, 5).is_empty()
        assert Rect.empty().area == 0

    def test_negative_extent_clamps_to_zero(self):
        rect = Rect(5, 5, 2, 2)
        assert rect.rows == 0
        assert rect.cols == 0
        assert rect.area == 0

    def test_intersect(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersect(b) == Rect(2, 2, 4, 4)
        assert a.intersects(b)

    def test_disjoint_intersection_is_empty(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 2, 4, 4)
        assert a.intersect(b).is_empty()
        assert not a.intersects(b)

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(2, 3, 4, 5))
        assert outer.contains(outer)
        assert not outer.contains(Rect(5, 5, 11, 6))
        assert outer.contains(Rect.empty())  # empty is contained anywhere

    def test_contains_point(self):
        rect = Rect(1, 1, 3, 3)
        assert rect.contains_point(1, 1)
        assert rect.contains_point(2, 2)
        assert not rect.contains_point(3, 3)

    def test_clip(self):
        assert Rect(-2, -3, 12, 13).clip(10, 10) == Rect(0, 0, 10, 10)
        assert Rect(2, 2, 5, 5).clip(10, 10) == Rect(2, 2, 5, 5)

    def test_shift(self):
        assert Rect(1, 1, 2, 2).shift(3, -1) == Rect(4, 0, 5, 1)

    def test_union_bbox(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 6, 8)
        assert a.union_bbox(b) == Rect(0, 0, 6, 8)
        assert Rect.empty().union_bbox(b) == b
        assert a.union_bbox(Rect(0, 0, 0, 0)) == a

    def test_positions(self):
        rect = Rect(0, 0, 2, 2)
        assert list(rect.positions()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_str(self):
        assert str(Rect(0, 1, 2, 3)) == "[0:2, 1:3]"


class TestRectGrid:
    def test_exact_tiling(self):
        tiles = rect_grid(4, 4, 2, 2)
        assert len(tiles) == 4
        assert sum(t.area for t in tiles) == 16

    def test_ragged_tiling(self):
        tiles = rect_grid(5, 7, 2, 3)
        assert sum(t.area for t in tiles) == 35
        # all tiles within bounds
        bounds = Rect(0, 0, 5, 7)
        assert all(bounds.contains(t) for t in tiles)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            rect_grid(0, 4, 1, 1)
        with pytest.raises(ValueError):
            rect_grid(4, 4, 0, 1)

    @given(
        height=st.integers(1, 40),
        width=st.integers(1, 40),
        tile_rows=st.integers(1, 12),
        tile_cols=st.integers(1, 12),
    )
    def test_property_partition(self, height, width, tile_rows, tile_cols):
        """Tiles are disjoint and cover the full map exactly."""
        tiles = rect_grid(height, width, tile_rows, tile_cols)
        assert sum(t.area for t in tiles) == height * width
        for i, a in enumerate(tiles):
            assert not a.is_empty()
            for b in tiles[i + 1 :]:
                assert not a.intersects(b)


class TestSplitExtent:
    def test_even_split(self):
        assert split_extent(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split(self):
        parts = split_extent(10, 3)
        assert parts == [(0, 4), (4, 7), (7, 10)]

    def test_single_part(self):
        assert split_extent(7, 1) == [(0, 7)]

    def test_rejects_too_many_parts(self):
        with pytest.raises(ValueError):
            split_extent(2, 3)

    def test_rejects_non_positive_parts(self):
        with pytest.raises(ValueError):
            split_extent(5, 0)

    @given(extent=st.integers(1, 500), parts=st.integers(1, 50))
    def test_property_balanced_cover(self, extent, parts):
        """Parts are contiguous, cover [0, extent), sizes differ <= 1."""
        if parts > extent:
            with pytest.raises(ValueError):
                split_extent(extent, parts)
            return
        ranges = split_extent(extent, parts)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == extent
        sizes = [b - a for a, b in ranges]
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start
