"""Tests for the columnar scheduling kernels (CSR set graphs).

The CSR kernel engines must be *indistinguishable* from the
pure-Python reference schedulers: identical schedules point-wise for
the static, dynamic and batch policies, identical simulator replays,
and a faithful columnar round trip through the Schedule API and the
artifact serializer.
"""

import numpy as np
import pytest

from repro.arch import paper_case_study
from repro.core import (
    FINEST,
    Schedule,
    ScheduleColumns,
    ScheduleOptions,
    SetGranularity,
    SetTask,
    compile_model,
    cross_layer_schedule,
    cross_layer_schedule_batch,
    csr_batch_schedule,
    csr_dynamic_schedule,
    csr_static_schedule,
    determine_dependencies,
    determine_sets,
    intra_layer_order,
    set_graph_arrays,
    validate_arrays_schedule,
    validate_batch_arrays_schedule,
    validate_batch_schedule,
    validate_schedule,
)
from repro.core.dependencies import DependencyGraph
from repro.frontend import preprocess
from repro.ir import GraphBuilder, Rect
from repro.mapping import minimum_pe_requirement
from repro.sim import simulate


def chain_model(num_layers=3, size=8):
    b = GraphBuilder("chain")
    x = b.input((size, size, 3), name="in")
    for i in range(num_layers):
        x = b.conv2d(x, 4, kernel=3, padding="same", use_bias=False, name=f"c{i}")
    return b.graph


def branchy_model(size=12):
    """Pool / upsample / concat / residual variety in one graph."""
    b = GraphBuilder("branchy")
    x = b.input((size, size, 3), name="in")
    x = b.conv2d(x, 4, kernel=3, padding="same", use_bias=True, name="stem")
    left = b.conv2d(x, 4, kernel=3, padding="same", use_bias=True, name="left")
    left = b.maxpool(left, 2)
    left = b.upsample(left, 2)
    right = b.conv2d(x, 4, kernel=1, padding="same", use_bias=True, name="right")
    merged = b.concat([left, right])
    out = b.conv2d(merged, 4, kernel=3, padding="same", use_bias=True, name="head")
    skip = b.conv2d(merged, 4, kernel=1, padding="same", use_bias=True, name="skip")
    b.add([out, skip])
    return b.graph


def compiled_pair(graph, granularity=FINEST, order_mode="dynamic"):
    """(csr compiled, python compiled) of the same model/config."""
    canonical = preprocess(graph, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    arch = paper_case_study(min_pes + 8)
    results = []
    for engine in ("csr", "python"):
        options = ScheduleOptions(
            granularity=granularity, order_mode=order_mode, engine=engine
        )
        results.append(
            compile_model(canonical, arch, options, assume_canonical=True)
        )
    return results


def task_keys(schedule):
    return sorted(
        (t.layer, t.set_index, t.image, t.start, t.end, t.rect) for t in schedule.tasks
    )


class TestSetGraphArrays:
    def test_csr_matches_deps_dict(self):
        g = preprocess(branchy_model(), quantization=None).graph
        sets = determine_sets(g)
        dep = determine_dependencies(g, sets)
        arrays = set_graph_arrays(dep)

        assert arrays.layers == tuple(sets)
        assert arrays.num_sets == dep.num_sets()
        assert arrays.num_edges == dep.edge_count()
        for (layer, si), refs in dep.deps.items():
            gid = arrays.gid(layer, si)
            assert arrays.layers[arrays.layer_of[gid]] == layer
            assert int(arrays.set_index[gid]) == si
            rect = sets[layer][si]
            assert int(arrays.area[gid]) == rect.area
            assert (
                int(arrays.r0[gid]),
                int(arrays.c0[gid]),
                int(arrays.r1[gid]),
                int(arrays.c1[gid]),
            ) == (rect.r0, rect.c0, rect.r1, rect.c1)
            lo, hi = int(arrays.indptr[gid]), int(arrays.indptr[gid + 1])
            encoded = {int(p) for p in arrays.indices[lo:hi]}
            expected = {arrays.gid(rl, rsi) for rl, rsi in refs}
            assert encoded == expected

    def test_reverse_csr_is_transpose(self):
        g = preprocess(branchy_model(), quantization=None).graph
        dep = determine_dependencies(g, determine_sets(g))
        arrays = set_graph_arrays(dep)
        forward = set()
        for gid in range(arrays.num_sets):
            for pred in arrays.indices[arrays.indptr[gid] : arrays.indptr[gid + 1]]:
                forward.add((int(pred), gid))
        reverse = set()
        for gid in range(arrays.num_sets):
            for cons in arrays.rindices[arrays.rindptr[gid] : arrays.rindptr[gid + 1]]:
                reverse.add((gid, int(cons)))
        assert forward == reverse

    def test_memoized_on_dependency_graph(self):
        g = preprocess(chain_model(), quantization=None).graph
        dep = determine_dependencies(g, determine_sets(g))
        assert set_graph_arrays(dep) is set_graph_arrays(dep)

    def test_missing_deps_entry_raises(self):
        g = preprocess(chain_model(1), quantization=None).graph
        sets = determine_sets(g)
        broken = DependencyGraph(sets=sets, deps={})
        with pytest.raises(KeyError, match="no entry"):
            set_graph_arrays(broken)

    def test_lex_rank_orders_layer_names(self):
        g = preprocess(branchy_model(), quantization=None).graph
        dep = determine_dependencies(g, determine_sets(g))
        arrays = set_graph_arrays(dep)
        by_rank = sorted(range(len(arrays.layers)), key=lambda i: arrays.lex_rank[i])
        assert [arrays.layers[i] for i in by_rank] == sorted(arrays.layers)


class TestEngineIdentity:
    @pytest.mark.parametrize("order_mode", ["dynamic", "static"])
    def test_single_image_identity(self, order_mode):
        csr, ref = compiled_pair(branchy_model(), order_mode=order_mode)
        assert csr.schedule.makespan == ref.schedule.makespan
        assert task_keys(csr.schedule) == task_keys(ref.schedule)

    @pytest.mark.parametrize(
        "granularity",
        [FINEST, SetGranularity(rows_per_set=3),
         SetGranularity(rows_per_set=None, target_sets=4)],
    )
    def test_identity_across_granularities(self, granularity):
        csr, ref = compiled_pair(branchy_model(), granularity=granularity)
        assert task_keys(csr.schedule) == task_keys(ref.schedule)

    @pytest.mark.parametrize("policy", ["row_major", "column_major", "even_odd"])
    def test_static_identity_all_order_policies(self, policy):
        g = preprocess(branchy_model(), quantization=None).graph
        sets = determine_sets(g)
        dep = determine_dependencies(g, sets)
        order = intra_layer_order(sets, policy)
        fast = csr_static_schedule(set_graph_arrays(dep), order)
        slow = cross_layer_schedule(g, dep, order)
        validate_schedule(slow, dep)
        assert task_keys(fast) == task_keys(slow)

    @pytest.mark.parametrize("batch_size", [1, 2, 7])
    def test_batch_identity(self, batch_size):
        csr, ref = compiled_pair(branchy_model())
        fast = cross_layer_schedule_batch(
            csr.mapped, csr.dependencies, batch_size, engine="csr"
        )
        slow = cross_layer_schedule_batch(
            ref.mapped, ref.dependencies, batch_size, engine="python"
        )
        assert fast.makespan == slow.makespan
        assert fast.image_spans == slow.image_spans
        assert task_keys(fast.schedule) == task_keys(slow.schedule)
        validate_batch_schedule(fast, csr.dependencies)

    def test_batch_csr_validates(self):
        csr, _ = compiled_pair(chain_model())
        arrays = set_graph_arrays(csr.dependencies)
        schedule, _ = csr_batch_schedule(arrays, 3)
        n = arrays.num_sets
        start = np.zeros(3 * n, dtype=np.int64)
        end = np.zeros(3 * n, dtype=np.int64)
        for task in schedule.tasks:
            slot = task.image * n + arrays.gid(task.layer, task.set_index)
            start[slot] = task.start
            end[slot] = task.end
        validate_batch_arrays_schedule(arrays, 3, start, end)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ScheduleOptions(engine="fortran")
        csr, _ = compiled_pair(chain_model())
        with pytest.raises(ValueError, match="engine"):
            cross_layer_schedule_batch(csr.mapped, csr.dependencies, 2, engine="x")

    def test_sim_replay_identity(self):
        csr, ref = compiled_pair(branchy_model())
        fast = simulate(csr)
        slow = simulate(ref)
        assert fast.finish_cycles == csr.schedule.makespan
        assert slow.finish_cycles == ref.schedule.makespan
        assert fast.finish_cycles == slow.finish_cycles
        assert fast.per_layer_stall == slow.per_layer_stall
        assert fast.events_processed == fast.num_tasks
        assert task_keys(fast.schedule) == task_keys(slow.schedule)


class TestVectorizedValidation:
    def make_arrays(self):
        g = preprocess(chain_model(2), quantization=None).graph
        dep = determine_dependencies(g, determine_sets(g))
        return set_graph_arrays(dep)

    def test_accepts_valid_schedule(self):
        arrays = self.make_arrays()
        schedule = csr_dynamic_schedule(arrays)  # validates internally
        assert schedule.makespan > 0

    def test_rejects_dependency_violation(self):
        arrays = self.make_arrays()
        start = np.zeros(arrays.num_sets, dtype=np.int64)
        end = start + arrays.area  # every set starts at 0: deps violated
        with pytest.raises(AssertionError, match="data dependency violated"):
            validate_arrays_schedule(arrays, start, end)

    def test_rejects_resource_overlap(self):
        arrays = self.make_arrays()
        schedule = csr_dynamic_schedule(arrays)
        cols = schedule.columns()
        start = np.zeros(arrays.num_sets, dtype=np.int64)
        end = np.zeros(arrays.num_sets, dtype=np.int64)
        for row in range(len(cols)):
            gid = int(arrays.offsets[cols.layer_id[row]]) + int(cols.set_index[row])
            start[gid] = int(cols.start[row])
            end[gid] = int(cols.end[row])
        # Pull one set of the last layer onto its predecessor's slot.
        lid = arrays.num_layers - 1
        lo = int(arrays.offsets[lid])
        hi = int(arrays.offsets[lid + 1])
        assert hi - lo >= 2
        start[hi - 1] = start[hi - 2]
        end[hi - 1] = start[hi - 1] + int(arrays.area[hi - 1])
        with pytest.raises(AssertionError):
            validate_arrays_schedule(arrays, start, end)


class TestColumnarSchedule:
    def reference(self):
        return [
            SetTask("a", 0, Rect(0, 0, 1, 4), 0, 4),
            SetTask("a", 1, Rect(1, 0, 2, 4), 4, 8),
            SetTask("b", 0, Rect(0, 0, 1, 2), 6, 8),
        ]

    def both_forms(self):
        tasks = self.reference()
        row = Schedule(policy="p", tasks=list(tasks))
        col = Schedule(policy="p", columns=ScheduleColumns.from_tasks(tasks))
        return row, col

    def test_lazy_materialization_round_trips(self):
        row, col = self.both_forms()
        assert col.has_columns and not row.has_columns
        assert col.num_tasks == 3
        assert col.tasks == row.tasks  # materializes SetTask objects

    def test_queries_agree(self):
        row, col = self.both_forms()
        assert col.makespan == row.makespan == 8
        assert col.busy_cycles() == row.busy_cycles() == {"a": 8, "b": 2}
        assert col.layers() == row.layers() == ["a", "b"]
        assert col.layer_span("a") == row.layer_span("a") == (0, 8)
        assert col.per_layer_stats() == row.per_layer_stats()
        assert col.tasks_of("a") == row.tasks_of("a")
        col.validate_intra_layer_order()
        with pytest.raises(KeyError):
            col.layer_span("ghost")

    def test_columnar_overlap_detected(self):
        tasks = self.reference() + [SetTask("b", 1, Rect(1, 0, 2, 2), 7, 9)]
        col = Schedule(policy="p", columns=ScheduleColumns.from_tasks(tasks))
        with pytest.raises(AssertionError, match="resource violation"):
            col.validate_intra_layer_order()

    def test_mutation_invalidates_columns_and_caches(self):
        _, col = self.both_forms()
        assert col.makespan == 8
        col.tasks.append(SetTask("b", 1, Rect(1, 0, 2, 2), 8, 10))
        assert not col.has_columns  # stale columns dropped
        assert col.makespan == 10
        assert col.busy_cycles() == {"a": 8, "b": 4}
        # rebuilt columns reflect the mutation
        assert len(col.columns()) == 4

    def test_tasks_assignment_resets(self):
        row, _ = self.both_forms()
        row.tasks = self.reference()[:1]
        assert row.makespan == 4
        assert row.layers() == ["a"]

    def test_append_invalidates_cached_index(self):
        row, _ = self.both_forms()
        assert row.layers() == ["a", "b"]
        row.tasks.append(SetTask("c", 0, Rect(0, 0, 1, 1), 0, 1))
        assert row.layers() == ["a", "b", "c"]
        assert row.tasks_of("c")[0].set_index == 0

    def test_empty_schedule(self):
        empty = Schedule(policy="empty")
        assert empty.makespan == 0
        assert empty.layers() == []
        assert empty.busy_cycles() == {}
        empty_cols = Schedule(
            policy="empty", columns=ScheduleColumns.from_tasks([])
        )
        assert empty_cols.makespan == 0
        assert empty_cols.layers() == []
        assert empty_cols.busy_cycles() == {}
        empty_cols.validate_intra_layer_order()

    def test_schedule_equality(self):
        row, col = self.both_forms()
        assert row == col
        col2 = Schedule(policy="other", columns=col.columns())
        assert row != col2

    def test_pickle_round_trip_keeps_mutation_tracking(self):
        import pickle

        row, col = self.both_forms()
        for schedule in (row, col):
            clone = pickle.loads(pickle.dumps(schedule))
            assert clone == schedule
            assert clone.makespan == 8
            clone.tasks.append(SetTask("c", 0, Rect(0, 0, 1, 1), 100, 101))
            assert clone.makespan == 101  # caches invalidate after unpickle


class TestColumnarSerialization:
    def test_columnar_artifact_round_trip(self, tmp_path):
        from repro.core import CompiledModel

        csr, _ = compiled_pair(branchy_model())
        assert csr.schedule.has_columns
        path = tmp_path / "columnar.json"
        csr.save(str(path))
        loaded = CompiledModel.load(str(path))
        assert loaded.schedule.has_columns  # stays lazy after loading
        assert loaded.schedule.policy == csr.schedule.policy
        assert task_keys(loaded.schedule) == task_keys(csr.schedule)

    def test_row_form_schedule_dict_still_loads(self):
        from repro.ir.serialize import schedule_from_dict, schedule_to_dict

        tasks = [SetTask("a", 0, Rect(0, 0, 1, 4), 0, 4)]
        row = Schedule(policy="p", tasks=tasks)
        record = schedule_to_dict(row)
        assert "tasks" in record and "columns" not in record
        assert schedule_from_dict(record) == row

    def test_columnar_schedule_dict_shape(self):
        from repro.ir.serialize import schedule_from_dict, schedule_to_dict

        tasks = [SetTask("a", 0, Rect(0, 0, 1, 4), 0, 4, image=2)]
        col = Schedule(policy="p", columns=ScheduleColumns.from_tasks(tasks))
        record = schedule_to_dict(col)
        assert "columns" in record and "tasks" not in record
        assert record["columns"]["layers"] == ["a"]
        assert record["columns"]["image"] == [2]
        back = schedule_from_dict(record)
        assert back.has_columns
        assert back == col
