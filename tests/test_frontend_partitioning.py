"""Unit tests for graph partitioning into base / non-base layers."""

import numpy as np

from repro.frontend import (
    decouple_bias,
    decouple_padding,
    is_canonical,
    partition_graph,
)
from repro.ir import Executor, GraphBuilder, Shape


def yolo_stem():
    """416x416 stem reproducing Table I's padded (417, 417, 3) IFM."""
    b = GraphBuilder("stem")
    x = b.input((416, 416, 3), name="in")
    c = b.conv2d(x, 32, kernel=3, strides=2, padding="same", use_bias=True, name="conv")
    b.leaky_relu(c)
    return b.graph


class TestDecouplePadding:
    def test_table1_padded_input_shape(self):
        g = yolo_stem()
        rewritten = decouple_padding(g)
        assert rewritten == ["conv"]
        pad_name = g["conv"].inputs[0]
        assert g[pad_name].op_type == "Pad"
        # Table I: IFM of the first conv is (417, 417, 3)
        assert g.shape_of(pad_name) == Shape(417, 417, 3)
        assert g["conv"].padding == "valid"
        assert g.shape_of("conv") == Shape(208, 208, 32)

    def test_zero_padding_skips_pad_node(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, kernel=1, padding="same", name="conv")  # 1x1 needs no pad
        g = b.graph
        decouple_padding(g)
        assert g["conv"].padding == "valid"
        assert g["conv"].inputs == ["in"]

    def test_valid_convs_untouched(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, kernel=3, padding="valid", name="conv")
        g = b.graph
        assert decouple_padding(g) == []

    def test_numeric_equivalence(self):
        g = yolo_stem()
        g.initialize_weights(seed=3)
        image = np.random.default_rng(0).normal(size=(416, 416, 3))
        reference = Executor(g).run_single(image)
        decouple_padding(g)
        np.testing.assert_allclose(Executor(g).run_single(image), reference, atol=1e-12)


class TestDecoupleBias:
    def test_bias_moves_to_new_node(self):
        g = yolo_stem()
        g.initialize_weights(seed=3)
        original_bias = g["conv"].bias.copy()
        rewritten = decouple_bias(g)
        assert rewritten == ["conv"]
        assert not g["conv"].use_bias
        assert g["conv"].bias is None
        bias_node = g["conv_bias"]
        np.testing.assert_array_equal(bias_node.bias, original_bias)
        assert bias_node.inputs == ["conv"]

    def test_numeric_equivalence(self):
        g = yolo_stem()
        g.initialize_weights(seed=3)
        image = np.random.default_rng(1).normal(size=(416, 416, 3))
        reference = Executor(g).run_single(image)
        decouple_bias(g)
        np.testing.assert_allclose(Executor(g).run_single(image), reference, atol=1e-12)

    def test_unbiased_layers_untouched(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, use_bias=False, name="conv")
        g = b.graph
        assert decouple_bias(g) == []


class TestPartitionGraph:
    def test_canonical_form(self):
        g = yolo_stem()
        g.initialize_weights(seed=3)
        assert not is_canonical(g)
        report = partition_graph(g)
        assert is_canonical(g)
        assert report.base_layers == ["conv"]
        # Pad, BiasAdd and LeakyReLU are non-base layers
        assert len(report.non_base_layers) == 3

    def test_branching_graph(self):
        b = GraphBuilder("net")
        x = b.input((16, 16, 3), name="in")
        c1 = b.conv2d(x, 8, kernel=3, padding="same", use_bias=True)
        c2 = b.conv2d(x, 8, kernel=1, padding="valid", use_bias=True)
        b.add([c1, c2])
        g = b.graph
        g.initialize_weights(seed=7)
        image = np.random.default_rng(2).normal(size=(16, 16, 3))
        reference = Executor(g).run_single(image)
        report = partition_graph(g)
        assert is_canonical(g)
        assert len(report.base_layers) == 2
        np.testing.assert_allclose(Executor(g).run_single(image), reference, atol=1e-12)

    def test_dense_bias_decoupled(self):
        b = GraphBuilder("net")
        x = b.input((1, 1, 32), name="in")
        b.dense(x, 10, use_bias=True, name="fc")
        g = b.graph
        g.initialize_weights(seed=4)
        report = partition_graph(g)
        assert report.bias_decoupled == ["fc"]
        assert is_canonical(g)
