"""Tests for the resumable run store (repro.explore.store)."""

import json

import pytest

from repro.explore import RunRecord, RunStore
from repro.explore.store import StoreError

FP = "graph-fp-1"


def record(i, fidelity="full", feasible=True):
    return RunRecord(
        fingerprint=f"point-{i}",
        fidelity=fidelity,
        point={"extra_pes": i},
        feasible=feasible,
        objectives={"latency": float(i)} if feasible else {},
        info={"num_pes": 100.0 + i},
    )


class TestInMemory:
    def test_roundtrip_without_path(self):
        store = RunStore(None, FP)
        store.append(record(1))
        assert "point-1" in store
        assert store.get("point-1").objectives == {"latency": 1.0}
        assert store.reuse_hits == 1
        assert store.get("missing") is None
        assert store.reuse_hits == 1


class TestJournal:
    def test_create_append_reload(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
            store.append(record(2, fidelity="proxy"))
            store.append(record(3, feasible=False))

        reloaded = RunStore.open(path, FP, resume=True)
        assert len(reloaded) == 3
        assert reloaded.loaded == 3
        assert reloaded.get("point-2").fidelity == "proxy"
        assert reloaded.get("point-3").feasible is False
        assert reloaded.get("point-1").point == {"extra_pes": 1}

    def test_existing_store_requires_resume(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        with pytest.raises(StoreError, match="resume"):
            RunStore.open(path, FP, resume=False)

    def test_empty_file_does_not_require_resume(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        (tmp_path / "run.jsonl").write_text("")
        RunStore.open(path, FP, resume=False)

    def test_model_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunStore.open(path, FP).append(record(1))
        with pytest.raises(StoreError, match="different model"):
            RunStore.open(path, "other-graph", resume=True)

    def test_non_store_file_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(StoreError, match="not a run store"):
            RunStore.open(str(path), FP, resume=True)

    def test_future_format_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format": 99, "graph_fingerprint": FP})
            + "\n"
        )
        with pytest.raises(StoreError, match="format"):
            RunStore.open(str(path), FP, resume=True)

    def test_torn_final_line_dropped(self, tmp_path):
        """A crash mid-append loses only the torn record."""
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
            store.append(record(2))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "fingerprint": "point-3", "fid')

        reloaded = RunStore.open(path, FP, resume=True)
        assert len(reloaded) == 2
        assert "point-3" not in reloaded

    def test_append_after_torn_line_keeps_store_readable(self, tmp_path):
        """Resuming over a torn line truncates it on disk, so appended
        records never concatenate onto the fragment (regression: the
        store used to become permanently unopenable)."""
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "fingerprint": "point-2", "fid')

        with RunStore.open(path, FP, resume=True) as resumed:
            resumed.append(record(3))
            resumed.append(record(4))

        again = RunStore.open(path, FP, resume=True)
        assert {r.fingerprint for r in again} == {"point-1", "point-3", "point-4"}

    def test_complete_record_missing_newline_is_kept(self, tmp_path):
        """A record that lost only its terminator survives the resume
        (the newline is restored rather than the record dropped)."""
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        with open(path, "r+b") as handle:
            handle.seek(-1, 2)
            assert handle.read(1) == b"\n"
            handle.seek(-1, 2)
            handle.truncate()  # strip the trailing newline only

        with RunStore.open(path, FP, resume=True) as resumed:
            assert "point-1" in resumed
            resumed.append(record(2))
        again = RunStore.open(path, FP, resume=True)
        assert {r.fingerprint for r in again} == {"point-1", "point-2"}

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        lines = open(path).read().splitlines()
        lines.insert(1, "garbage{{{")
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="corrupt"):
            RunStore.open(path, FP, resume=True)

    def test_malformed_record_payload_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        store = RunStore.open(path, FP)
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "record", "fingerprint": "x"}) + "\n")
            handle.write("\n")  # blank lines are tolerated
            handle.write(json.dumps({"kind": "note", "text": "ignored"}) + "\n")
        with pytest.raises(StoreError, match="malformed"):
            RunStore.open(path, FP, resume=True)

    def test_append_after_reload_extends(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        with RunStore.open(path, FP, resume=True) as store:
            store.append(record(2))
        assert len(RunStore.open(path, FP, resume=True)) == 2

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        assert len(RunStore.open(path, FP, resume=True)) == 1

    def test_records_are_json_lines(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunStore.open(path, FP) as store:
            store.append(record(1))
        lines = open(path).read().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        payload = json.loads(lines[1])
        assert payload["kind"] == "record"
        assert payload["objectives"] == {"latency": 1.0}
