"""Tests for execution traces and Gantt exports."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.sim import (
    activity_records,
    ascii_gantt,
    to_csv_rows,
    utilization,
    utilization_timeline,
)


@pytest.fixture(scope="module")
def compiled():
    g = tiny_sequential()
    canonical = preprocess(g, quantization=None).graph
    arch = paper_case_study(minimum_pe_requirement(canonical, CrossbarSpec()) + 4)
    return compile_model(g, arch, ScheduleOptions(mapping="wdup", scheduling="clsa-cim"))


class TestActivityRecords:
    def test_every_layer_covered(self, compiled):
        records = activity_records(compiled)
        assert {r.layer for r in records} == set(compiled.schedule.layers())

    def test_busy_time_preserved(self, compiled):
        records = activity_records(compiled)
        busy_from_records: dict[str, int] = {}
        for record in records:
            busy_from_records[record.layer] = busy_from_records.get(record.layer, 0) + (
                record.end - record.start
            )
        assert busy_from_records == compiled.schedule.busy_cycles()

    def test_origin_mapping(self, compiled):
        for record in activity_records(compiled):
            assert record.origin in compiled.canonical.base_layers()

    def test_intervals_merged(self, compiled):
        """Back-to-back tasks merge into one record."""
        records = activity_records(compiled)
        per_layer = {}
        for record in records:
            per_layer.setdefault(record.layer, []).append(record)
        for layer, layer_records in per_layer.items():
            layer_records.sort(key=lambda r: r.start)
            for earlier, later in zip(layer_records, layer_records[1:]):
                assert later.start > earlier.end  # gaps only


class TestCsv:
    def test_header_and_rows(self, compiled):
        rows = to_csv_rows(compiled)
        assert rows[0] == "layer,origin,num_pes,start_cycles,end_cycles"
        assert len(rows) == len(activity_records(compiled)) + 1
        for line in rows[1:]:
            parts = line.split(",")
            assert len(parts) == 5
            assert int(parts[4]) > int(parts[3])


class TestAsciiGantt:
    def test_contains_all_layers(self, compiled):
        chart = ascii_gantt(compiled)
        for layer in compiled.schedule.layers():
            assert layer[:28] in chart

    def test_mentions_config(self, compiled):
        assert "wdup+xinf" in ascii_gantt(compiled)

    def test_busy_marks_present(self, compiled):
        assert "#" in ascii_gantt(compiled)

    def test_empty_schedule(self):
        from repro.core import CompiledModel, Schedule, ScheduleOptions
        from repro.mapping import Placement

        empty = CompiledModel(
            arch=paper_case_study(1),
            options=ScheduleOptions(),
            canonical=None,
            mapped=type("G", (), {"name": "empty"})(),
            placement=Placement(arch=paper_case_study(1)),
            schedule=Schedule(policy="clsa-cim"),
        )
        assert ascii_gantt(empty) == "(empty schedule)"


class TestUtilizationTimeline:
    def test_bucket_count(self, compiled):
        timeline = utilization_timeline(compiled, buckets=20)
        assert len(timeline) == 20

    def test_values_in_unit_interval(self, compiled):
        for value in utilization_timeline(compiled, buckets=25):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_mean_matches_eq2(self, compiled):
        """Average of the timeline equals the Eq. 2 utilization."""
        timeline = utilization_timeline(compiled, buckets=200)
        mean = sum(timeline) / len(timeline)
        expected = utilization(compiled.schedule, compiled.placement)
        assert mean == pytest.approx(expected, rel=1e-6)


class TestPerPeRecords:
    def test_every_pe_covered(self, compiled):
        from repro.sim import per_pe_records

        records = per_pe_records(compiled)
        assert len(records) == compiled.arch.num_pes
        assert [r.pe for r in records] == list(range(compiled.arch.num_pes))

    def test_idle_pes_have_no_layer(self, compiled):
        from repro.sim import per_pe_records

        records = per_pe_records(compiled)
        used = compiled.placement.pes_used
        idle = [r for r in records if r.layer is None]
        assert len(idle) == compiled.arch.num_pes - used
        assert all(r.busy_cycles == 0 for r in idle)

    def test_busy_cycles_match_layer_busy(self, compiled):
        from repro.sim import per_pe_records

        busy = compiled.schedule.busy_cycles()
        for record in per_pe_records(compiled):
            if record.layer is not None:
                assert record.busy_cycles == busy[record.layer]

    def test_eq2_from_pe_records(self, compiled):
        """Summing per-PE activity reproduces the Eq. 2 utilization."""
        from repro.sim import per_pe_records, utilization

        records = per_pe_records(compiled)
        makespan = compiled.schedule.makespan
        mean_activity = sum(r.busy_cycles for r in records) / (
            compiled.arch.num_pes * makespan
        )
        assert mean_activity == pytest.approx(
            utilization(compiled.schedule, compiled.placement)
        )

    def test_tile_assignment(self, compiled):
        from repro.sim import per_pe_records

        per_tile = compiled.arch.tile.pes_per_tile
        for record in per_pe_records(compiled):
            assert record.tile == record.pe // per_tile


class TestScheduleJson:
    def test_round_trip_fields(self, compiled):
        import json

        from repro.sim import schedule_to_json

        payload = json.loads(schedule_to_json(compiled))
        assert payload["configuration"] == "wdup+xinf"
        assert payload["makespan_cycles"] == compiled.schedule.makespan
        assert payload["num_pes"] == compiled.arch.num_pes
        assert len(payload["tasks"]) == len(compiled.schedule.tasks)

    def test_tasks_sorted_and_consistent(self, compiled):
        import json

        from repro.sim import schedule_to_json

        payload = json.loads(schedule_to_json(compiled))
        starts = [task["start"] for task in payload["tasks"]]
        assert starts == sorted(starts)
        for task in payload["tasks"]:
            assert task["end"] > task["start"]
            r0, c0, r1, c1 = task["rect"]
            assert (r1 - r0) * (c1 - c0) == task["end"] - task["start"]
            assert task["origin"] in compiled.canonical.base_layers()
