"""Tests for the ``explore`` CLI subcommand."""

import json
import os

import pytest

from repro.cli import main


def run_explore(tmp_path, capsys, *extra, budget="6", model="tiny_sequential"):
    out = str(tmp_path / "store.jsonl")
    code = main(
        ["explore", "--model", model, "--strategy", "random",
         "--budget", budget, "--seed", "7", "--out", out,
         "--max-extra-pes", "16", *extra]
    )
    captured = capsys.readouterr()
    return code, captured.out + captured.err, out


class TestExploreCommand:
    def test_text_output(self, tmp_path, capsys):
        code, out, store = run_explore(tmp_path, capsys)
        assert code == 0
        assert "Pareto frontier" in out
        assert "evaluated 6" in out
        assert os.path.exists(store)

    def test_journals_every_point(self, tmp_path, capsys):
        _, _, store = run_explore(tmp_path, capsys)
        lines = [json.loads(line) for line in open(store).read().splitlines()]
        assert lines[0]["kind"] == "header"
        assert len([entry for entry in lines if entry["kind"] == "record"]) == 6

    def test_resume_reevaluates_nothing(self, tmp_path, capsys):
        run_explore(tmp_path, capsys)
        code, out, _ = run_explore(tmp_path, capsys, "--resume")
        assert code == 0
        assert "evaluated 0 (+0 proxy)" in out
        assert "compiles this run: 0" in out

    def test_existing_store_without_resume_errors(self, tmp_path, capsys):
        run_explore(tmp_path, capsys)
        code, out, _ = run_explore(tmp_path, capsys)
        assert code == 2
        assert "--resume" in out

    def test_csv_format(self, tmp_path, capsys):
        code, out, _ = run_explore(tmp_path, capsys, "--format", "csv")
        assert code == 0
        lines = [line for line in out.splitlines() if line]
        assert lines[0].startswith("latency,energy")
        assert len(lines) >= 2  # header + at least one frontier point

    def test_json_format(self, tmp_path, capsys):
        code, out, _ = run_explore(tmp_path, capsys, "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["strategy"] == "random"
        assert payload["counters"]["evaluated_full"] == 6
        assert payload["frontier"]
        for entry in payload["frontier"]:
            assert set(entry["values"]) == {"latency", "energy"}

    def test_objectives_flag(self, tmp_path, capsys):
        code, out, _ = run_explore(
            tmp_path, capsys, "--objectives", "latency", "utilization",
            "--format", "json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["objectives"] == ["latency", "utilization"]

    def test_max_total_pes(self, tmp_path, capsys):
        code, out, _ = run_explore(
            tmp_path, capsys, "--max-total-pes", "12", "--format", "json"
        )
        assert code == 0
        assert json.loads(out)["counters"]["infeasible"] > 0

    def test_bad_space_bounds_exit_cleanly(self, tmp_path, capsys):
        """Space-construction errors get the explore: message + exit 2,
        not a traceback (regression)."""
        code, out, _ = run_explore(tmp_path, capsys, "--max-extra-pes", "2")
        assert code == 2
        assert "explore:" in out
        assert "hi must be >= lo" in out

    def test_strategy_choices_enforced(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explore", "--model", "tiny_sequential",
                  "--strategy", "annealing"])

    def test_objective_choices_enforced(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explore", "--model", "tiny_sequential",
                  "--objectives", "speed"])

    def test_help_documents_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["explore", "--help"])
        out = capsys.readouterr().out
        for flag in ("--strategy", "--budget", "--objectives",
                     "--resume", "--out", "--jobs", "--seed"):
            assert flag in out

    def test_successive_halving_via_cli(self, tmp_path, capsys):
        out_path = str(tmp_path / "sh.jsonl")
        code = main(
            ["explore", "--model", "tiny_sequential",
             "--strategy", "successive-halving", "--budget", "6",
             "--seed", "3", "--out", out_path, "--max-extra-pes", "16"]
        )
        assert code == 0
        assert "proxy" in capsys.readouterr().out


class TestAcceptance:
    """The issue's acceptance scenario, on the real tinyyolov3 model."""

    def test_tinyyolov3_budget_40_resumable(self, tmp_path, capsys):
        store = str(tmp_path / "tinyyolov3.jsonl")
        args = ["explore", "--model", "tinyyolov3", "--strategy", "random",
                "--budget", "40", "--resume", "--out", store,
                "--format", "json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        # every evaluated point journalled
        records = [
            json.loads(line) for line in open(store).read().splitlines()
        ][1:]
        assert len(records) == first["counters"]["evaluated_full"]
        # non-trivial (latency, energy) frontier: >= 2 points with
        # genuinely different tradeoffs
        frontier = first["frontier"]
        assert len(frontier) >= 2
        assert len({e["values"]["latency"] for e in frontier}) >= 2
        assert len({e["values"]["energy"] for e in frontier}) >= 2

        # second invocation: zero duplicate compiles
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["counters"]["compiles"] == 0
        assert second["counters"]["evaluated_full"] == 0
        assert second["counters"]["reused_full"] == 40
        assert second["frontier"] == frontier
