"""Tests for the event-driven simulation engine and cost models."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model, validate_schedule
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_csp, tiny_dual_head, tiny_sequential
from repro.sim import CostModelConfig, NocCostModel, ZeroCostModel, simulate


def compile_xinf(graph, extra=8, mapping="none"):
    canonical = preprocess(graph, quantization=None).graph
    arch = paper_case_study(minimum_pe_requirement(canonical, CrossbarSpec()) + extra)
    return compile_model(
        graph, arch, ScheduleOptions(mapping=mapping, scheduling="clsa-cim")
    )


class TestZeroCostReplay:
    @pytest.mark.parametrize(
        "factory", [tiny_sequential, tiny_csp, tiny_dual_head]
    )
    def test_replay_matches_analytical_makespan(self, factory):
        """Replaying a schedule with free forwarding reproduces the
        analytical scheduler's makespan exactly."""
        compiled = compile_xinf(factory())
        result = simulate(compiled)
        assert result.finish_cycles == compiled.latency_cycles

    def test_replay_with_duplication(self):
        compiled = compile_xinf(tiny_sequential(), mapping="wdup")
        result = simulate(compiled)
        assert result.finish_cycles == compiled.latency_cycles

    def test_all_sets_executed(self):
        compiled = compile_xinf(tiny_dual_head())
        result = simulate(compiled)
        assert result.num_tasks == compiled.dependencies.num_sets()
        assert result.events_processed == result.num_tasks

    def test_schedule_is_valid(self):
        compiled = compile_xinf(tiny_csp())
        result = simulate(compiled)
        validate_schedule(result.schedule, compiled.dependencies)

    def test_zero_edge_delay(self):
        compiled = compile_xinf(tiny_sequential())
        result = simulate(compiled)
        assert result.total_edge_delay_cycles == 0

    def test_explicit_zero_cost_model(self):
        compiled = compile_xinf(tiny_sequential())
        free = simulate(compiled)
        explicit = simulate(compiled, ZeroCostModel())
        # ZeroCostModel goes through the cost-model path (different
        # ready ordering) but charges nothing
        assert explicit.total_edge_delay_cycles == 0
        assert explicit.finish_cycles >= free.finish_cycles * 0  # runs to completion

    def test_layer_by_layer_rejected(self):
        g = tiny_sequential()
        canonical = preprocess(g, quantization=None).graph
        arch = paper_case_study(minimum_pe_requirement(canonical, CrossbarSpec()) + 4)
        compiled = compile_model(
            g, arch, ScheduleOptions(mapping="none", scheduling="layer-by-layer")
        )
        with pytest.raises(ValueError, match="set-level dependencies"):
            simulate(compiled)


class TestNocCostModel:
    def test_transfers_slow_down_inference(self):
        compiled = compile_xinf(tiny_sequential())
        cost_model = NocCostModel(compiled.mapped, compiled.placement)
        free = simulate(compiled)
        priced = simulate(compiled, cost_model)
        assert priced.total_edge_delay_cycles > 0
        assert priced.finish_cycles >= free.finish_cycles

    def test_priced_schedule_still_valid(self):
        compiled = compile_xinf(tiny_csp())
        cost_model = NocCostModel(compiled.mapped, compiled.placement)
        result = simulate(compiled, cost_model)
        # resource exclusivity still holds under delays
        result.schedule.validate_intra_layer_order()
        assert result.num_tasks == compiled.dependencies.num_sets()

    def test_edge_delay_positive_between_tiles(self):
        compiled = compile_xinf(tiny_sequential())
        cost_model = NocCostModel(compiled.mapped, compiled.placement)
        deps = compiled.dependencies
        # find an edge between two different layers
        for (layer, index), preds in deps.deps.items():
            for pred in preds:
                if pred[0] != layer:
                    delay = cost_model.edge_delay_cycles(pred, (layer, index), deps)
                    assert delay >= 0
                    return
        pytest.fail("no cross-layer edge found")

    def test_gpeu_cost_increases_delay(self):
        compiled = compile_xinf(tiny_sequential())
        plain = NocCostModel(compiled.mapped, compiled.placement)
        with_gpeu = NocCostModel(
            compiled.mapped,
            compiled.placement,
            CostModelConfig(model_gpeu=True),
        )
        r_plain = simulate(compiled, plain)
        r_gpeu = simulate(compiled, with_gpeu)
        assert r_gpeu.total_edge_delay_cycles >= r_plain.total_edge_delay_cycles

    def test_bigger_elements_cost_more(self):
        compiled = compile_xinf(tiny_sequential())
        one_byte = NocCostModel(
            compiled.mapped, compiled.placement, CostModelConfig(bytes_per_element=1)
        )
        four_bytes = NocCostModel(
            compiled.mapped, compiled.placement, CostModelConfig(bytes_per_element=4)
        )
        assert (
            simulate(compiled, four_bytes).total_edge_delay_cycles
            >= simulate(compiled, one_byte).total_edge_delay_cycles
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CostModelConfig(bytes_per_element=0)

    def test_stall_accounting(self):
        compiled = compile_xinf(tiny_sequential())
        result = simulate(compiled)
        for layer, stall in result.per_layer_stall.items():
            assert stall >= 0
