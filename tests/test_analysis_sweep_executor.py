"""Tests for the staged/cached/parallel sweep engine."""

import warnings

import pytest

from repro.analysis.sweep import (
    SweepExecutor,
    SweepTask,
    benchmark_sweep,
    evaluate_task,
    grid_tasks,
    sweep_all,
)
from repro.arch import CrossbarSpec
from repro.core import SetGranularity
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_dual_head, tiny_sequential

#: Coarse granularity keeps these sweeps fast.
COARSE = {"granularity": SetGranularity(rows_per_set=4)}


def small_spec(name="tiny_sequential", build=tiny_sequential):
    canonical = preprocess(build(), quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    graph = canonical
    spec = BenchmarkSpec(
        name, canonical.shape_of(canonical.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()), min_pes=min_pes,
    )
    return spec, graph


def numbers(result):
    return [
        (p.config, p.extra_pes, p.speedup, p.utilization) for p in result.points
    ]


class TestGrid:
    def test_grid_tasks_order_and_shape(self):
        spec, _ = small_spec()
        tasks = grid_tasks(spec, xs=(4, 8))
        assert [t.config for t in tasks] == [
            "layer-by-layer", "xinf", "wdup", "wdup+xinf", "wdup", "wdup+xinf",
        ]
        assert tasks[0].is_baseline
        assert [t.extra_pes for t in tasks] == [0, 0, 4, 4, 8, 8]

    def test_evaluate_task_matches_direct_compile(self):
        spec, graph = small_spec()
        task = SweepTask(spec.name, "xinf", "none", "clsa-cim", 0, spec.min_pes)
        metrics = evaluate_task(graph, task, COARSE)
        assert metrics.config_name == "xinf"
        assert metrics.latency_cycles > 0


class TestExecutor:
    def test_serial_cached_equals_uncached(self):
        spec, graph = small_spec()
        cached = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                 options_overrides=COARSE, use_cache=True)
        uncached = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                   options_overrides=COARSE, use_cache=False)
        assert numbers(cached) == numbers(uncached)
        assert cached.baseline.latency_cycles == uncached.baseline.latency_cycles

    def test_parallel_equals_serial(self):
        """Process-pool execution is deterministic and order-stable."""
        spec, graph = small_spec()
        serial = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                 options_overrides=COARSE, jobs=1)
        parallel = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                   options_overrides=COARSE, jobs=2)
        assert numbers(serial) == numbers(parallel)

    def test_streaming_yields_baseline_first(self):
        spec, graph = small_spec()
        executor = SweepExecutor()
        labels = [
            p.config
            for p in executor.iter_points([spec], xs=(2,), graphs={spec.name: graph},
                                          options_overrides=COARSE)
        ]
        assert labels[0] == "layer-by-layer"
        assert set(labels[1:]) == {"xinf", "wdup", "wdup+xinf"}

    def test_run_many_multi_benchmark(self):
        spec_a, graph_a = small_spec()
        spec_b, graph_b = small_spec("tiny_dual_head", tiny_dual_head)
        results = sweep_all(
            [spec_a, spec_b], xs=(2,), options_overrides=COARSE,
            graphs={spec_a.name: graph_a, spec_b.name: graph_b},
        )
        assert [r.benchmark for r in results] == [spec_a.name, spec_b.name]
        for result in results:
            assert [p.config for p in result.points] == ["xinf", "wdup", "wdup+xinf"]

    def test_executor_cache_persists_across_runs(self):
        spec, graph = small_spec()
        executor = SweepExecutor()
        executor.run(spec, xs=(2,), graph=graph, options_overrides=COARSE)
        cache = executor.cache_for(spec.name)
        misses_after_first = cache.misses
        executor.run(spec, xs=(2,), graph=graph, options_overrides=COARSE)
        assert cache.misses == misses_after_first  # second run: all hits

    def test_duplicate_specs_evaluated_once(self):
        spec, graph = small_spec()
        single = sweep_all([spec], xs=(2,), options_overrides=COARSE,
                           graphs={spec.name: graph})
        doubled = sweep_all([spec, spec], xs=(2,), options_overrides=COARSE,
                            graphs={spec.name: graph})
        assert len(doubled) == 2
        for result in doubled:
            assert numbers(result) == numbers(single[0])  # no doubled points

    def test_pool_failure_at_submit_falls_back_to_serial(self, monkeypatch):
        """Workers spawn lazily; submit-time failures must also fall back."""
        spec, graph = small_spec()

        class SubmitBrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                raise OSError("clone blocked by sandbox")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(
            "repro.analysis.sweep.futures.ProcessPoolExecutor", SubmitBrokenPool
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = benchmark_sweep(spec, xs=(2,), graph=graph,
                                     options_overrides=COARSE, jobs=4)
        assert any("degrading to thread workers" in str(w.message) for w in caught)
        serial = benchmark_sweep(spec, xs=(2,), graph=graph,
                                 options_overrides=COARSE, jobs=1)
        assert numbers(result) == numbers(serial)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        spec, graph = small_spec()

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(
            "repro.analysis.sweep.futures.ProcessPoolExecutor", broken_pool
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = benchmark_sweep(spec, xs=(2,), graph=graph,
                                     options_overrides=COARSE, jobs=4)
        assert any("degrading to thread workers" in str(w.message) for w in caught)
        serial = benchmark_sweep(spec, xs=(2,), graph=graph,
                                 options_overrides=COARSE, jobs=1)
        assert numbers(result) == numbers(serial)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_wrong_min_pes_detected(self):
        spec, graph = small_spec()
        bad = BenchmarkSpec(spec.name, spec.input_shape,
                            base_layers=spec.base_layers, min_pes=spec.min_pes + 1)
        with pytest.raises(AssertionError, match="differs from"):
            benchmark_sweep(bad, xs=(2,), graph=graph, options_overrides=COARSE)


class TestStreamingEarlyExit:
    def test_abandoning_parallel_stream_returns_promptly(self):
        """Closing the generator mid-stream must not block on the grid."""
        spec, graph = small_spec()
        executor = SweepExecutor(jobs=2)
        stream = executor.iter_points([spec], xs=(2, 4), graphs={spec.name: graph},
                                      options_overrides=COARSE)
        first = next(stream)
        assert first.config == "layer-by-layer"
        stream.close()  # would hang without cancel_futures on shutdown


class TestEnergyInSweepResults:
    """Sweep and explore paths score the same objectives (energy)."""

    def test_every_point_carries_energy(self):
        spec, graph = small_spec()
        result = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                 options_overrides=COARSE)
        assert result.baseline_energy_uj is not None
        assert result.baseline_energy_uj > 0
        for point in result.points:
            assert point.energy_uj is not None and point.energy_uj > 0

    def test_best_energy_accessor(self):
        spec, graph = small_spec()
        result = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                 options_overrides=COARSE)
        best = result.best_energy()
        assert best.energy_uj == min(p.energy_uj for p in result.points)

    def test_best_energy_without_estimates_raises(self):
        spec, graph = small_spec()
        result = benchmark_sweep(spec, xs=(2,), graph=graph,
                                 options_overrides=COARSE)
        from dataclasses import replace as dc_replace

        result.points = [dc_replace(p, energy_uj=None) for p in result.points]
        with pytest.raises(ValueError, match="no energy"):
            result.best_energy()

    def test_parallel_energy_matches_serial(self):
        spec, graph = small_spec()
        serial = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                 options_overrides=COARSE, jobs=1)
        parallel = benchmark_sweep(spec, xs=(2, 4), graph=graph,
                                   options_overrides=COARSE, jobs=2)
        assert [p.energy_uj for p in serial.points] == [
            p.energy_uj for p in parallel.points
        ]


class TestTaskStreams:
    """iter_task_evals: the executor generalized beyond the paper grid."""

    def tasks(self, graph, n=4):
        from repro.analysis.sweep import EvalTask
        from repro.arch import paper_case_study
        from repro.core import ScheduleOptions
        from repro.mapping import minimum_pe_requirement

        min_pes = minimum_pe_requirement(graph, CrossbarSpec())
        tasks = []
        for i in range(n):
            tasks.append(EvalTask(
                key=f"t{i}",
                arch=paper_case_study(min_pes + 2 * (i + 1)),
                options=ScheduleOptions(
                    mapping="wdup" if i % 2 else "none",
                    scheduling="clsa-cim",
                    granularity=SetGranularity(rows_per_set=4),
                ),
            ))
        return tasks

    def test_serial_stream(self):
        spec, graph = small_spec()
        executor = SweepExecutor(jobs=1)
        results = executor.run_tasks(graph, self.tasks(graph))
        assert set(results) == {"t0", "t1", "t2", "t3"}
        for evaluation in results.values():
            assert evaluation.metrics.latency_cycles > 0
            assert evaluation.energy_uj > 0

    def test_parallel_stream_matches_serial(self):
        spec, graph = small_spec()
        tasks = self.tasks(graph)
        serial = SweepExecutor(jobs=1).run_tasks(graph, tasks)
        executor = SweepExecutor(jobs=2)
        try:
            parallel = executor.run_tasks(graph, tasks)
        finally:
            executor.close_pool()
        for key in serial:
            assert serial[key].metrics.latency_cycles == \
                parallel[key].metrics.latency_cycles
            assert serial[key].energy_uj == parallel[key].energy_uj

    def test_stream_pool_persists_across_batches(self):
        """Batch N+1 reuses batch N's worker pool (and with it the
        per-process compilation caches)."""
        spec, graph = small_spec()
        tasks = self.tasks(graph)
        executor = SweepExecutor(jobs=2)
        try:
            executor.run_tasks(graph, tasks[:2])
            first_pool = executor._stream_pool
            executor.run_tasks(graph, tasks[2:])
            assert executor._stream_pool is first_pool
            if first_pool is not None:  # pools may be unavailable in CI
                executor.close_pool()
                assert executor._stream_pool is None
        finally:
            executor.close_pool()

    def test_duplicate_keys_rejected(self):
        spec, graph = small_spec()
        tasks = self.tasks(graph)
        dupes = tasks + [tasks[0]]
        with pytest.raises(ValueError, match="unique"):
            list(SweepExecutor(jobs=1).iter_task_evals(graph, dupes))

    def test_want_energy_false_skips_estimate(self):
        from dataclasses import replace as dc_replace

        spec, graph = small_spec()
        task = dc_replace(self.tasks(graph, n=1)[0], want_energy=False)
        (result,) = SweepExecutor(jobs=1).run_tasks(graph, [task]).values()
        assert result.energy is None
        assert result.energy_uj is None
        assert result.metrics.latency_cycles > 0

    def test_stream_shares_executor_cache(self):
        spec, graph = small_spec()
        from repro.core.cache import CompilationCache

        cache = CompilationCache()
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_tasks(graph, self.tasks(graph))
        # tiling runs once; later tasks hit the shared cache
        assert cache.stats["tile"].hits >= 2
