"""Unit tests for BN folding (Section III-A)."""

import numpy as np
import pytest

from repro.frontend import fold_batch_norms
from repro.ir import Executor, GraphBuilder


def conv_bn_graph(use_bias=False):
    b = GraphBuilder("net")
    x = b.input((8, 8, 3), name="in")
    c = b.conv2d(x, 4, kernel=3, padding="same", use_bias=use_bias, name="conv")
    bn = b.batch_norm(c, name="bn")
    b.relu(bn, name="act")
    g = b.graph
    g.initialize_weights(seed=42)
    return g


class TestNumericFold:
    @pytest.mark.parametrize("use_bias", [False, True])
    def test_outputs_preserved(self, use_bias):
        g = conv_bn_graph(use_bias=use_bias)
        reference = Executor(g).run_single(np.random.default_rng(0).normal(size=(8, 8, 3)))

        folded = g.copy()
        report = fold_batch_norms(folded)
        assert report.num_folded == 1
        assert ("bn", "conv") in report.folded
        assert "bn" not in folded

        image = np.random.default_rng(0).normal(size=(8, 8, 3))
        np.testing.assert_allclose(
            Executor(folded).run_single(image), reference, rtol=1e-10, atol=1e-10
        )

    def test_conv_gains_bias(self):
        g = conv_bn_graph()
        fold_batch_norms(g)
        conv = g["conv"]
        assert conv.use_bias
        assert conv.bias is not None
        assert conv.bias.shape == (4,)

    def test_wiring_after_fold(self):
        g = conv_bn_graph()
        fold_batch_norms(g)
        assert g["act"].inputs == ["conv"]

    def test_dense_bn_fold(self):
        b = GraphBuilder("net")
        x = b.input((1, 1, 16), name="in")
        d = b.dense(x, 8, use_bias=True, name="fc")
        b.batch_norm(d, name="bn")
        g = b.graph
        g.initialize_weights(seed=9)
        image = np.random.default_rng(1).normal(size=(1, 1, 16))
        reference = Executor(g).run_single(image)
        report = fold_batch_norms(g)
        assert report.num_folded == 1
        np.testing.assert_allclose(Executor(g).run_single(image), reference, atol=1e-10)


class TestStructuralFold:
    def test_geometry_only_graph(self):
        """Graphs without numeric weights fold structurally."""
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c = b.conv2d(x, 4, use_bias=False, name="conv")
        b.batch_norm(c, name="bn")
        g = b.graph  # no initialize_weights
        report = fold_batch_norms(g)
        assert report.num_folded == 1
        assert g["conv"].use_bias
        assert g["conv"].weights is None


class TestSkippedFolds:
    def test_bn_after_non_base_layer_skipped(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        p = b.maxpool(x, 2, name="pool")
        b.batch_norm(p, name="bn")
        g = b.graph
        report = fold_batch_norms(g)
        assert report.num_folded == 0
        assert report.skipped == ["bn"]
        assert "bn" in g

    def test_bn_with_shared_conv_skipped(self):
        """Conv feeding both a BN and another consumer must not fold."""
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c = b.conv2d(x, 4, name="conv")
        bn = b.batch_norm(c, name="bn")
        b.add([bn, c], name="residual")
        g = b.graph
        report = fold_batch_norms(g)
        assert report.skipped == ["bn"]
        assert "bn" in g

    def test_multiple_bns_fold_independently(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c1 = b.conv_bn_act(x, 4, name="conv_a")
        b.conv_bn_act(c1, 8, name="conv_b")
        g = b.graph
        g.initialize_weights(seed=5)
        image = np.random.default_rng(2).normal(size=(8, 8, 3))
        reference = Executor(g).run_single(image)
        report = fold_batch_norms(g)
        assert report.num_folded == 2
        np.testing.assert_allclose(Executor(g).run_single(image), reference, atol=1e-9)
