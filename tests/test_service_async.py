"""Tests for the ``async`` executor backend (repro.service.async_executor)."""

import threading
import time

import pytest

from repro import ScheduleOptions, Session, paper_case_study
from repro.core import SetGranularity
from repro.exec import EvaluateJob, executor_names, make_executor
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.service import AsyncExecutor

COARSE_OPTIONS = ScheduleOptions(granularity=SetGranularity(rows_per_set=4))


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def arch(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + 4)


class TestRegistry:
    def test_service_backends_registered(self):
        names = executor_names()
        assert "async" in names and "remote" in names

    def test_make_executor_builds_async(self):
        backend = make_executor("async", jobs=2)
        try:
            assert isinstance(backend, AsyncExecutor)
            assert backend.jobs == 2
        finally:
            backend.shutdown()

    def test_unknown_name_lists_registered_backends(self):
        with pytest.raises(KeyError, match="unknown executor") as excinfo:
            make_executor("warp-drive")
        message = str(excinfo.value)
        for name in ("inline", "thread", "process", "async", "remote"):
            assert name in message
        assert "register_executor" in message


class TestAsyncExecutor:
    def test_submit_resolves_to_value(self):
        backend = AsyncExecutor(2)
        try:
            assert backend.submit(lambda a, b: a + b, 2, 3).result() == 5
        finally:
            backend.shutdown()

    def test_exception_relayed_to_future(self):
        backend = AsyncExecutor(1)
        try:
            future = backend.submit(lambda: 1 / 0)
            assert isinstance(future.exception(), ZeroDivisionError)
        finally:
            backend.shutdown()

    def test_concurrency_bounded_by_jobs(self):
        backend = AsyncExecutor(2)
        lock = threading.Lock()
        active = [0]
        peak = [0]

        def task():
            with lock:
                active[0] += 1
                peak[0] = max(peak[0], active[0])
            time.sleep(0.05)
            with lock:
                active[0] -= 1

        try:
            futures = [backend.submit(task) for _ in range(6)]
            for future in futures:
                future.result(timeout=30)
            assert peak[0] <= 2
        finally:
            backend.shutdown()

    def test_queued_job_cancellable(self):
        backend = AsyncExecutor(1)
        release = threading.Event()
        started = threading.Event()

        def blocker():
            started.set()
            release.wait(30)

        try:
            first = backend.submit(blocker)
            assert started.wait(10)
            queued = backend.submit(lambda: "ran")
            assert queued.cancel()
            assert queued.cancelled()
            release.set()
            first.result(timeout=30)
        finally:
            release.set()
            backend.shutdown()

    def test_map_preserves_order(self):
        backend = AsyncExecutor(4)
        try:
            results = list(backend.map(lambda x: x * x, [(i,) for i in range(8)]))
            assert results == [i * i for i in range(8)]
        finally:
            backend.shutdown()

    def test_shutdown_idempotent_and_rejects_new_work(self):
        backend = AsyncExecutor(1)
        backend.submit(lambda: 1).result()
        backend.shutdown()
        backend.shutdown()  # no-op
        with pytest.raises(RuntimeError, match="shut down"):
            backend.submit(lambda: 2)

    def test_session_with_async_backend_matches_inline(self, canonical, arch):
        job = EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        inline = Session(arch).submit(job).result()
        with Session(arch, executor="async") as session:
            threaded = session.submit(job).result()
        assert threaded.ok and inline.ok
        assert threaded.value.metrics == inline.value.metrics
        assert threaded.value.energy == inline.value.energy
