"""Semantic soundness of Stage II region propagation.

The strongest possible check of ``trace_to_base``: if Stage II claims a
consumer set only needs region R of a producer's OFM, then *corrupting
every producer value outside R* must leave the consumer set's numeric
values unchanged.  Hypothesis sweeps kernel/stride/pooling geometry.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import determine_dependencies, determine_sets, trace_to_base
from repro.ir import Executor, GraphBuilder, Rect


@st.composite
def geometries(draw):
    kernel = draw(st.sampled_from([1, 3, 5]))
    stride = draw(st.sampled_from([1, 2]))
    pool = draw(st.booleans())
    size = draw(st.sampled_from([10, 13, 16]))
    return kernel, stride, pool, size


def build_two_layer(kernel, stride, pool, size, seed):
    b = GraphBuilder("regions")
    x = b.input((size, size, 2), name="in")
    c1 = b.conv2d(x, 3, kernel=1, padding="valid", use_bias=False, name="c1")
    path = c1
    if pool:
        path = b.maxpool(path, 2, padding="same")
    b.conv2d(path, 4, kernel=kernel, strides=stride, padding="same",
             use_bias=False, name="c2")
    g = b.graph
    g.initialize_weights(seed=seed)
    return g


@settings(max_examples=30, deadline=None)
@given(geometry=geometries(), seed=st.integers(0, 100), set_pick=st.integers(0, 10_000))
def test_property_traced_region_is_sufficient(geometry, seed, set_pick):
    """Values outside the traced producer region cannot affect the set."""
    kernel, stride, pool, size = geometry
    g = build_two_layer(kernel, stride, pool, size, seed)
    sets = determine_sets(g)
    determine_dependencies(g, sets)  # Stage II must accept the geometry

    consumer_sets = sets["c2"]
    set_index = set_pick % len(consumer_sets)
    rect = consumer_sets[set_index]

    # region of c1's OFM that Stage II says this set needs
    op = g["c2"]
    shapes = g.infer_shapes()
    input_shapes = [shapes[p] for p in op.inputs]
    needed = op.input_regions(rect, input_shapes, shapes["c2"])
    traced = trace_to_base(g, op.inputs[0], needed[0])
    region = Rect.empty()
    for base_layer, base_rect in traced:
        assert base_layer == "c1"
        region = region.union_bbox(base_rect)

    rng = np.random.default_rng(seed)
    image = rng.normal(size=(size, size, 2))
    executor = Executor(g)
    clean = executor.run(image, node_names=["c1", "c2"])
    reference = clean["c2"][rect.r0 : rect.r1, rect.c0 : rect.c1, :]

    # corrupt c1's output outside the traced region and re-run the tail
    corrupted = clean["c1"].copy()
    mask = np.ones(corrupted.shape[:2], dtype=bool)
    if not region.is_empty():
        mask[region.r0 : region.r1, region.c0 : region.c1] = False
    corrupted[mask] = rng.normal(size=corrupted.shape)[mask] * 1e3

    # rebuild a graph that starts at c1's output
    b2 = GraphBuilder("tail")
    x = b2.input((corrupted.shape[0], corrupted.shape[1], 3), name="c1_out")
    path = x
    if pool:
        path = b2.maxpool(path, 2, padding="same")
    b2.conv2d(path, 4, kernel=kernel, strides=stride, padding="same",
              use_bias=False, name="c2")
    tail = b2.graph
    tail["c2"].weights = g["c2"].weights
    dirty = Executor(tail).run(corrupted, node_names=["c2"])["c2"]
    actual = dirty[rect.r0 : rect.r1, rect.c0 : rect.c1, :]

    np.testing.assert_allclose(actual, reference, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(geometry=geometries(), seed=st.integers(0, 100))
def test_property_dependencies_cover_all_producers(geometry, seed):
    """Every consumer set's deps cover the full traced region — no
    producer set intersecting the region is missing."""
    kernel, stride, pool, size = geometry
    g = build_two_layer(kernel, stride, pool, size, seed)
    sets = determine_sets(g)
    deps = determine_dependencies(g, sets)
    shapes = g.infer_shapes()
    op = g["c2"]
    input_shapes = [shapes[p] for p in op.inputs]
    for set_index, rect in enumerate(sets["c2"]):
        needed = op.input_regions(rect, input_shapes, shapes["c2"])
        traced = trace_to_base(g, op.inputs[0], needed[0])
        listed = set(deps.predecessors("c2", set_index))
        for base_layer, base_rect in traced:
            for pred_index, pred_rect in enumerate(sets[base_layer]):
                if pred_rect.intersects(base_rect):
                    assert (base_layer, pred_index) in listed
