"""Tests for batch (multi-inference) cross-layer scheduling."""

import pytest

from repro.core import (
    cross_layer_schedule_batch,
    cross_layer_schedule_dynamic,
    determine_dependencies,
    determine_sets,
    validate_batch_schedule,
)
from repro.frontend import preprocess
from repro.ir import GraphBuilder
from repro.models import tiny_dual_head, tiny_sequential


def make_deps(graph):
    sets = determine_sets(graph)
    return determine_dependencies(graph, sets)


def chain(num_layers=3, size=8):
    b = GraphBuilder("chain")
    x = b.input((size, size, 3), name="in")
    for i in range(num_layers):
        x = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name=f"c{i}")
    return b.graph


class TestBatchScheduling:
    def test_batch_one_equals_dynamic(self):
        g = chain()
        deps = make_deps(g)
        single = cross_layer_schedule_dynamic(g, deps)
        batch = cross_layer_schedule_batch(g, deps, batch_size=1)
        assert batch.makespan == single.makespan
        assert len(batch.schedule.tasks) == len(single.tasks)

    def test_all_images_scheduled(self):
        g = chain()
        deps = make_deps(g)
        result = cross_layer_schedule_batch(g, deps, batch_size=3)
        assert len(result.schedule.tasks) == 3 * deps.num_sets()
        validate_batch_schedule(result, deps)

    def test_pipelining_beats_sequential_batches(self):
        """B pipelined images finish well before B sequential runs."""
        g = chain(num_layers=4)
        deps = make_deps(g)
        single = cross_layer_schedule_dynamic(g, deps).makespan
        batch = cross_layer_schedule_batch(g, deps, batch_size=4)
        assert batch.makespan < 4 * single

    def test_steady_state_interval(self):
        g = chain(num_layers=3)
        deps = make_deps(g)
        batch = cross_layer_schedule_batch(g, deps, batch_size=6)
        # steady-state rate is bounded below by the bottleneck layer's
        # busy time (64 cycles for an 8x8 OFM)
        assert batch.steady_state_interval >= 64
        assert batch.steady_state_interval <= batch.makespan

    def test_throughput_units(self):
        g = chain()
        deps = make_deps(g)
        batch = cross_layer_schedule_batch(g, deps, batch_size=2)
        per_ms = batch.throughput_images_per_ms(t_mvm_ns=1400.0)
        expected = 1e6 / (batch.steady_state_interval * 1400.0)
        assert per_ms == pytest.approx(expected)

    def test_image_spans_ordered(self):
        g = chain()
        deps = make_deps(g)
        batch = cross_layer_schedule_batch(g, deps, batch_size=4)
        ends = [span[1] for span in batch.image_spans]
        assert ends == sorted(ends)

    def test_utilization_grows_with_batch(self):
        """Batching fills idle PEs: utilization rises with batch size."""
        g = preprocess(tiny_sequential(), quantization=None).graph
        deps = make_deps(g)
        busy_per_image = sum(
            rect.area for rects in deps.sets.values() for rect in rects
        )

        def utilization(batch_size):
            result = cross_layer_schedule_batch(g, deps, batch_size)
            return batch_size * busy_per_image / result.makespan

        assert utilization(4) > utilization(1)

    def test_rejects_bad_batch_size(self):
        g = chain()
        deps = make_deps(g)
        with pytest.raises(ValueError):
            cross_layer_schedule_batch(g, deps, batch_size=0)

    def test_non_sequential_model(self):
        g = preprocess(tiny_dual_head(), quantization=None).graph
        deps = make_deps(g)
        result = cross_layer_schedule_batch(g, deps, batch_size=3)
        validate_batch_schedule(result, deps)
        assert result.makespan > 0

    def test_validator_catches_violation(self):
        g = chain(num_layers=2)
        deps = make_deps(g)
        result = cross_layer_schedule_batch(g, deps, batch_size=2)
        # corrupt one task: shift a dependent set before its producer
        tasks = sorted(
            (t for t in result.schedule.tasks if t.layer == "c1" and t.image == 1),
            key=lambda t: t.start,
        )
        from repro.core import SetTask

        victim = tasks[-1]
        result.schedule.tasks.remove(victim)
        result.schedule.tasks.append(
            SetTask(victim.layer, victim.set_index, victim.rect, 0,
                    victim.rect.area, image=victim.image)
        )
        with pytest.raises(AssertionError):
            validate_batch_schedule(result, deps)
