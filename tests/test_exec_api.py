"""Tests for the unified execution API (repro.exec + Session.submit/map).

Covers the executor backends, the typed job/result surface, the
acceptance criterion that every backend produces byte-identical sweep
rows, the deprecation shims over the legacy ``SweepExecutor`` /
``Explorer`` entry points, and the hook-dispatch exception guard.
"""

import dataclasses
import json
import warnings

import pytest

from repro import (
    CompileJob,
    EvaluateJob,
    ScheduleOptions,
    Session,
    SessionHooks,
    SweepJob,
    paper_case_study,
)
from repro.analysis.sweep import SweepExecutor
from repro.core import SetGranularity
from repro.exec import (
    Evaluation,
    ExploreJob,
    InlineExecutor,
    JobFailedError,
    JobFuture,
    JobResult,
    ThreadExecutor,
    executor_names,
    make_executor,
    register_executor,
    reset_deprecation_warnings,
    unregister_executor,
)
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, build, tiny_sequential

#: Coarse granularity keeps these sweeps fast.
COARSE = {"granularity": SetGranularity(rows_per_set=4)}
COARSE_OPTIONS = ScheduleOptions(granularity=SetGranularity(rows_per_set=4))


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def arch(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + 4)


def small_spec(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return BenchmarkSpec(
        "tiny_sequential",
        canonical.shape_of(canonical.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()),
        min_pes=min_pes,
    )


class TestExecutorRegistry:
    def test_builtins_registered(self):
        names = executor_names()
        for name in ("inline", "thread", "process"):
            assert name in names

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown executor"):
            make_executor("warp-drive")

    def test_instances_pass_through(self):
        backend = InlineExecutor()
        assert make_executor(backend) is backend

    def test_none_resolves_from_jobs(self):
        assert make_executor(None, jobs=1).name == "inline"
        assert make_executor(None, jobs=4).name == "process"
        assert make_executor(None, jobs=None).name == "process"

    def test_plugin_backend_usable_by_name(self, canonical, arch):
        register_executor("test-plugin", lambda jobs: InlineExecutor())
        try:
            session = Session(arch, executor="test-plugin")
            result = session.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
            ).result()
            assert result.ok and result.value.metrics.latency_cycles > 0
        finally:
            unregister_executor("test-plugin")

    def test_builtin_names_protected(self):
        with pytest.raises(ValueError, match="builtin"):
            unregister_executor("process")

    def test_thread_executor_reset_drops_pool(self):
        backend = ThreadExecutor(2)
        backend.submit(lambda: 1).result()
        assert backend._pool is not None
        backend.reset()
        assert backend._pool is None
        # lazily rebuilt on the next submission
        assert backend.submit(lambda: 2).raw.result() == 2
        backend.shutdown()


class TestSubmit:
    def test_compile_job_matches_session_compile(self, canonical, arch):
        session = Session(arch)
        future = session.submit(
            CompileJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        )
        assert isinstance(future, JobFuture)
        assert future.done()  # inline backend resolves eagerly
        result = future.result()
        assert result.ok
        reference = session.compile(canonical, COARSE_OPTIONS, assume_canonical=True)
        assert result.value.schedule.tasks == reference.schedule.tasks
        assert result.timings  # pass timings travel on the envelope
        assert result.cache_hits > 0  # second compile hit the session cache

    def test_evaluate_job_scores_metrics_and_energy(self, canonical, arch):
        session = Session(arch)
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        ).result()
        assert isinstance(result.value, Evaluation)
        assert result.value.metrics.latency_cycles > 0
        assert result.value.energy_uj > 0

    def test_want_energy_false_skips_estimate(self, canonical, arch):
        session = Session(arch)
        result = session.submit(
            EvaluateJob(
                canonical, COARSE_OPTIONS, assume_canonical=True, want_energy=False
            )
        ).result()
        assert result.value.energy is None
        assert result.value.energy_uj is None

    def test_zoo_names_resolve(self, arch):
        session = Session(arch)
        result = session.submit(CompileJob("tiny_sequential", COARSE_OPTIONS)).result()
        assert result.ok
        assert result.value.schedule.makespan > 0

    def test_errors_are_captured_on_the_envelope(self, canonical, arch):
        session = Session(arch)
        result = session.submit(CompileJob("no-such-model", COARSE_OPTIONS)).result()
        assert not result.ok
        assert result.error is not None
        assert result.value is None
        with pytest.raises(JobFailedError, match="no-such-model"):
            result.unwrap()

    def test_composite_job_failure_captured_on_envelope(self):
        session = Session(paper_case_study(1))
        result = session.submit(SweepJob(("no-such-benchmark",))).result()
        assert not result.ok
        assert result.error is not None and result.error.kind == "KeyError"
        with pytest.raises(JobFailedError):
            result.unwrap()

    def test_composite_failure_in_map_ends_stream_with_error(self):
        session = Session(paper_case_study(1))
        results = list(session.map(SweepJob(("no-such-benchmark",))))
        assert results and not results[-1].ok

    def test_sweep_job_resolves_to_assembled_results(self, canonical):
        spec = small_spec(canonical)
        session = Session(paper_case_study(1))
        future = session.submit(
            SweepJob(
                (spec,), xs=(2,), options_overrides=COARSE,
                graphs={spec.name: canonical},
            )
        )
        (swept,) = future.result().unwrap()
        assert swept.benchmark == spec.name
        assert [p.config for p in swept.points] == ["xinf", "wdup", "wdup+xinf"]


class TestMap:
    def jobs(self, canonical, n=4):
        min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
        return [
            EvaluateJob(
                canonical,
                ScheduleOptions(
                    mapping="wdup" if i % 2 else "none",
                    scheduling="clsa-cim",
                    granularity=SetGranularity(rows_per_set=4),
                ),
                arch=paper_case_study(min_pes + 2 * (i + 1)),
                assume_canonical=True,
                key=f"t{i}",
            )
            for i in range(n)
        ]

    def test_ordered_stream_preserves_submission_order(self, canonical, arch):
        session = Session(arch)
        results = list(session.map(self.jobs(canonical), ordered=True))
        assert [r.key for r in results] == ["t0", "t1", "t2", "t3"]
        assert all(r.ok for r in results)

    def test_thread_backend_matches_inline(self, canonical, arch):
        jobs = self.jobs(canonical)
        inline = {r.key: r for r in Session(arch).map(jobs)}
        with Session(arch, executor=ThreadExecutor(2)) as threaded_session:
            threaded = {r.key: r for r in threaded_session.map(jobs, ordered=False)}
        assert set(threaded) == set(inline)
        for key in inline:
            assert threaded[key].value.metrics == inline[key].value.metrics
            assert threaded[key].value.energy_uj == inline[key].value.energy_uj

    def test_embedded_graphs_ship_once_to_process_workers(self, canonical):
        """Distinct in-memory graphs are named by identity and travel
        through the pool-initializer payload, not per-job pickles."""
        from repro.exec.runtime import JobRuntime

        runtime = JobRuntime("process", jobs=2)
        try:
            prepared = runtime._prepare(self.jobs(canonical), None)
            shipped, graphs = runtime._ship_embedded(prepared, None)
            assert {name for _key, name, _job in shipped} == {"__graph0__"}
            assert graphs["__graph0__"] is canonical
            assert all(job.graph == "__graph0__" for _k, _n, job in shipped)
            # repeated batches reproduce the payload → the pool is reused
            again, graphs_again = runtime._ship_embedded(prepared, None)
            assert graphs_again == graphs
        finally:
            runtime.shutdown()

    def test_process_backend_matches_inline_on_embedded_graphs(self, canonical, arch):
        jobs = self.jobs(canonical)
        inline = {r.key: r for r in Session(arch).map(jobs)}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # sandbox fallback ok
            with Session(arch, executor="process") as session:
                pooled = {r.key: r for r in session.map(jobs, ordered=False)}
        assert set(pooled) == set(inline)
        for key in inline:
            assert pooled[key].value.metrics == inline[key].value.metrics
            assert pooled[key].value.energy_uj == inline[key].value.energy_uj

    def test_duplicate_explicit_keys_rejected(self, canonical, arch):
        session = Session(arch)
        dupes = [
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="same"),
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="same"),
        ]
        with pytest.raises(ValueError, match="unique"):
            list(session.map(dupes))

    def test_submit_futures_survive_pool_repreparation(self, canonical):
        """A sweep re-preparing the process pool with new graphs must not
        cancel futures from earlier submits (the old pool retires and
        drains instead)."""
        spec = small_spec(canonical)
        min_pes = spec.min_pes
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # sandbox fallback ok
            with Session(paper_case_study(1), executor="process") as session:
                futures_out = [
                    session.submit(
                        EvaluateJob(
                            canonical, COARSE_OPTIONS,
                            arch=paper_case_study(min_pes + 2 + i),
                            assume_canonical=True, key=f"pending{i}",
                        )
                    )
                    for i in range(6)
                ]
                session.sweep(
                    [spec], xs=(2,), jobs=2, graphs={spec.name: canonical},
                    options_overrides=COARSE,
                )
                results = [future.result(timeout=120) for future in futures_out]
        assert all(r.ok for r in results)
        assert {r.key for r in results} == {f"pending{i}" for i in range(6)}

    def test_single_job_accepted(self, canonical, arch):
        session = Session(arch)
        (result,) = list(
            session.map(EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True))
        )
        assert result.ok

    def test_map_sweep_job_streams_config_points(self, canonical):
        spec = small_spec(canonical)
        session = Session(paper_case_study(1))
        results = list(
            session.map(
                SweepJob(
                    (spec,), xs=(2,), options_overrides=COARSE,
                    graphs={spec.name: canonical},
                )
            )
        )
        assert all(isinstance(r, JobResult) for r in results)
        points = [r.value for r in results]
        assert points[0].config == "layer-by-layer"  # baseline streams first
        assert {p.config for p in points[1:]} == {"xinf", "wdup", "wdup+xinf"}


class TestJobHooks:
    def test_on_job_submit_and_done_fire(self, canonical, arch):
        events = []
        hooks = SessionHooks(
            on_job_submit=lambda job: events.append(("submit", job.kind)),
            on_job_done=lambda result: events.append(("done", result.ok)),
        )
        session = Session(arch, hooks=hooks)
        session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        ).result()
        assert ("submit", "evaluate") in events
        assert ("done", True) in events

    def test_job_hooks_do_not_force_serial(self, canonical):
        """Job-level hooks run driver-side, so the process backend may
        still parallelize (no RuntimeWarning, identical numbers)."""
        spec = small_spec(canonical)
        hooks = SessionHooks(on_job_done=lambda result: None)
        session = Session(paper_case_study(1), hooks=hooks)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = session.sweep(
                [spec], xs=(2,), jobs=2, graphs={spec.name: canonical},
                options_overrides=COARSE,
            )
        assert not [
            w for w in caught
            if "cannot cross the process boundary" in str(w.message)
        ]
        assert len(results[0].points) == 3


class TestPointwiseIdentity:
    """Acceptance: every backend produces byte-identical sweep rows.

    Rows are canonicalized through ``dataclasses.asdict`` + JSON
    (``repr``-exact floats) rather than raw pickle: pickle output
    depends on object *identity* (string memoization), which crossing
    a process boundary legitimately changes while every value stays
    bit-identical.
    """

    @staticmethod
    def rows(points):
        ordered = sorted(points, key=lambda p: (p.benchmark, p.config, p.extra_pes))
        payload = [dataclasses.asdict(p) for p in ordered]
        for row in payload:
            # Cache and execution provenance (memory vs. store vs.
            # recompute, attempts, backend) is backend-dependent by
            # design; identity is over the values.
            for field in (
                "cache_memory_hits",
                "cache_store_hits",
                "cache_misses",
                "attempts",
                "backend",
            ):
                row.pop(field, None)
        return json.dumps(payload, sort_keys=True, default=float).encode()

    def test_all_executors_match_legacy_sweep_run(self, canonical):
        spec = small_spec(canonical)
        legacy = SweepExecutor()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reference = legacy.run(
                spec, xs=(2, 4), options_overrides=COARSE, graph=canonical
            )
        expected = self.rows([*reference.points, self._baseline_row(reference)])
        job = SweepJob(
            (spec,), xs=(2, 4), options_overrides=COARSE,
            graphs={spec.name: canonical},
        )
        for backend in ("inline", "thread", "process"):
            with Session(paper_case_study(1), executor=backend) as session:
                with warnings.catch_warnings():
                    # restricted sandboxes: the process backend may
                    # legitimately fall back to serial — identical rows
                    warnings.simplefilter("ignore", RuntimeWarning)
                    points = [result.unwrap() for result in session.map(job)]
            assert self.rows(points) == expected, f"{backend} rows diverged"

    @staticmethod
    def _baseline_row(result):
        from repro.analysis.sweep import ConfigPoint

        return ConfigPoint(
            benchmark=result.benchmark,
            config="layer-by-layer",
            extra_pes=0,
            metrics=result.baseline,
            speedup=1.0,
            utilization=result.baseline.utilization,
            energy_uj=result.baseline_energy_uj,
        )

    def test_session_sweep_matches_legacy_numbers(self, canonical):
        spec = small_spec(canonical)
        session = Session(paper_case_study(1))
        via_session = session.sweep(
            [spec], xs=(2,), options_overrides=COARSE,
            graphs={spec.name: canonical},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = SweepExecutor().run(
                spec, xs=(2,), options_overrides=COARSE, graph=canonical
            )
        assert self.rows(via_session[0].points) == self.rows(via_legacy.points)


class TestDeprecationShims:
    """Satellite: legacy entry points warn exactly once, results intact."""

    def test_sweep_executor_run_warns_exactly_once(self, canonical):
        spec = small_spec(canonical)
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="SweepExecutor.run is deprecated"):
            first = SweepExecutor().run(
                spec, xs=(2,), options_overrides=COARSE, graph=canonical
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = SweepExecutor().run(
                spec, xs=(2,), options_overrides=COARSE, graph=canonical
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert [p.speedup for p in first.points] == [p.speedup for p in second.points]

    def test_explorer_direct_use_warns_exactly_once(self, canonical):
        from repro.explore.engine import Explorer

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="Explorer is deprecated"):
            direct = Explorer(canonical, budget=4, seed=3).run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = Explorer(canonical, budget=4, seed=3).run()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert [r.fingerprint for r in direct.results] == [
            r.fingerprint for r in again.results
        ]

    def test_explorer_shim_matches_session_explore(self, canonical):
        from repro.explore.engine import Explorer

        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            direct = Explorer(canonical, budget=4, seed=5).run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_session = Session(paper_case_study(1)).explore(
                canonical, budget=4, seed=5
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert [r.fingerprint for r in direct.results] == [
            r.fingerprint for r in via_session.results
        ]
        assert direct.frontier.summary() == via_session.frontier.summary()

    def test_session_explore_shares_session_backend(self, canonical, arch):
        """explore() reuses the session's resolved executor instance and
        leaves it running (externally owned) for later submits."""
        with Session(paper_case_study(1), executor="thread") as session:
            backend = session.executor
            explored = session.explore(canonical, budget=4, seed=1)
            assert explored.counters.processed >= 1
            assert session.executor is backend
            follow_up = session.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch, assume_canonical=True)
            ).result()
            assert follow_up.ok

    def test_explore_job_matches_session_explore(self, canonical):
        first = Session(paper_case_study(1)).explore(canonical, budget=4, seed=7)
        result = Session(paper_case_study(1)).submit(
            ExploreJob(canonical, budget=4, seed=7)
        ).result()
        assert result.ok
        assert [r.fingerprint for r in result.value.results] == [
            r.fingerprint for r in first.results
        ]


class TestHookExceptionGuard:
    """Satellite: a raising hook is a diagnostic, never an abort."""

    def test_pass_hook_exception_recorded_not_raised(self, canonical, arch):
        def explode(name, ctx):
            raise RuntimeError("telemetry fell over")

        session = Session(arch, hooks=SessionHooks(on_pass_start=explode))
        compiled = session.compile(canonical, COARSE_OPTIONS, assume_canonical=True)
        assert compiled.schedule.makespan > 0
        assert any(
            "on_pass_start raised RuntimeError" in note
            for note in compiled.diagnostics
        )

    def test_compile_hooks_exception_recorded_not_raised(self, canonical, arch):
        hooks = SessionHooks(
            on_compile_start=lambda ctx: (_ for _ in ()).throw(ValueError("start")),
            on_compile_end=lambda compiled: (_ for _ in ()).throw(ValueError("end")),
        )
        session = Session(arch, hooks=hooks)
        compiled = session.compile(canonical, COARSE_OPTIONS, assume_canonical=True)
        assert compiled.schedule.makespan > 0
        notes = "\n".join(compiled.diagnostics)
        assert "on_compile_start raised ValueError" in notes
        assert "on_compile_end raised ValueError" in notes

    def test_healthy_hooks_unaffected_by_guard(self, canonical, arch):
        events = []
        hooks = SessionHooks(
            on_pass_end=lambda name, ctx, seconds: events.append(name)
        )
        Session(arch, hooks=hooks).compile(
            canonical, COARSE_OPTIONS, assume_canonical=True
        )
        assert "schedule" in events

    def test_job_hook_exception_swallowed(self, canonical, arch):
        def explode(job):
            raise RuntimeError("boom")

        session = Session(arch, hooks=SessionHooks(on_job_submit=explode))
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        ).result()
        assert result.ok


class TestSessionExecutorKnob:
    def test_default_executor_is_inline(self, arch):
        assert Session(arch).executor.name == "inline"

    def test_named_backend_resolves(self, arch):
        with Session(arch, executor="thread") as session:
            assert session.executor.name == "thread"

    def test_repr_names_executor(self, arch):
        assert "executor=inline" in repr(Session(arch))

    def test_close_is_idempotent(self, arch):
        session = Session(arch, executor="thread")
        session.submit(CompileJob("tiny_sequential", COARSE_OPTIONS)).result()
        session.close()
        session.close()

    def test_build_raises_on_missing_arch(self, canonical):
        from repro.exec import execute_job

        with pytest.raises(ValueError, match="architecture"):
            execute_job(
                EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True),
                capture=False,
            )


class TestDoneCallbacks:
    """JobFuture.add_done_callback fires exactly once on every outcome."""

    def test_fires_once_on_completion(self):
        calls = []
        future = JobFuture.completed(JobResult(key="k"))
        future.add_done_callback(calls.append)
        assert calls == [future]

    def test_fires_once_on_failure(self):
        calls = []
        future = JobFuture.failed(RuntimeError("boom"))
        future.add_done_callback(calls.append)
        assert calls == [future]

    def test_fires_once_on_cancellation(self):
        from concurrent import futures as cf

        calls = []
        raw: "cf.Future" = cf.Future()
        future = JobFuture(raw)
        future.add_done_callback(calls.append)
        assert future.cancel()
        assert calls == [future]

    def test_late_added_callback_fires_immediately(self):
        future = JobFuture.completed(JobResult(key="k"))
        future.result()  # settled long before registration
        calls = []
        future.add_done_callback(calls.append)
        future.add_done_callback(calls.append)
        assert calls == [future, future]

    def test_pending_future_defers_callback_until_result(self):
        from concurrent import futures as cf

        calls = []
        raw: "cf.Future" = cf.Future()
        future = JobFuture(raw)
        future.add_done_callback(calls.append)
        assert calls == []
        raw.set_result(JobResult(key="k"))
        assert calls == [future]

    def test_raising_callback_warns_instead_of_propagating(self):
        def explode(fut):
            raise ValueError("callback boom")

        future = JobFuture.completed(JobResult(key="k"))
        with pytest.warns(RuntimeWarning, match="callback boom"):
            future.add_done_callback(explode)

    def test_raising_callback_does_not_block_others(self):
        from concurrent import futures as cf

        calls = []
        raw: "cf.Future" = cf.Future()
        future = JobFuture(raw)
        future.add_done_callback(
            lambda fut: (_ for _ in ()).throw(ValueError("boom"))
        )
        future.add_done_callback(calls.append)
        with pytest.warns(RuntimeWarning, match="boom"):
            raw.set_result(JobResult(key="k"))
        assert calls == [future]


class TestSessionCloseDrain:
    """Session.close drains in-flight submissions before releasing pools."""

    def test_close_waits_for_inflight_jobs(self, canonical, arch):
        session = Session(arch, executor=ThreadExecutor(2))
        futures = [
            session.submit(
                EvaluateJob(
                    canonical, COARSE_OPTIONS, assume_canonical=True, key=f"d{i}"
                )
            )
            for i in range(3)
        ]
        session.close()
        assert all(f.done() for f in futures)
        assert all(f.result(timeout=0).ok for f in futures)

    def test_close_with_zero_grace_cancels_pending(self, arch):
        class Blocker:
            name = "blocker"
            crosses_process = False
            parallel = True

            def submit(self, fn, /, *args):
                from concurrent import futures as cf

                raw: "cf.Future" = cf.Future()
                return JobFuture(raw)  # never resolves until cancelled

            def map(self, fn, argslist, *, ordered=True):
                raise NotImplementedError

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        session = Session(arch, executor=Blocker())
        future = session.submit(CompileJob("tiny_sequential", COARSE_OPTIONS))
        session.close(grace=0)
        assert future.cancelled()

    def test_close_twice_after_drain_is_noop(self, canonical, arch):
        session = Session(arch, executor="thread")
        session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        ).result()
        session.close()
        session.close()
        assert session._runtime is None
