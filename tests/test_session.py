"""Tests for the public Session API (repro.session)."""

import pytest

from repro import (
    CompilationCache,
    ScheduleOptions,
    Session,
    SessionHooks,
    compile_model,
    paper_case_study,
)
from repro.core.passes import register_scheduler, unregister_scheduler
from repro.core.schedule import Schedule, SetTask
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import build

MODELS = ("tiny_sequential", "tiny_csp")
CONFIGS = (
    ScheduleOptions(mapping="wdup", scheduling="clsa-cim"),
    ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
)


@pytest.fixture(scope="module")
def canonicals():
    return {
        name: preprocess(build(name), quantization=None).graph for name in MODELS
    }


def _arch_for(canonical, extra=4):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + extra)


class TestSessionCompile:
    def test_compile_defaults_to_paper_best(self, canonicals):
        canonical = canonicals["tiny_sequential"]
        session = Session(_arch_for(canonical))
        compiled = session.compile(canonical, assume_canonical=True)
        assert compiled.options.paper_name == "wdup+xinf"
        assert compiled.schedule.makespan > 0
        assert compiled.timings  # pass timings recorded

    def test_compile_accepts_raw_graphs(self):
        raw = build("tiny_sequential")
        canonical = preprocess(raw, quantization=None).graph
        session = Session(_arch_for(canonical))
        compiled = session.compile(raw)  # preprocesses internally
        reference = session.compile(canonical, assume_canonical=True)
        assert compiled.schedule.makespan == reference.schedule.makespan

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_shim_is_pointwise_identical_to_session(
        self, canonicals, model, config_index
    ):
        """Acceptance: compile_model output == Session output, task by task."""
        canonical = canonicals[model]
        options = CONFIGS[config_index]
        arch = _arch_for(canonical)
        via_session = Session(arch, cache=False).compile(
            canonical, options, assume_canonical=True
        )
        via_shim = compile_model(canonical, arch, options, assume_canonical=True)
        assert via_shim.schedule.policy == via_session.schedule.policy
        assert via_shim.schedule.tasks == via_session.schedule.tasks
        assert via_shim.placement.pe_ranges == via_session.placement.pe_ranges
        assert via_shim.sets == via_session.sets
        metrics_session = via_session.evaluate()
        metrics_shim = via_shim.evaluate()
        assert metrics_shim == metrics_session

    def test_session_cache_reused_across_compiles(self, canonicals):
        canonical = canonicals["tiny_sequential"]
        session = Session(_arch_for(canonical))
        assert isinstance(session.cache, CompilationCache)
        first = session.compile(canonical, assume_canonical=True)
        hits_after_first = session.cache.hits
        second = session.compile(canonical, assume_canonical=True)
        assert second.schedule.tasks == first.schedule.tasks
        assert session.cache.hits > hits_after_first

    def test_cache_false_disables_caching(self, canonicals):
        session = Session(_arch_for(canonicals["tiny_sequential"]), cache=False)
        assert session.cache is None
        assert "uncached" in repr(session)

    def test_shared_cache_between_sessions(self, canonicals):
        canonical = canonicals["tiny_sequential"]
        arch = _arch_for(canonical)
        first = Session(arch)
        first.compile(canonical, assume_canonical=True)
        second = Session(arch, cache=first.cache)
        assert second.cache is first.cache
        misses_before = first.cache.misses
        second.compile(canonical, assume_canonical=True)
        assert first.cache.misses == misses_before  # fully served from cache


class TestSessionEvaluate:
    def test_evaluate_graph_and_compiled_agree(self, canonicals):
        canonical = canonicals["tiny_csp"]
        session = Session(_arch_for(canonical))
        compiled = session.compile(canonical, assume_canonical=True)
        from_graph = session.evaluate(canonical, assume_canonical=True)
        from_compiled = session.evaluate(compiled)
        assert from_graph == from_compiled
        assert from_compiled == compiled.evaluate()


class TestSessionHooks:
    def test_pass_hooks_fire_in_order(self, canonicals):
        canonical = canonicals["tiny_sequential"]
        events = []
        hooks = SessionHooks(
            on_pass_start=lambda name, ctx: events.append(("start", name)),
            on_pass_end=lambda name, ctx, seconds: events.append(("end", name)),
            on_compile_start=lambda ctx: events.append(("compile-start", None)),
            on_compile_end=lambda compiled: events.append(("compile-end", None)),
        )
        session = Session(_arch_for(canonical), hooks=hooks)
        session.compile(canonical, assume_canonical=True)
        assert events[0] == ("compile-start", None)
        assert events[-1] == ("compile-end", None)
        started = [name for kind, name in events if kind == "start"]
        ended = [name for kind, name in events if kind == "end"]
        assert started == ended
        assert started[0] == "preprocess" and started[-1] == "schedule"

    def test_multiple_hooks_supported(self, canonicals):
        canonical = canonicals["tiny_sequential"]
        counts = [0, 0]
        hooks = [
            SessionHooks(on_pass_end=lambda n, c, s: counts.__setitem__(0, counts[0] + 1)),
            SessionHooks(on_pass_end=lambda n, c, s: counts.__setitem__(1, counts[1] + 1)),
        ]
        Session(_arch_for(canonical), hooks=hooks).compile(
            canonical, assume_canonical=True
        )
        assert counts[0] == counts[1] > 0


class TestSessionSweep:
    def test_sweep_matches_executor_numbers(self, canonicals):
        from repro.analysis.sweep import sweep_all
        from repro.models import benchmark_by_name

        spec = benchmark_by_name("tinyyolov3")
        graph = preprocess(spec.build(), quantization=None).graph
        session = Session(paper_case_study(1))
        via_session = session.sweep(
            ["tinyyolov3"], xs=(4,), graphs={"tinyyolov3": graph}
        )
        via_executor = sweep_all([spec], xs=(4,), graphs={"tinyyolov3": graph})

        def numbers(results):
            return [
                (p.benchmark, p.config, p.extra_pes, p.speedup, p.utilization)
                for result in results
                for p in result.points
            ]

        assert numbers(via_session) == numbers(via_executor)
        # The sweep populated the session's own cache.
        assert session.cache.hits > 0

    def test_sweep_accepts_spec_objects(self, canonicals):
        from repro.models import benchmark_by_name

        spec = benchmark_by_name("tinyyolov3")
        graph = preprocess(spec.build(), quantization=None).graph
        session = Session(paper_case_study(1), cache=False)
        results = session.sweep([spec], xs=(4,), graphs={spec.name: graph})
        assert results[0].benchmark == "tinyyolov3"
        assert len(results[0].points) == 3  # xinf + wdup+4 + wdup+xinf+4


class TestSweepHonoursSessionCustomization:
    def test_hooks_observe_sweep_points(self, canonicals):
        from repro.models import benchmark_by_name

        spec = benchmark_by_name("tinyyolov3")
        graph = preprocess(spec.build(), quantization=None).graph
        scheduled = []
        hooks = SessionHooks(
            on_pass_end=lambda name, ctx, s: (
                scheduled.append(name) if name == "schedule" else None
            )
        )
        session = Session(paper_case_study(1), hooks=hooks)
        results = session.sweep(["tinyyolov3"], xs=(4,), graphs={spec.name: graph})
        # baseline + xinf + wdup+4 + wdup+xinf+4 = 4 compiled points
        assert len(scheduled) == 4
        assert len(results[0].points) == 3

    def test_custom_pass_manager_degrades_to_threads_with_warning(self, canonicals):
        from repro.core.passes import default_pass_manager
        from repro.models import benchmark_by_name

        spec = benchmark_by_name("tinyyolov3")
        graph = preprocess(spec.build(), quantization=None).graph

        seen = []

        class Probe:
            name = "probe"

            def run(self, ctx):
                seen.append(ctx.arch.num_pes)

        manager = default_pass_manager()
        manager.insert_after("schedule", Probe())
        session = Session(paper_case_study(1), pass_manager=manager)
        with pytest.warns(RuntimeWarning, match="degrading to thread workers"):
            results = session.sweep(
                ["tinyyolov3"], xs=(4,), jobs=4, graphs={spec.name: graph}
            )
        # The inserted pass ran on every point, parallel or not.
        assert len(seen) == 4
        reference = Session(paper_case_study(1)).sweep(
            ["tinyyolov3"], xs=(4,), graphs={spec.name: graph}
        )
        assert [
            (p.config, p.speedup) for p in results[0].points
        ] == [(p.config, p.speedup) for p in reference[0].points]


class TestCustomSchedulerThroughSession:
    def test_registered_scheduler_compiles_end_to_end(self, canonicals):
        """Acceptance: a custom scheduler plugs in via register_scheduler
        and compiles through the Session without touching core."""
        canonical = canonicals["tiny_sequential"]

        def alphabetical(ctx):
            cursor = 0
            tasks = []
            for layer in sorted(ctx.sets):
                for index, rect in enumerate(ctx.sets[layer]):
                    tasks.append(
                        SetTask(
                            layer=layer,
                            set_index=index,
                            rect=rect,
                            start=cursor,
                            end=cursor + rect.area,
                        )
                    )
                    cursor += rect.area
            return Schedule(policy="alphabetical", tasks=tasks)

        register_scheduler("alphabetical", alphabetical, needs_dependencies=False)
        try:
            session = Session(_arch_for(canonical))
            compiled = session.compile(
                canonical,
                ScheduleOptions(mapping="wdup", scheduling="alphabetical"),
                assume_canonical=True,
            )
        finally:
            unregister_scheduler("alphabetical")
        assert compiled.schedule.policy == "alphabetical"
        assert compiled.schedule.makespan > 0
        assert compiled.evaluate().utilization > 0
