"""Tests for the clsa-cim command-line interface."""

import json

import pytest

from repro.cli import main


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "PE_min = 117" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "tinyyolov3" in out
        assert "936" in out


class TestSchedule:
    def test_schedule_defaults(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--extra-pes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wdup+xinf" in out
        assert "Speedup" in out or "speedup" in out
        assert "utilization" in out

    def test_schedule_gantt(self, capsys):
        code = main(
            ["schedule", "--model", "tiny_sequential", "--mapping", "none", "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out  # gantt busy marks

    def test_schedule_coarse_granularity(self, capsys):
        code = main(
            ["schedule", "--model", "tiny_csp", "--rows-per-set", "4",
             "--scheduling", "layer-by-layer"]
        )
        assert code == 0
        assert "layer-by-layer" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "alexnet"])


class TestSweep:
    def test_sweep_text(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7(a)" in out
        assert "Best speedup" in out

    def test_sweep_csv(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines[0].startswith("benchmark,config")
        # baseline + xinf + wdup + wdup+xinf = 4 rows
        assert len(lines) == 5

    def test_sweep_json(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["benchmark"] == "tinyyolov4"
        assert payload[0]["min_pes"] == 117
        assert len(payload[0]["points"]) == 3

    def test_sweep_jobs_and_no_cache_match_defaults(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv"])
        assert code == 0
        default_out = capsys.readouterr().out
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv", "--jobs", "2", "--no-cache"])
        assert code == 0
        assert capsys.readouterr().out == default_out

    def test_sweep_help_documents_engine_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out
        assert "worker processes" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestScheduleAnalysisFlags:
    def test_critical_path_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--critical-path"])
        assert code == 0
        assert "critical path" in capsys.readouterr().out

    def test_buffers_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--buffers"])
        assert code == 0
        assert "buffer occupancy" in capsys.readouterr().out

    def test_energy_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--energy"])
        assert code == 0
        assert "uJ" in capsys.readouterr().out

    def test_batch_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--batch", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 4" in out
        assert "images/ms" in out

    def test_batch_requires_clsa_cim(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--scheduling", "layer-by-layer", "--batch", "2"])
        assert code == 2
        assert "requires" in capsys.readouterr().out
