"""Tests for the clsa-cim command-line interface."""

import json

import pytest

from repro.cli import main


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        prog, _, version = out.partition(" ")
        assert prog == "clsa-cim"
        assert version  # non-empty, e.g. "1.2.0"
        assert all(part.isdigit() for part in version.split("."))

    def test_version_matches_package_metadata(self, capsys):
        """Installed metadata wins; source trees fall back to the
        module constant — either way the printed version is the
        resolved package version."""
        from repro.cli import _package_version

        with pytest.raises(SystemExit):
            main(["--version"])
        assert _package_version() in capsys.readouterr().out

    def test_version_fallback_without_metadata(self, monkeypatch):
        """Uninstalled source checkouts report repro.__version__."""
        import importlib.metadata

        import repro
        from repro.cli import _package_version

        def missing(_name):
            raise importlib.metadata.PackageNotFoundError

        monkeypatch.setattr(importlib.metadata, "version", missing)
        assert _package_version() == repro.__version__


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "PE_min = 117" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "tinyyolov3" in out
        assert "936" in out


class TestSchedule:
    def test_schedule_defaults(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--extra-pes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wdup+xinf" in out
        assert "Speedup" in out or "speedup" in out
        assert "utilization" in out

    def test_schedule_gantt(self, capsys):
        code = main(
            ["schedule", "--model", "tiny_sequential", "--mapping", "none", "--gantt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out  # gantt busy marks

    def test_schedule_coarse_granularity(self, capsys):
        code = main(
            ["schedule", "--model", "tiny_csp", "--rows-per-set", "4",
             "--scheduling", "layer-by-layer"]
        )
        assert code == 0
        assert "layer-by-layer" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "alexnet"])


class TestSweep:
    def test_sweep_text(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7(a)" in out
        assert "Best speedup" in out

    def test_sweep_csv(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines[0].startswith("benchmark,config")
        # baseline + xinf + wdup + wdup+xinf = 4 rows
        assert len(lines) == 5

    def test_sweep_json(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["benchmark"] == "tinyyolov4"
        assert payload[0]["min_pes"] == 117
        assert len(payload[0]["points"]) == 3

    def test_sweep_jobs_and_no_cache_match_defaults(self, capsys):
        def values(out):
            # The trailing cache_*/attempts/backend/status/error
            # columns record provenance (memory vs. store vs.
            # recompute, executor rung), which --no-cache and --jobs
            # change by design; the value columns must stay identical.
            return [line.rsplit(",", 7)[0] for line in out.splitlines()]

        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv"])
        assert code == 0
        default_out = capsys.readouterr().out
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv", "--jobs", "2", "--no-cache"])
        assert code == 0
        assert values(capsys.readouterr().out) == values(default_out)

    def test_sweep_help_documents_engine_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out
        assert "worker processes" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep_rows_per_set(self, capsys):
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv"])
        assert code == 0
        fine_out = capsys.readouterr().out
        code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                     "--format", "csv", "--rows-per-set", "8"])
        assert code == 0
        coarse_out = capsys.readouterr().out
        # Coarser sets change the schedule (different speedups).
        assert coarse_out != fine_out
        assert coarse_out.splitlines()[0] == fine_out.splitlines()[0]  # same header


class TestScheduleOptionKnobs:
    def test_order_mode_static(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--order-mode", "static"])
        assert code == 0
        assert "wdup+xinf" in capsys.readouterr().out

    def test_knobs_reach_schedule_options(self, capsys, monkeypatch):
        """Every new flag must land on the ScheduleOptions the Session
        compiles with (exit code 0 alone would not catch lost wiring)."""
        from repro.session import Session

        captured = []
        original = Session.compile

        def spy(self, graph, options=None, **kwargs):
            if options is not None:
                captured.append(options)
            return original(self, graph, options, **kwargs)

        monkeypatch.setattr(Session, "compile", spy)
        code = main(["schedule", "--model", "tiny_sequential",
                     "--order-mode", "static",
                     "--duplication-solver", "greedy",
                     "--duplication-axis", "height",
                     "--d-max-cap", "2",
                     "--rows-per-set", "3"])
        assert code == 0
        options = captured[0]
        assert options.order_mode == "static"
        assert options.duplication_solver == "greedy"
        assert options.duplication_axis == "height"
        assert options.d_max_cap == 2
        assert options.granularity.rows_per_set == 3

    def test_engine_flag_reaches_options(self, capsys, monkeypatch):
        from repro.session import Session

        captured = []
        original = Session.compile

        def spy(self, graph, options=None, **kwargs):
            if options is not None:
                captured.append(options)
            return original(self, graph, options, **kwargs)

        monkeypatch.setattr(Session, "compile", spy)
        code = main(["schedule", "--model", "tiny_sequential",
                     "--engine", "python"])
        assert code == 0
        assert captured[0].engine == "python"

    def test_engines_print_identical_metrics(self, capsys):
        outputs = []
        for engine in ("csr", "python"):
            assert main(["schedule", "--model", "tiny_sequential",
                         "--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_timings_table(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--timings"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pass" in out and "Wall clock" in out
        for pass_name in ("preprocess", "schedule", "total"):
            assert pass_name in out

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "tiny_sequential", "--engine", "julia"])

    def test_duplication_solver_greedy(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--duplication-solver", "greedy"])
        assert code == 0
        assert "duplicated layers" in capsys.readouterr().out

    def test_duplication_axis_height(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--duplication-axis", "height"])
        assert code == 0

    def test_d_max_cap_limits_duplication(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--extra-pes", "8", "--d-max-cap", "1"])
        assert code == 0
        # Capping every factor at 1 forbids duplication entirely.
        out = capsys.readouterr().out
        dup_line = next(l for l in out.splitlines() if "duplicated layers" in l)
        assert dup_line.rstrip().endswith("none")

    def test_invalid_knob_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "tiny_sequential",
                  "--order-mode", "bogus"])
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "tiny_sequential",
                  "--duplication-solver", "bogus"])
        with pytest.raises(SystemExit):
            main(["schedule", "--model", "tiny_sequential",
                  "--duplication-axis", "diagonal"])

    def test_schedule_help_documents_knobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["schedule", "--help"])
        out = capsys.readouterr().out
        for flag in ("--order-mode", "--duplication-solver",
                     "--duplication-axis", "--d-max-cap"):
            assert flag in out


class TestScheduleAnalysisFlags:
    def test_critical_path_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--critical-path"])
        assert code == 0
        assert "critical path" in capsys.readouterr().out

    def test_buffers_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--buffers"])
        assert code == 0
        assert "buffer occupancy" in capsys.readouterr().out

    def test_energy_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--energy"])
        assert code == 0
        assert "uJ" in capsys.readouterr().out

    def test_batch_flag(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential", "--batch", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 4" in out
        assert "images/ms" in out

    def test_batch_requires_clsa_cim(self, capsys):
        code = main(["schedule", "--model", "tiny_sequential",
                     "--scheduling", "layer-by-layer", "--batch", "2"])
        assert code == 2
        assert "requires" in capsys.readouterr().out


class TestCacheCommand:
    def _warm(self, tmp_path):
        store = str(tmp_path / "store")
        code = main(["schedule", "--model", "tiny_sequential",
                     "--store", store])
        assert code == 0
        return store

    def test_cache_path_prints_resolved_default(self, capsys, monkeypatch,
                                                tmp_path):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "env"))
        code = main(["cache", "path"])
        assert code == 0
        assert capsys.readouterr().out.strip() == str(tmp_path / "env")

    def test_cache_stats_text(self, capsys, tmp_path):
        store = self._warm(tmp_path)
        capsys.readouterr()
        code = main(["cache", "stats", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "stage schedule" in out

    def test_cache_stats_json(self, capsys, tmp_path):
        store = self._warm(tmp_path)
        capsys.readouterr()
        code = main(["cache", "stats", "--store", store, "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] > 0
        assert payload["schema"] == 1
        assert "schedule" in payload["per_stage"]

    def test_cache_gc_and_clear(self, capsys, tmp_path):
        store = self._warm(tmp_path)
        capsys.readouterr()
        code = main(["cache", "gc", "--store", store, "--max-bytes", "0"])
        assert code == 0
        assert "evicted" in capsys.readouterr().out
        code = main(["cache", "clear", "--store", store])
        assert code == 0
        assert "removed" in capsys.readouterr().out
        code = main(["cache", "stats", "--store", store, "--format", "json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_schedule_store_warm_run_reports_zero_misses(self, capsys,
                                                         tmp_path):
        store = self._warm(tmp_path)
        capsys.readouterr()
        code = main(["schedule", "--model", "tiny_sequential",
                     "--store", store, "--timings"])
        assert code == 0
        out = capsys.readouterr().out
        assert "miss=0" in out
        assert "store=" in out

    def test_sweep_store_flag(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        for _ in range(2):
            code = main(["sweep", "--models", "tinyyolov4", "--xs", "4",
                         "--format", "csv", "--store", store])
            assert code == 0
        out = capsys.readouterr().out
        csv = out.splitlines()
        # Second sweep's rows: no stage recomputed anywhere.
        warm_rows = csv[len(csv) // 2 + 1:]
        for row in warm_rows:
            assert row.split(",")[12] == "0", row  # cache_misses column

    def test_sweep_store_with_no_cache_errors(self, capsys, tmp_path):
        code = main(["sweep", "--models", "tinyyolov4", "--no-cache",
                     "--store", str(tmp_path / "s")])
        assert code == 2
        assert "requires" in capsys.readouterr().err
