"""Tests for Stage II dependency determination."""

from repro.core import (
    SetGranularity,
    determine_dependencies,
    determine_sets,
    layer_level_dependencies,
    trace_to_base,
)
from repro.frontend import preprocess
from repro.ir import GraphBuilder, Rect


def two_conv_with_pool():
    """Conv -> relu -> pool -> conv: the Fig. 5 shape of non-base path."""
    b = GraphBuilder("net")
    x = b.input((8, 8, 3), name="in")
    c1 = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c1")
    r = b.relu(c1)
    p = b.maxpool(r, 2)
    b.conv2d(p, 8, kernel=1, padding="valid", use_bias=False, name="c2")
    return b.graph


class TestTraceToBase:
    def test_through_elementwise_and_pool(self):
        g = two_conv_with_pool()
        # c2's input region [0,1) x [0,4) of the pooled map -> c1 rows 0-1
        results = trace_to_base(g, g["c2"].inputs[0], Rect(0, 0, 1, 4))
        assert results == [("c1", Rect(0, 0, 2, 8))]

    def test_stops_at_input(self):
        g = two_conv_with_pool()
        results = trace_to_base(g, "in", Rect(0, 0, 4, 4))
        assert results == []  # graph inputs impose no dependencies

    def test_empty_region_short_circuits(self):
        g = two_conv_with_pool()
        assert trace_to_base(g, g["c2"].inputs[0], Rect.empty()) == []

    def test_branches_traced_through_add(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 3), name="in")
        c1 = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c1")
        c2 = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c2")
        s = b.add([c1, c2])
        b.conv2d(s, 8, kernel=1, padding="valid", use_bias=False, name="c3")
        g = b.graph
        results = trace_to_base(g, g["c3"].inputs[0], Rect(0, 0, 2, 2))
        assert ("c1", Rect(0, 0, 2, 2)) in results
        assert ("c2", Rect(0, 0, 2, 2)) in results

    def test_padding_region_dropped(self):
        """Regions that land entirely in explicit padding have no deps."""
        b = GraphBuilder("net")
        x = b.input((4, 4, 3), name="in")
        c1 = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c1")
        p = b.pad(c1, (2, 0, 0, 0))
        b.conv2d(p, 8, kernel=1, padding="valid", use_bias=False, name="c2")
        g = b.graph
        # c2 rows [0, 2) read only the zero padding
        results = trace_to_base(g, g["c2"].inputs[0], Rect(0, 0, 2, 4))
        assert results == []


class TestDetermineDependencies:
    def test_pooling_dependency_pattern(self):
        g = two_conv_with_pool()
        sets = determine_sets(g)  # c1: 8 row sets; c2: 4 row sets
        deps = determine_dependencies(g, sets)
        # c2 row r needs c1 rows 2r and 2r+1 (2x2/2 pooling)
        for r in range(4):
            assert deps.predecessors("c2", r) == [("c1", 2 * r), ("c1", 2 * r + 1)]
        # c1 reads only the graph input
        for r in range(8):
            assert deps.predecessors("c1", r) == []

    def test_conv3x3_overlapping_dependencies(self):
        b = GraphBuilder("net")
        x = b.input((6, 6, 3), name="in")
        c1 = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c1")
        b.conv2d(c1, 8, kernel=3, padding="valid", use_bias=False, name="c2")
        g = b.graph
        sets = determine_sets(g)
        deps = determine_dependencies(g, sets)
        # c2 row r (4 rows) needs c1 rows r..r+2: the paper's P relation
        for r in range(4):
            assert deps.predecessors("c2", r) == [("c1", r), ("c1", r + 1), ("c1", r + 2)]

    def test_coarse_sets_fig5_style(self):
        g = two_conv_with_pool()
        granularity = SetGranularity(rows_per_set=None, target_sets=4)
        sets = determine_sets(g, granularity)
        deps = determine_dependencies(g, sets)
        assert deps.num_sets() == len(sets["c1"]) + len(sets["c2"])
        mean_fan_in, max_fan_in = deps.fan_in_stats()
        assert max_fan_in >= 1
        assert mean_fan_in > 0

    def test_edge_count(self):
        g = two_conv_with_pool()
        sets = determine_sets(g)
        deps = determine_dependencies(g, sets)
        assert deps.edge_count() == 8  # 4 c2-rows x 2 producer rows

    def test_dual_head_model(self):
        from repro.models import tiny_dual_head

        canonical = preprocess(tiny_dual_head(), quantization=None).graph
        sets = determine_sets(canonical)
        deps = determine_dependencies(canonical, sets)
        # every set of every base layer has an entry
        assert deps.num_sets() == sum(len(v) for v in sets.values())
        assert set(deps.deps) == {
            (layer, i) for layer, rects in sets.items() for i in range(len(rects))
        }


class TestLayerLevelDependencies:
    def test_chain(self):
        g = two_conv_with_pool()
        preds = layer_level_dependencies(g)
        assert preds == {"c1": [], "c2": ["c1"]}

    def test_residual_branches(self):
        from repro.models import tiny_residual

        canonical = preprocess(tiny_residual(), quantization=None).graph
        preds = layer_level_dependencies(canonical)
        base = canonical.base_layers()
        # the last conv feeds the Add; the Add output is consumed by relu
        # only, so the final conv's preds include the first conv via Add
        last = base[-1]
        assert len(preds[last]) >= 1

    def test_upsample_concat_path(self):
        from repro.models import tiny_dual_head

        canonical = preprocess(tiny_dual_head(), quantization=None).graph
        preds = layer_level_dependencies(canonical)
        # the fine head's conv depends on two base layers via the concat
        multi = [layer for layer, p in preds.items() if len(p) >= 2]
        assert multi


class TestRectIndex:
    """The interval index must agree exactly with the all-pairs scan."""

    def brute_force(self, rects, region):
        return [(i, r) for i, r in enumerate(rects) if r.intersects(region)]

    def test_stripe_sets(self):
        from repro.core import RectIndex

        rects = [Rect(r, 0, r + 1, 16) for r in range(32)]
        index = RectIndex(rects)
        for region in (Rect(0, 0, 1, 16), Rect(5, 3, 9, 12),
                       Rect(31, 0, 32, 16), Rect(0, 0, 32, 16)):
            assert index.query(region) == self.brute_force(rects, region)

    def test_empty_region(self):
        from repro.core import RectIndex

        index = RectIndex([Rect(0, 0, 4, 4)])
        assert index.query(Rect(2, 2, 2, 2)) == []

    def test_random_rect_soup(self):
        """Correct for arbitrary (even overlapping, ragged) rect lists."""
        import random

        from repro.core import RectIndex

        rng = random.Random(1234)
        for _ in range(20):
            rects = [
                Rect(r0, c0, r0 + rng.randint(1, 7), c0 + rng.randint(1, 7))
                for r0, c0 in (
                    (rng.randint(0, 40), rng.randint(0, 40)) for _ in range(60)
                )
            ]
            index = RectIndex(rects)
            for _ in range(50):
                r0, c0 = rng.randint(0, 45), rng.randint(0, 45)
                region = Rect(r0, c0, r0 + rng.randint(1, 10), c0 + rng.randint(1, 10))
                assert index.query(region) == self.brute_force(rects, region)

    def test_indexed_and_naive_stage2_agree(self):
        from repro.models import tiny_dual_head

        canonical = preprocess(tiny_dual_head(), quantization=None).graph
        sets = determine_sets(canonical)
        fast = determine_dependencies(canonical, sets, use_index=True)
        slow = determine_dependencies(canonical, sets, use_index=False)
        assert fast.deps == slow.deps

    def test_indexed_and_naive_agree_at_coarse_granularity(self):
        g = two_conv_with_pool()
        sets = determine_sets(g, SetGranularity(rows_per_set=None, target_sets=4))
        fast = determine_dependencies(g, sets, use_index=True)
        slow = determine_dependencies(g, sets, use_index=False)
        assert fast.deps == slow.deps

    def test_empty_rects_excluded_like_naive_scan(self):
        from repro.core import RectIndex

        rects = [Rect(0, 0, 2, 4), Rect(2, 0, 2, 5), Rect(2, 0, 4, 4)]
        index = RectIndex(rects)
        region = Rect(0, 0, 10, 10)
        assert index.query(region) == self.brute_force(rects, region)
        assert all(not r.is_empty() for _, r in index.query(region))

    def test_row_major_entry_order_skips_query_sort(self):
        """Stage I emits row-major sets: (r0, c0) order *is* index order,
        so the fast path (no per-query sort) must still return hits
        sorted by set index, pinned against the naive scan."""
        from repro.core import RectIndex
        from repro.core.sets import partition_ofm
        from repro.ir import Shape

        rects = partition_ofm(Shape(16, 8, 3))  # row-major stripes
        index = RectIndex(rects)
        assert index._presorted
        for region in (Rect(0, 0, 3, 8), Rect(5, 2, 11, 7), Rect(0, 0, 16, 8)):
            hits = index.query(region)
            assert hits == self.brute_force(rects, region)
            assert [i for i, _ in hits] == sorted(i for i, _ in hits)

    def test_shuffled_entry_order_still_sorts_by_index(self):
        """When (r0, c0) order disagrees with set order the final sort
        is kept, so query order matches the naive scan exactly."""
        import random

        from repro.core import RectIndex

        rects = [Rect(r, 0, r + 1, 8) for r in range(12)]
        random.Random(7).shuffle(rects)
        index = RectIndex(rects)
        assert not index._presorted
        region = Rect(2, 0, 9, 8)
        assert index.query(region) == self.brute_force(rects, region)
