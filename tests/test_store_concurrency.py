"""Concurrency and crash-safety of the persistent artifact store.

These tests drive real child processes (lock contention needs two
writers that do not share an interpreter); restricted sandboxes that
cannot fork/exec skip rather than fail.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.cache import CompilationCache, graph_fingerprint
from repro.frontend import preprocess
from repro.models import tiny_sequential
from repro.store import ArtifactStore

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _run_children(scripts, timeout=120):
    """Run child scripts concurrently; skip where process spawn fails."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    try:
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for script in scripts
        ]
    except OSError as exc:  # pragma: no cover - restricted sandboxes
        pytest.skip(f"cannot spawn child processes: {exc}")
    outs = []
    for proc in procs:
        out, err = proc.communicate(timeout=timeout)
        outs.append((proc.returncode, out.decode(), err.decode()))
    return outs


_COMPILE_CHILD = """
import sys
from repro.arch import paper_case_study
from repro.core import ScheduleOptions
from repro.core.cache import CompilationCache
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.session import Session
from repro.store import ArtifactStore

canonical = preprocess(tiny_sequential(), quantization=None).graph
min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
cache = CompilationCache(store=ArtifactStore({root!r}))
session = Session(paper_case_study(min_pes + 8), cache=cache)
compiled = session.compile(canonical, ScheduleOptions(), assume_canonical=True)
print(compiled.evaluate().latency_cycles)
print(cache.misses, cache.store_hits)
"""

_KILLED_WRITER_CHILD = """
import os
import signal
from repro.frontend import preprocess
from repro.models import tiny_sequential
from repro.store import ArtifactStore
from repro.core.cache import graph_fingerprint

# Die at the exact atomic-rename point: the entry is fully written and
# fsynced under tmp/, but never published.
_real_replace = os.replace
def _killed(src, dst):
    if "objects" in dst:
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_replace(src, dst)
os.replace = _killed

store = ArtifactStore({root!r})
canonical = preprocess(tiny_sequential(), quantization=None).graph
store.put("preprocess", ("preprocess", graph_fingerprint(canonical)), canonical)
raise SystemExit("unreachable: the put above must die at os.replace")
"""


class TestConcurrentWriters:
    def test_two_simultaneous_processes_share_one_store(self, tmp_path):
        root = str(tmp_path / "store")
        script = _COMPILE_CHILD.format(root=root)
        results = _run_children([script, script])
        latencies = set()
        for code, out, err in results:
            assert code == 0, err
            lines = out.splitlines()
            latencies.add(lines[0])
        assert len(latencies) == 1  # identical metrics either way

        # No torn state: every published entry parses and verifies.
        store = ArtifactStore(root)
        stats = store.stats()
        assert stats.entries >= 6
        assert stats.quarantined == 0
        canonical = preprocess(tiny_sequential(), quantization=None).graph
        fresh = CompilationCache(store=store)
        from repro.arch import paper_case_study
        from repro.core import ScheduleOptions
        from repro.mapping import minimum_pe_requirement
        from repro.session import Session

        min_pes = minimum_pe_requirement(
            canonical, paper_case_study(1).crossbar
        )
        Session(paper_case_study(min_pes + 8), cache=fresh).compile(
            canonical, ScheduleOptions(), assume_canonical=True
        )
        assert fresh.misses == 0, fresh.summary()
        assert store.corrupt == 0

    def test_no_tmp_litter_after_clean_writers(self, tmp_path):
        root = str(tmp_path / "store")
        _run_children([_COMPILE_CHILD.format(root=root)])
        assert os.listdir(os.path.join(root, "tmp")) == []


class TestKilledWriter:
    def test_killed_writer_publishes_nothing_visible(self, tmp_path):
        root = str(tmp_path / "store")
        results = _run_children([_KILLED_WRITER_CHILD.format(root=root)])
        code, _out, err = results[0]
        assert code == -9, err  # SIGKILL at the rename point

        store = ArtifactStore(root)
        assert store.stats().entries == 0  # nothing published
        canonical = preprocess(tiny_sequential(), quantization=None).graph
        key = ("preprocess", graph_fingerprint(canonical))
        assert store.get("preprocess", key) == (False, None)

        # The fsynced-but-unpublished write is tmp litter...
        litter = os.listdir(os.path.join(root, "tmp"))
        assert len(litter) == 1
        # ...which an aged GC sweeps.
        path = os.path.join(root, "tmp", litter[0])
        os.utime(path, (1, 1))
        assert store.gc().swept_tmp == 1
        assert os.listdir(os.path.join(root, "tmp")) == []

    def test_store_still_writable_after_killed_writer(self, tmp_path):
        root = str(tmp_path / "store")
        _run_children([_KILLED_WRITER_CHILD.format(root=root)])
        store = ArtifactStore(root)
        canonical = preprocess(tiny_sequential(), quantization=None).graph
        key = ("preprocess", graph_fingerprint(canonical))
        assert store.put("preprocess", key, canonical)
        hit, _value = store.get("preprocess", key)
        assert hit


class TestCorruptionAcrossProcesses:
    def test_corrupted_entry_quarantined_and_recompiled(self, tmp_path):
        root = str(tmp_path / "store")
        results = _run_children([_COMPILE_CHILD.format(root=root)])
        assert results[0][0] == 0, results[0][2]

        # Corrupt every published entry in place.
        store = ArtifactStore(root)
        paths = [path for path, _s, _m in store._scan_entries()]
        assert paths
        for path in paths:
            with open(path, "r+") as handle:
                record = json.load(handle)
                record["payload"] = {"tampered": True}
                handle.seek(0)
                json.dump(record, handle)
                handle.truncate()

        # A fresh child recompiles (exit 0) instead of crashing...
        results = _run_children([_COMPILE_CHILD.format(root=root)])
        code, out, err = results[0]
        assert code == 0, err
        misses, store_hits = out.splitlines()[1].split()
        assert int(misses) > 0  # recompiled
        # ...and the bad entries are quarantined, then republished.
        stats = ArtifactStore(root).stats()
        assert stats.quarantined == len(paths)
        assert stats.entries >= 6
