"""End-to-end integration tests against the paper's published numbers.

These run the real TinyYOLOv4 case study (Sec. V-A) through the full
stack — zoo model, preprocessing, Optimization Problem 1, the Fig. 4
rewrite, Stages I-IV, metrics — and assert the paper's reference points
at test-suite granularity (the benchmark harness covers the full grid).
"""

import pytest

from repro.arch import paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.models import CASE_STUDY
from repro.sim import evaluate, simulate


@pytest.fixture(scope="module")
def canonical():
    return preprocess(CASE_STUDY.build(), quantization=None).graph


@pytest.fixture(scope="module")
def baseline(canonical):
    return compile_model(
        canonical,
        paper_case_study(CASE_STUDY.min_pes),
        ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
        assume_canonical=True,
    )


class TestCaseStudyIntegration:
    def test_baseline_utilization_matches_eq3_implication(self, baseline):
        """Paper's Fig. 6c numbers imply Ut_lbl ~1.65 % via Eq. 3."""
        metrics = evaluate(baseline)
        assert metrics.utilization == pytest.approx(0.0165, abs=0.002)

    def test_xinf_utilization_41_percent(self, canonical, baseline):
        """Paper: 'CLSA-CIM (xinf) increases the utilization ... to 4.1 %'."""
        xinf = compile_model(
            canonical,
            paper_case_study(CASE_STUDY.min_pes),
            ScheduleOptions(mapping="none", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        metrics = evaluate(xinf)
        assert metrics.utilization == pytest.approx(0.041, abs=0.005)

    def test_wdup16_duplicates_first_six_convs(self, canonical):
        """Paper: at x=16 'the first 6 Conv2D layers need to be duplicated'."""
        combo = compile_model(
            canonical,
            paper_case_study(CASE_STUDY.min_pes + 16),
            ScheduleOptions(mapping="wdup", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        assert combo.duplication.duplicated_layers == canonical.base_layers()[:6]

    def test_wdup32_headline(self, canonical, baseline):
        """Paper: wdup+32 reaches up to 28.4 % utilization / 21.9x speedup."""
        combo = compile_model(
            canonical,
            paper_case_study(CASE_STUDY.min_pes + 32),
            ScheduleOptions(mapping="wdup", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        metrics = evaluate(combo)
        speedup = metrics.speedup_over(evaluate(baseline))
        assert speedup > 15.0, f"speedup {speedup:.1f}x too far from paper's 21.9x"
        assert metrics.utilization > 0.20, (
            f"utilization {metrics.utilization:.1%} too far from paper's 28.4%"
        )

    def test_simulation_replays_schedule(self, canonical):
        """The event engine agrees with the analytical scheduler on the
        real case study, not just toy graphs."""
        combo = compile_model(
            canonical,
            paper_case_study(CASE_STUDY.min_pes + 16),
            ScheduleOptions(mapping="wdup", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        assert simulate(combo).finish_cycles == combo.latency_cycles

    def test_requirements_check_passes(self, canonical):
        from repro.arch import check_requirements

        arch = paper_case_study(CASE_STUDY.min_pes)
        report = check_requirements(canonical, arch, pe_demand=CASE_STUDY.min_pes)
        assert report.satisfied, report.issues
