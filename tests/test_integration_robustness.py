"""Robustness integration tests: unusual geometries through the stack.

Non-square inputs, non-square kernels, asymmetric strides and extreme
aspect ratios exercise the H/W symmetry of the region propagation,
duplication and scheduling math.
"""

import numpy as np
import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model, validate_schedule
from repro.frontend import preprocess
from repro.ir import Executor, GraphBuilder
from repro.mapping import minimum_pe_requirement
from repro.sim import evaluate, simulate


def compile_all(graph, extra=4):
    canonical = preprocess(graph, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    arch = paper_case_study(min_pes + extra)
    out = {}
    for mapping in ("none", "wdup"):
        for scheduling in ("layer-by-layer", "clsa-cim"):
            options = ScheduleOptions(mapping=mapping, scheduling=scheduling)
            out[options.paper_name] = compile_model(
                canonical, arch, options, assume_canonical=True
            )
    return out


class TestNonSquareGeometries:
    def make_wide_model(self):
        """A 24x64 input with rectangular kernels and mixed strides."""
        b = GraphBuilder("wide")
        x = b.input((24, 64, 3), name="in")
        x = b.conv2d(x, 8, kernel=(3, 5), strides=(1, 2), padding="same",
                     use_bias=True)
        x = b.relu(x)
        x = b.maxpool(x, (2, 2), padding="same")
        x = b.conv2d(x, 16, kernel=(5, 3), strides=(2, 1), padding="same",
                     use_bias=True)
        return b.graph

    def test_compiles_and_orders_hold(self):
        results = compile_all(self.make_wide_model())
        assert results["xinf"].latency_cycles <= results["layer-by-layer"].latency_cycles
        assert results["wdup+xinf"].latency_cycles <= results["wdup"].latency_cycles

    def test_schedules_valid(self):
        results = compile_all(self.make_wide_model())
        for compiled in results.values():
            compiled.schedule.validate_intra_layer_order()
            if compiled.dependencies is not None:
                validate_schedule(compiled.schedule, compiled.dependencies)

    def test_simulation_agrees(self):
        results = compile_all(self.make_wide_model())
        combo = results["wdup+xinf"]
        assert simulate(combo).finish_cycles == combo.latency_cycles

    def test_duplication_numerics_on_rectangles(self):
        g = self.make_wide_model()
        g.initialize_weights(seed=3)
        canonical = preprocess(g, quantization=None).graph
        results = compile_all(canonical)
        image = np.random.default_rng(1).normal(size=(24, 64, 3))
        expected = Executor(canonical).run_single(image)
        actual = Executor(results["wdup+xinf"].mapped).run_single(image)
        np.testing.assert_allclose(actual, expected, atol=1e-10)


class TestExtremeAspectRatios:
    @pytest.mark.parametrize("shape", [(4, 64, 2), (64, 4, 2), (1, 32, 2)])
    def test_thin_feature_maps(self, shape):
        b = GraphBuilder("thin")
        x = b.input(shape, name="in")
        x = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False)
        b.conv2d(x, 8, kernel=1, padding="valid", use_bias=False)
        results = compile_all(b.graph, extra=2)
        for compiled in results.values():
            assert compiled.latency_cycles > 0
            metrics = evaluate(compiled)
            assert 0 < metrics.utilization <= 1

    def test_single_row_map_duplication(self):
        """A 1-row OFM can still duplicate along the width."""
        b = GraphBuilder("row")
        x = b.input((1, 64, 2), name="in")
        b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False)
        results = compile_all(b.graph, extra=3)
        combo = results["wdup+xinf"]
        assert combo.duplication.duplicated_layers  # width cut succeeded


class TestStrideKernelCombos:
    @pytest.mark.parametrize("kernel,stride", [(1, 1), (3, 1), (3, 2), (5, 2), (7, 4)])
    def test_region_math_consistency(self, kernel, stride):
        """Cross-layer schedules remain valid across window geometries."""
        size = 33  # odd size stresses SAME padding asymmetry
        b = GraphBuilder("windows")
        x = b.input((size, size, 2), name="in")
        x = b.conv2d(x, 4, kernel=kernel, strides=stride, padding="same",
                     use_bias=False)
        b.conv2d(x, 4, kernel=3, padding="same", use_bias=False)
        results = compile_all(b.graph, extra=2)
        combo = results["wdup+xinf"]
        validate_schedule(combo.schedule, combo.dependencies)
        assert simulate(combo).finish_cycles == combo.latency_cycles
