"""Verifier wiring through the stack: Session, PassManager, jobs, CLI.

The verifier is not a standalone library — every layer exposes it:
``Session.verify`` accepts graphs, compiled models and artifact paths;
``PassManager(verify=...)`` runs it during compilation; job envelopes
carry reports when ``verify=True``; and the ``repro verify`` CLI turns
reports into exit codes.  A hypothesis property test closes the loop:
any random model that compiles must verify clean.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import paper_case_study
from repro.core import VERIFY_MODES, ScheduleOptions
from repro.core.passes import CompilationContext, PassManager
from repro.exec.jobs import CompileJob, EvaluateJob
from repro.frontend import preprocess
from repro.ir import Graph, GraphBuilder
from repro.mapping import minimum_pe_requirement
from repro.models import build
from repro.session import Session
from repro.verify import VerifyReport


def min_pes_for(canonical: Graph) -> int:
    return minimum_pe_requirement(canonical, paper_case_study(1).crossbar)


def roomy_arch(num_pes):
    arch = paper_case_study(num_pes)
    tile = dataclasses.replace(
        arch.tile, input_buffer_bytes=1 << 20, output_buffer_bytes=1 << 20
    )
    return dataclasses.replace(arch, tile=tile)


@pytest.fixture(scope="module")
def canonical():
    return preprocess(build("tiny_sequential"), quantization=None).graph


@pytest.fixture(scope="module")
def session(canonical):
    return Session(roomy_arch(min_pes_for(canonical) + 4))


@pytest.fixture(scope="module")
def compiled(session, canonical):
    return session.compile(canonical, assume_canonical=True)


# ---------------------------------------------------------------------------
# Session.verify — one entry point, three target kinds
# ---------------------------------------------------------------------------


class TestSessionVerify:
    def test_compiled_model(self, session, compiled):
        report = session.verify(compiled)
        assert isinstance(report, VerifyReport)
        assert report.clean

    def test_graph_uses_session_arch(self, canonical):
        # a 1-PE session cannot hold the weights: arch rules fire
        report = Session(paper_case_study(1)).verify(canonical)
        assert not report.ok
        assert report.by_rule("arch.pe-capacity")

    def test_artifact_path(self, session, compiled, tmp_path):
        path = tmp_path / "m.json"
        compiled.save(path)
        report = session.verify(str(path))
        assert report.clean

    def test_rule_selection(self, session, compiled):
        report = session.verify(compiled, rules=("schedule.raw-race",))
        assert report.rules_run == ("schedule.raw-race",)

    def test_cheap_cost_skips_full_rules(self, session, compiled):
        report = session.verify(compiled, cost="cheap")
        assert "schedule.buffer-capacity" not in report.rules_run
        assert "schedule.buffer-capacity" in report.rules_skipped


# ---------------------------------------------------------------------------
# PassManager verify modes
# ---------------------------------------------------------------------------


class TestPassManagerVerify:
    def _ctx(self, canonical, arch):
        return CompilationContext(
            graph=canonical,
            arch=arch,
            options=ScheduleOptions(),
            assume_canonical=True,
        )

    def test_modes_constant(self):
        assert VERIFY_MODES == ("off", "final", "each_pass")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="verify must be one of"):
            PassManager(verify="sometimes")

    def test_off_mode_records_nothing(self, canonical):
        ctx = PassManager(verify="off").run(
            self._ctx(canonical, roomy_arch(min_pes_for(canonical) + 4))
        )
        assert ctx.verify_report is None

    def test_final_mode_clean(self, canonical):
        ctx = PassManager(verify="final").run(
            self._ctx(canonical, roomy_arch(min_pes_for(canonical) + 4))
        )
        assert ctx.verify_report is not None
        assert ctx.verify_report.clean
        assert not any("verify (" in line for line in ctx.diagnostics)

    def test_final_mode_records_findings(self, canonical):
        arch = roomy_arch(min_pes_for(canonical) + 4)
        tile = dataclasses.replace(
            arch.tile, input_buffer_bytes=0, output_buffer_bytes=0
        )
        ctx = PassManager(verify="final").run(
            self._ctx(canonical, dataclasses.replace(arch, tile=tile))
        )
        report = ctx.verify_report
        assert report is not None and not report.ok
        assert report.by_rule("arch.buffers")
        # findings surface as compilation diagnostics, never as aborts
        assert any(
            "verify (final): error[arch.buffers]" in line
            for line in ctx.diagnostics
        )

    def test_each_pass_mode_merges_reports(self, canonical):
        ctx = PassManager(verify="each_pass").run(
            self._ctx(canonical, roomy_arch(min_pes_for(canonical) + 4))
        )
        report = ctx.verify_report
        assert report is not None and report.clean
        # the final full pass ran on top of the per-pass cheap runs
        assert "schedule.buffer-capacity" in report.rules_run

    def test_session_with_verifying_pass_manager(self, canonical):
        session = Session(
            roomy_arch(min_pes_for(canonical) + 4),
            pass_manager=PassManager(verify="final"),
        )
        compiled = session.compile(canonical, assume_canonical=True)
        assert compiled.latency_cycles > 0


# ---------------------------------------------------------------------------
# job envelopes
# ---------------------------------------------------------------------------


class TestJobVerifyReports:
    def test_evaluate_job_carries_report(self, session):
        result = session.submit(
            EvaluateJob(graph="tiny_sequential", verify=True)
        ).result()
        assert isinstance(result.verify_report, VerifyReport)
        assert result.verify_report.clean

    def test_default_is_no_report(self, session):
        result = session.submit(EvaluateJob(graph="tiny_sequential")).result()
        assert result.verify_report is None

    def test_compile_job_carries_report(self, session):
        result = session.submit(
            CompileJob(graph="tiny_sequential", verify=True)
        ).result()
        assert result.verify_report is not None
        assert result.verify_report.clean
        assert result.value.latency_cycles > 0


# ---------------------------------------------------------------------------
# sweep plumbing
# ---------------------------------------------------------------------------


def test_sweep_attaches_reports(session, canonical):
    from repro.models.zoo import BenchmarkSpec

    spec = BenchmarkSpec(
        "tiny_sequential",
        input_shape=canonical.infer_shapes()[canonical.input_names()[0]].hwc,
        base_layers=0,
        min_pes=min_pes_for(canonical),
    )
    [result] = session.sweep([spec], xs=(4,), verify=True)
    assert result.baseline_verify_report is not None
    assert result.baseline_verify_report.ok
    for point in result.points:
        assert point.verify_report is not None
        assert point.verify_report.ok


def test_sweep_default_attaches_nothing(session, canonical):
    from repro.models.zoo import BenchmarkSpec

    spec = BenchmarkSpec(
        "tiny_sequential",
        input_shape=canonical.infer_shapes()[canonical.input_names()[0]].hwc,
        base_layers=0,
        min_pes=min_pes_for(canonical),
    )
    [result] = session.sweep([spec], xs=(4,))
    assert result.baseline_verify_report is None
    assert all(point.verify_report is None for point in result.points)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_schedule_verify_save_then_verify_artifact(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "tiny.json"
        code = main(
            [
                "schedule",
                "--model",
                "tiny_sequential",
                "--verify",
                "--save",
                str(artifact),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"artifact written to {artifact}" in out
        assert "rule(s) run" in out  # the verify summary line
        assert artifact.exists()

        assert main(["verify", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "tiny_sequential" in out

    def test_verify_json_output(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "tiny.json"
        assert (
            main(
                ["schedule", "--model", "tiny_sequential", "--save", str(artifact)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["verify", str(artifact), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "rules_run" in payload

        # rule selection flows through
        assert (
            main(
                [
                    "verify",
                    str(artifact),
                    "--rules",
                    "schedule.raw-race",
                    "schedule.exclusivity",
                ]
            )
            == 0
        )
        assert "2 rule(s) run" in capsys.readouterr().out

    def test_verify_missing_artifact_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["verify", str(tmp_path / "nope.json")]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_verify_corrupt_artifact_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("this is not an artifact")
        assert main(["verify", str(bad)]) == 2
        assert "verify:" in capsys.readouterr().err

    def test_verify_unknown_rule_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "tiny.json"
        assert (
            main(
                ["schedule", "--model", "tiny_sequential", "--save", str(artifact)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["verify", str(artifact), "--rules", "schedule.nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# property: anything that compiles verifies clean
# ---------------------------------------------------------------------------


@st.composite
def random_models(draw):
    """Small random CNNs (chains, pooling, branches, residuals)."""
    b = GraphBuilder("random")
    size = draw(st.sampled_from([8, 12, 16]))
    x = b.input((size, size, 2), name="in")
    current_size = size
    for _ in range(draw(st.integers(1, 3))):
        choice = draw(st.sampled_from(["conv", "conv_pool", "branch", "residual"]))
        channels = draw(st.sampled_from([2, 4, 6]))
        kernel = draw(st.sampled_from([1, 3]))
        if choice == "conv":
            x = b.relu(b.conv2d(x, channels, kernel=kernel, padding="same"))
        elif choice == "conv_pool" and current_size >= 4:
            x = b.maxpool(b.conv2d(x, channels, kernel=kernel, padding="same"), 2)
            current_size //= 2
        elif choice == "branch":
            left = b.conv2d(x, channels, kernel=kernel, padding="same")
            right = b.conv2d(x, channels, kernel=1, padding="same")
            x = b.concat([left, right])
        else:
            inner = b.conv2d(x, channels, kernel=kernel, padding="same")
            skip = b.conv2d(x, channels, kernel=1, padding="same")
            x = b.relu(b.add([inner, skip]))
    return b.graph


@settings(max_examples=15, deadline=None)
@given(model=random_models(), engine=st.sampled_from(["csr", "python"]))
def test_property_random_compile_verifies_clean(model, engine):
    canonical = preprocess(model, quantization=None).graph
    session = Session(roomy_arch(min_pes_for(canonical) + 4))
    compiled = session.compile(
        canonical, ScheduleOptions(engine=engine), assume_canonical=True
    )
    report = session.verify(compiled)
    assert report.clean, report.format()
