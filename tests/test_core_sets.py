"""Tests for Stage I set partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import FINEST, SetGranularity, determine_sets, partition_ofm, validate_partition
from repro.ir import GraphBuilder, Shape


class TestGranularityConfig:
    def test_finest_default(self):
        assert FINEST.rows_per_set == 1

    def test_exactly_one_mode(self):
        with pytest.raises(ValueError):
            SetGranularity(rows_per_set=1, target_sets=4)
        with pytest.raises(ValueError):
            SetGranularity(rows_per_set=None, target_sets=None)

    def test_validation(self):
        with pytest.raises(ValueError):
            SetGranularity(rows_per_set=0)
        with pytest.raises(ValueError):
            SetGranularity(rows_per_set=None, target_sets=0)
        with pytest.raises(ValueError):
            SetGranularity(rows_per_set=1, min_rows=0)


class TestPartitionOfm:
    def test_row_granularity(self):
        sets = partition_ofm(Shape(13, 13, 512))
        assert len(sets) == 13
        assert all(rect.rows == 1 and rect.cols == 13 for rect in sets)

    def test_multi_row_stripes(self):
        sets = partition_ofm(Shape(10, 8, 4), SetGranularity(rows_per_set=4))
        assert [rect.rows for rect in sets] == [4, 4, 2]

    def test_target_sets_mode_fig5_style(self):
        # 4x4 OFM into ~4 sets of 2x2, as in the paper's Fig. 5 example
        sets = partition_ofm(Shape(4, 4, 8), SetGranularity(rows_per_set=None,
                                                            target_sets=4))
        assert len(sets) == 4
        assert all(rect.area == 4 for rect in sets)

    def test_target_sets_respects_minimum(self):
        granularity = SetGranularity(rows_per_set=None, target_sets=64,
                                     min_rows=2, min_cols=2)
        sets = partition_ofm(Shape(8, 8, 4), granularity)
        assert all(rect.rows >= 2 and rect.cols >= 2 for rect in sets)

    def test_single_pixel_ofm(self):
        sets = partition_ofm(Shape(1, 1, 100))
        assert len(sets) == 1
        assert sets[0].area == 1

    @given(
        height=st.integers(1, 64),
        width=st.integers(1, 64),
        channels=st.integers(1, 16),
        rows=st.integers(1, 16),
    )
    def test_property_rows_mode_valid(self, height, width, channels, rows):
        shape = Shape(height, width, channels)
        sets = partition_ofm(shape, SetGranularity(rows_per_set=rows))
        validate_partition(shape, sets)

    @given(
        height=st.integers(1, 48),
        width=st.integers(1, 48),
        target=st.integers(1, 64),
    )
    def test_property_target_mode_valid(self, height, width, target):
        shape = Shape(height, width, 3)
        sets = partition_ofm(
            shape, SetGranularity(rows_per_set=None, target_sets=target)
        )
        validate_partition(shape, sets)

    @given(height=st.integers(2, 64), width=st.integers(2, 64))
    def test_property_similar_sizes(self, height, width):
        """Stage I: sets are grid-regular — only border tiles shrink,
        so at most two distinct heights and two distinct widths occur."""
        shape = Shape(height, width, 1)
        sets = partition_ofm(shape, SetGranularity(rows_per_set=None, target_sets=6))
        assert len({rect.rows for rect in sets}) <= 2
        assert len({rect.cols for rect in sets}) <= 2


class TestDetermineSets:
    def test_per_layer_partition(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c1 = b.conv2d(x, 4, kernel=3, padding="valid", use_bias=False, name="c1")
        p = b.maxpool(c1, 2, name="pool")
        b.conv2d(p, 8, kernel=1, padding="valid", use_bias=False, name="c2")
        sets = determine_sets(b.graph)
        assert set(sets) == {"c1", "c2"}
        assert len(sets["c1"]) == 6  # 6x6 OFM, one row each
        assert len(sets["c2"]) == 3  # 3x3 OFM

    def test_dense_single_set(self):
        b = GraphBuilder("net")
        x = b.input((1, 1, 64), name="in")
        b.dense(x, 10, use_bias=False, name="fc")
        sets = determine_sets(b.graph)
        assert len(sets["fc"]) == 1

    def test_validation_invariants(self):
        b = GraphBuilder("net")
        x = b.input((31, 17, 3), name="in")
        b.conv2d(x, 4, kernel=3, padding="valid", use_bias=False, name="c1")
        g = b.graph
        sets = determine_sets(g, SetGranularity(rows_per_set=3))
        validate_partition(g.shape_of("c1"), sets["c1"])


class TestValidatePartition:
    def test_detects_overlap(self):
        from repro.ir import Rect

        with pytest.raises(AssertionError, match="overlap"):
            validate_partition(Shape(2, 2, 1), [Rect(0, 0, 2, 2), Rect(1, 1, 2, 2)])

    def test_detects_missing_coverage(self):
        from repro.ir import Rect

        with pytest.raises(AssertionError, match="cover"):
            validate_partition(Shape(2, 2, 1), [Rect(0, 0, 1, 2)])

    def test_detects_out_of_bounds(self):
        from repro.ir import Rect

        with pytest.raises(AssertionError, match="exceeds"):
            validate_partition(Shape(2, 2, 1), [Rect(0, 0, 3, 2)])

    def test_detects_empty_set(self):
        from repro.ir import Rect

        with pytest.raises(AssertionError, match="empty"):
            validate_partition(Shape(2, 2, 1), [Rect(0, 0, 0, 0), Rect(0, 0, 2, 2)])
