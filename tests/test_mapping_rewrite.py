"""Tests for the weight-duplication graph rewrite (Fig. 4)."""

import numpy as np
import pytest

from repro.arch import CrossbarSpec
from repro.frontend import preprocess
from repro.ir import Executor, GraphBuilder
from repro.mapping import (
    DuplicationSolution,
    RewriteError,
    apply_duplication,
    problem_from_tilings,
    tile_graph,
)


def canonical_net(height=12, width=12):
    """Canonical two-conv net with a pooling path between them."""
    b = GraphBuilder("net")
    x = b.input((height, width, 3), name="in")
    c1 = b.conv2d(x, 8, kernel=3, padding="same", use_bias=True, name="c1")
    r = b.relu(c1)
    p = b.maxpool(r, 2)
    b.conv2d(p, 16, kernel=3, padding="same", use_bias=True, name="c2")
    g = b.graph
    g.initialize_weights(seed=77)
    return preprocess(g, quantization=None).graph


def manual_solution(graph, d):
    tilings = tile_graph(graph, CrossbarSpec())
    budget = sum(t.num_pes * d.get(name, 1) for name, t in tilings.items())
    problem = problem_from_tilings(tilings, budget=budget)
    full = {name: d.get(name, 1) for name in problem.layers}
    return DuplicationSolution(problem=problem, d=full, method="manual")


class TestRewriteStructure:
    def test_duplicates_created(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 3}))
        entry = report.duplicated["c1"]
        assert len(entry.duplicates) == 3
        assert len(entry.slices) == 3
        assert entry.concat
        assert "c1" not in report.graph
        assert entry.axis == "width"
        # 12 output columns split 4/4/4
        assert entry.ranges == [(0, 4), (4, 8), (8, 12)]

    def test_original_graph_untouched(self):
        g = canonical_net()
        node_count = len(g)
        apply_duplication(g, manual_solution(g, {"c1": 2}))
        assert len(g) == node_count
        assert "c1" in g

    def test_consumers_rewired_to_concat(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 2}))
        concat = report.duplicated["c1"].concat
        rewritten = report.graph
        # the canonical form has a BiasAdd as the conv's direct consumer
        assert rewritten["c1_bias"].inputs == [concat]

    def test_origin_map(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 2}))
        assert report.origin_of["c1/dup0"] == "c1"
        assert report.origin_of["c1/dup1"] == "c1"
        assert report.origin_of["c2"] == "c2"
        assert report.duplicates_of("c1") == ["c1/dup0", "c1/dup1"]
        assert report.duplicates_of("c2") == ["c2"]

    def test_factor_one_is_noop(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 1}))
        assert report.duplicated == {}
        assert "c1" in report.graph

    def test_shapes_preserved(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 3, "c2": 2}))
        old_out = g.infer_shapes()[g.output_names()[0]]
        new_out = report.graph.infer_shapes()[report.graph.output_names()[0]]
        assert old_out == new_out

    def test_duplicates_share_weight_tensor(self):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": 2}))
        rewritten = report.graph
        assert rewritten["c1/dup0"].weights is rewritten["c1/dup1"].weights


class TestRewriteSemantics:
    @pytest.mark.parametrize("factor", [2, 3, 4, 5])
    @pytest.mark.parametrize("axis", ["width", "height"])
    def test_numeric_equivalence(self, factor, axis):
        g = canonical_net()
        report = apply_duplication(g, manual_solution(g, {"c1": factor}), axis=axis)
        image = np.random.default_rng(0).normal(size=(12, 12, 3))
        expected = Executor(g).run_single(image)
        actual = Executor(report.graph).run_single(image)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_numeric_equivalence_multiple_layers(self):
        g = canonical_net(height=16, width=16)
        report = apply_duplication(g, manual_solution(g, {"c1": 4, "c2": 3}))
        image = np.random.default_rng(1).normal(size=(16, 16, 3))
        np.testing.assert_allclose(
            Executor(report.graph).run_single(image),
            Executor(g).run_single(image),
            atol=1e-12,
        )

    def test_strided_conv_equivalence(self):
        b = GraphBuilder("strided")
        x = b.input((17, 17, 2), name="in")
        b.conv2d(x, 4, kernel=3, strides=2, padding="same", use_bias=False, name="c1")
        g = b.graph
        g.initialize_weights(seed=5)
        canonical = preprocess(g, quantization=None).graph
        report = apply_duplication(canonical, manual_solution(canonical, {"c1": 3}))
        image = np.random.default_rng(2).normal(size=(17, 17, 2))
        np.testing.assert_allclose(
            Executor(report.graph).run_single(image),
            Executor(canonical).run_single(image),
            atol=1e-12,
        )


class TestRewriteErrors:
    def test_non_canonical_conv_rejected(self):
        b = GraphBuilder("raw")
        x = b.input((12, 12, 3), name="in")
        b.conv2d(x, 8, kernel=3, padding="same", name="c1")
        g = b.graph
        with pytest.raises(RewriteError, match="canonical"):
            apply_duplication(g, manual_solution(g, {"c1": 2}))

    def test_factor_exceeding_extent_rejected(self):
        g = canonical_net()
        with pytest.raises(RewriteError, match="slabs"):
            apply_duplication(g, manual_solution(g, {"c1": 13}))

    def test_bad_axis_rejected(self):
        g = canonical_net()
        with pytest.raises(RewriteError, match="axis"):
            apply_duplication(g, manual_solution(g, {"c1": 2}), axis="depth")

    def test_unknown_layer_rejected(self):
        g = canonical_net()
        solution = manual_solution(g, {"c1": 2})
        solution.d["ghost"] = 2
        with pytest.raises(RewriteError, match="unknown layer"):
            apply_duplication(g, solution)
