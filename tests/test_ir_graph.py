"""Unit tests for repro.ir.graph and repro.ir.builder."""

import pytest

from repro.ir import (
    Conv2D,
    Graph,
    GraphBuilder,
    GraphError,
    Identity,
    Input,
    MaxPool,
    Shape,
    check_graph,
    sequential,
    validate_graph,
)


def tiny_graph() -> Graph:
    """input -> conv -> relu -> pool, plus a second conv branch + concat."""
    b = GraphBuilder("tiny")
    x = b.input((16, 16, 3), name="in")
    c1 = b.conv2d(x, 8, kernel=3, padding="same", name="c1")
    r1 = b.relu(c1, name="r1")
    p1 = b.maxpool(r1, 2, name="p1")
    c2 = b.conv2d(p1, 16, kernel=3, padding="same", name="c2")
    c3 = b.conv2d(p1, 16, kernel=1, padding="valid", name="c3")
    b.concat([c2, c3], name="cat")
    return b.graph


class TestGraphBasics:
    def test_lookup(self):
        g = tiny_graph()
        assert "c1" in g
        assert g["c1"].op_type == "Conv2D"
        assert len(g) == 7

    def test_missing_node_raises(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g["nope"]

    def test_duplicate_name_rejected(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.add(Identity("c1", ["in"]))

    def test_inputs_outputs(self):
        g = tiny_graph()
        assert g.input_names() == ["in"]
        assert g.output_names() == ["cat"]

    def test_consumers(self):
        g = tiny_graph()
        assert sorted(g.consumers("p1")) == ["c2", "c3"]
        assert g.consumers("cat") == []

    def test_base_layers_in_topo_order(self):
        g = tiny_graph()
        assert g.base_layers() == ["c1", "c2", "c3"]

    def test_non_base_layers(self):
        g = tiny_graph()
        assert set(g.non_base_layers()) == {"r1", "p1", "cat"}


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        g = tiny_graph()
        order = g.topological_order()
        for name in g.node_names():
            for producer in g[name].inputs:
                assert order.index(producer) < order.index(name)

    def test_cycle_detection(self):
        g = Graph("cyclic")
        g.add(Input("in", [], shape=Shape(4, 4, 1)))
        g.add(Identity("a", ["b"]))
        g.add(Identity("b", ["a"]))
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_dangling_edge_detection(self):
        g = Graph("dangling")
        g.add(Identity("a", ["ghost"]))
        with pytest.raises(GraphError, match="missing producer"):
            g.topological_order()


class TestShapeInference:
    def test_shapes(self):
        g = tiny_graph()
        shapes = g.infer_shapes()
        assert shapes["in"] == Shape(16, 16, 3)
        assert shapes["c1"] == Shape(16, 16, 8)
        assert shapes["p1"] == Shape(8, 8, 8)
        assert shapes["cat"] == Shape(8, 8, 32)

    def test_shape_of_single_node(self):
        g = tiny_graph()
        assert g.shape_of("c2") == Shape(8, 8, 16)

    def test_in_channels_of(self):
        g = tiny_graph()
        assert g.in_channels_of("c2") == 8

    def test_cache_invalidation_on_mutation(self):
        g = tiny_graph()
        assert g.shape_of("cat") == Shape(8, 8, 32)
        g.insert_after("p1", Identity("alias"))
        assert g.shape_of("alias") == Shape(8, 8, 8)
        assert g.shape_of("cat") == Shape(8, 8, 32)


class TestMutation:
    def test_replace_input(self):
        g = tiny_graph()
        g.add(Identity("alias", ["p1"]))
        g.replace_input("c2", "p1", "alias")
        assert g["c2"].inputs == ["alias"]

    def test_replace_input_rejects_non_consumer(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.replace_input("c2", "c3", "in")

    def test_replace_input_rejects_unknown_producer(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.replace_input("c2", "p1", "ghost")

    def test_remove_leaf(self):
        g = tiny_graph()
        g.remove("cat")
        assert "cat" not in g
        assert sorted(g.output_names()) == ["c2", "c3"]

    def test_remove_consumed_node_rejected(self):
        g = tiny_graph()
        with pytest.raises(GraphError, match="still consumed"):
            g.remove("p1")

    def test_bypass(self):
        g = tiny_graph()
        g.bypass("r1")
        assert "r1" not in g
        assert g["p1"].inputs == ["c1"]
        assert g.shape_of("cat") == Shape(8, 8, 32)

    def test_bypass_rejects_multi_input(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.bypass("cat")

    def test_insert_after(self):
        g = tiny_graph()
        g.insert_after("p1", Identity("mid"))
        assert g["mid"].inputs == ["p1"]
        assert g["c2"].inputs == ["mid"]
        assert g["c3"].inputs == ["mid"]

    def test_unique_name(self):
        g = tiny_graph()
        assert g.unique_name("c1") == "c1_1"
        assert g.unique_name("fresh") == "fresh"

    def test_copy_is_independent(self):
        g = tiny_graph()
        clone = g.copy("clone")
        clone.remove("cat")
        assert "cat" in g
        assert "cat" not in clone
        # op objects are distinct
        assert g["c1"] is not clone["c1"]


class TestSequential:
    def test_chain(self):
        g = sequential(
            "chain",
            [
                Input("in", [], shape=Shape(8, 8, 1)),
                Conv2D("conv", [], out_channels=4, kernel=(3, 3), padding="same"),
                MaxPool("pool", [], pool=(2, 2)),
            ],
        )
        assert g["conv"].inputs == ["in"]
        assert g["pool"].inputs == ["conv"]
        assert g.shape_of("pool") == Shape(4, 4, 4)

    def test_requires_input_first(self):
        with pytest.raises(GraphError):
            sequential("bad", [Conv2D("conv", [], out_channels=4)])


class TestValidation:
    def test_valid_graph_passes(self):
        g = tiny_graph()
        assert validate_graph(g) == []
        check_graph(g)  # does not raise

    def test_no_inputs_flagged(self):
        g = Graph("empty")
        g.add(Identity("a", []))
        issues = validate_graph(g)
        assert any("no Input nodes" in issue for issue in issues)
        assert any("no producers" in issue for issue in issues)

    def test_check_graph_raises(self):
        g = Graph("empty")
        with pytest.raises(GraphError):
            check_graph(g)

    def test_builder_auto_naming_matches_tf_convention(self):
        b = GraphBuilder("naming")
        x = b.input((8, 8, 3))
        first = b.conv2d(x, 4)
        second = b.conv2d(first, 4)
        third = b.conv2d(second, 4)
        assert [first, second, third] == ["conv2d", "conv2d_1", "conv2d_2"]

    def test_summary_mentions_base_layers(self):
        text = tiny_graph().summary()
        assert "Graph 'tiny'" in text
        assert "Conv2D" in text
        assert "* = base layer" in text
