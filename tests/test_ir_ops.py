"""Unit tests for repro.ir.ops: shape inference and region propagation."""

import pytest

from repro.ir import (
    Activation,
    Add,
    AvgPool,
    BatchNorm,
    BiasAdd,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    MaxPool,
    OpError,
    Pad,
    Rect,
    Shape,
    Slice,
    Upsample,
    conv_out_size,
    same_padding,
)


class TestPaddingHelpers:
    def test_same_padding_matches_table1_first_conv(self):
        """416x416 3x3 stride-2 SAME -> pads to 417 (Table I: IFM 417)."""
        before, after = same_padding(416, 3, 2)
        assert (before, after) == (0, 1)
        assert 416 + before + after == 417

    def test_same_padding_stride1(self):
        assert same_padding(104, 3, 1) == (1, 1)

    def test_same_padding_no_pad_needed(self):
        assert same_padding(4, 1, 1) == (0, 0)

    def test_conv_out_size_valid(self):
        assert conv_out_size(417, 3, 2, "valid") == 208
        assert conv_out_size(106, 3, 1, "valid") == 104

    def test_conv_out_size_same(self):
        assert conv_out_size(416, 3, 2, "same") == 208
        assert conv_out_size(13, 2, 1, "same") == 13

    def test_conv_out_size_rejects_oversized_kernel(self):
        with pytest.raises(OpError):
            conv_out_size(2, 3, 1, "valid")

    def test_conv_out_size_rejects_unknown_mode(self):
        with pytest.raises(OpError):
            conv_out_size(4, 2, 1, "reflect")


class TestInput:
    def test_shape(self):
        op = Input("in", [], shape=Shape(4, 4, 3))
        assert op.infer_shape([]) == Shape(4, 4, 3)

    def test_accepts_tuple_shape(self):
        op = Input("in", [], shape=(4, 5, 6))
        assert op.shape == Shape(4, 5, 6)

    def test_rejects_producers(self):
        with pytest.raises(OpError):
            Input("in", ["x"], shape=Shape(1, 1, 1))

    def test_requires_shape(self):
        with pytest.raises(OpError):
            Input("in", [])


class TestConv2D:
    def test_valid_shape(self):
        op = Conv2D("c", ["x"], out_channels=8, kernel=(3, 3), strides=(2, 2),
                    padding="valid")
        assert op.infer_shape([Shape(417, 417, 3)]) == Shape(208, 208, 8)

    def test_same_shape(self):
        op = Conv2D("c", ["x"], out_channels=8, kernel=(3, 3), strides=(1, 1),
                    padding="same")
        assert op.infer_shape([Shape(13, 13, 4)]) == Shape(13, 13, 8)

    def test_is_base(self):
        assert Conv2D("c", ["x"], out_channels=1).is_base

    def test_region_valid_stride1(self):
        op = Conv2D("c", ["x"], out_channels=4, kernel=(3, 3), padding="valid")
        [rect] = op.input_regions(Rect(0, 0, 2, 2), [Shape(10, 10, 3)], Shape(8, 8, 4))
        assert rect == Rect(0, 0, 4, 4)

    def test_region_valid_stride2(self):
        op = Conv2D("c", ["x"], out_channels=4, kernel=(3, 3), strides=(2, 2),
                    padding="valid")
        [rect] = op.input_regions(Rect(1, 1, 3, 3), [Shape(9, 9, 3)], Shape(4, 4, 4))
        # rows [1*2, 2*2+3) = [2, 7)
        assert rect == Rect(2, 2, 7, 7)

    def test_region_same_accounts_for_implicit_pad(self):
        op = Conv2D("c", ["x"], out_channels=4, kernel=(3, 3), padding="same")
        [rect] = op.input_regions(Rect(0, 0, 1, 1), [Shape(8, 8, 3)], Shape(8, 8, 4))
        # window at (0,0) reads padded rows [-1, 2) -> clipped [0, 2)
        assert rect == Rect(0, 0, 2, 2)

    def test_region_empty(self):
        op = Conv2D("c", ["x"], out_channels=4, kernel=(3, 3))
        [rect] = op.input_regions(Rect.empty(), [Shape(8, 8, 3)], Shape(8, 8, 4))
        assert rect.is_empty()

    def test_kernel_matrix_shape(self):
        op = Conv2D("c", ["x"], out_channels=512, kernel=(3, 3))
        assert op.kernel_matrix_shape(256) == (2304, 512)

    def test_rejects_bad_params(self):
        with pytest.raises(OpError):
            Conv2D("c", ["x"], out_channels=0)
        with pytest.raises(OpError):
            Conv2D("c", ["x"], out_channels=4, kernel=(0, 3))
        with pytest.raises(OpError):
            Conv2D("c", ["x"], out_channels=4, padding="weird")


class TestDense:
    def test_shape(self):
        op = Dense("d", ["x"], units=10)
        assert op.infer_shape([Shape(1, 1, 64)]) == Shape(1, 1, 10)

    def test_rejects_unflattened_input(self):
        op = Dense("d", ["x"], units=10)
        with pytest.raises(OpError):
            op.infer_shape([Shape(2, 2, 16)])

    def test_region_is_full_input(self):
        op = Dense("d", ["x"], units=10)
        [rect] = op.input_regions(Rect(0, 0, 1, 1), [Shape(1, 1, 64)], Shape(1, 1, 10))
        assert rect == Rect(0, 0, 1, 1)

    def test_is_base(self):
        assert Dense("d", ["x"], units=1).is_base


class TestElementwiseOps:
    @pytest.mark.parametrize(
        "op",
        [
            BatchNorm("bn", ["x"]),
            BiasAdd("b", ["x"]),
            Activation("a", ["x"], kind="relu"),
            Identity("i", ["x"]),
        ],
    )
    def test_shape_preserved(self, op):
        assert op.infer_shape([Shape(5, 6, 7)]) == Shape(5, 6, 7)

    @pytest.mark.parametrize(
        "op",
        [
            BatchNorm("bn", ["x"]),
            BiasAdd("b", ["x"]),
            Activation("a", ["x"], kind="leaky_relu"),
            Identity("i", ["x"]),
        ],
    )
    def test_region_identity(self, op):
        rect = Rect(1, 2, 3, 4)
        assert op.input_regions(rect, [Shape(5, 6, 7)], Shape(5, 6, 7)) == [rect]

    def test_activation_rejects_unknown_kind(self):
        with pytest.raises(OpError):
            Activation("a", ["x"], kind="swishish")


class TestPad:
    def test_shape(self):
        op = Pad("p", ["x"], pad_top=1, pad_bottom=2, pad_left=3, pad_right=4)
        assert op.infer_shape([Shape(10, 10, 3)]) == Shape(13, 17, 3)

    def test_region_shifts_and_clips(self):
        op = Pad("p", ["x"], pad_top=1, pad_bottom=1, pad_left=1, pad_right=1)
        # Output rect overlapping the padded border maps to a clipped
        # input rect.
        [rect] = op.input_regions(Rect(0, 0, 3, 3), [Shape(4, 4, 3)], Shape(6, 6, 3))
        assert rect == Rect(0, 0, 2, 2)

    def test_region_pure_padding_is_empty(self):
        op = Pad("p", ["x"], pad_top=2, pad_bottom=0, pad_left=0, pad_right=0)
        [rect] = op.input_regions(Rect(0, 0, 2, 4), [Shape(4, 4, 3)], Shape(6, 4, 3))
        assert rect.is_empty()

    def test_is_identity(self):
        assert Pad("p", ["x"]).is_identity
        assert not Pad("p", ["x"], pad_top=1).is_identity

    def test_rejects_negative(self):
        with pytest.raises(OpError):
            Pad("p", ["x"], pad_top=-1)


class TestPooling:
    def test_maxpool_shape_valid(self):
        op = MaxPool("m", ["x"], pool=(2, 2))
        assert op.infer_shape([Shape(104, 104, 64)]) == Shape(52, 52, 64)

    def test_maxpool_same_stride1(self):
        """The TinyYOLOv3 size-2 stride-1 SAME pool keeps 13x13."""
        op = MaxPool("m", ["x"], pool=(2, 2), strides=(1, 1), padding="same")
        assert op.infer_shape([Shape(13, 13, 512)]) == Shape(13, 13, 512)

    def test_strides_default_to_pool(self):
        op = MaxPool("m", ["x"], pool=(3, 3))
        assert op.strides == (3, 3)

    def test_region(self):
        op = MaxPool("m", ["x"], pool=(2, 2))
        [rect] = op.input_regions(Rect(0, 0, 1, 1), [Shape(8, 8, 4)], Shape(4, 4, 4))
        assert rect == Rect(0, 0, 2, 2)
        [rect] = op.input_regions(Rect(1, 1, 2, 2), [Shape(8, 8, 4)], Shape(4, 4, 4))
        assert rect == Rect(2, 2, 4, 4)

    def test_avgpool_shape(self):
        op = AvgPool("a", ["x"], pool=(7, 7))
        assert op.infer_shape([Shape(7, 7, 512)]) == Shape(1, 1, 512)

    def test_global_avgpool(self):
        op = GlobalAvgPool("g", ["x"])
        assert op.infer_shape([Shape(7, 7, 2048)]) == Shape(1, 1, 2048)
        [rect] = op.input_regions(Rect(0, 0, 1, 1), [Shape(7, 7, 2048)], Shape(1, 1, 2048))
        assert rect == Rect(0, 0, 7, 7)


class TestAddConcat:
    def test_add_shape(self):
        op = Add("s", ["a", "b"])
        assert op.infer_shape([Shape(4, 4, 8), Shape(4, 4, 8)]) == Shape(4, 4, 8)

    def test_add_rejects_mismatch(self):
        op = Add("s", ["a", "b"])
        with pytest.raises(OpError):
            op.infer_shape([Shape(4, 4, 8), Shape(4, 4, 9)])

    def test_add_rejects_single_input(self):
        op = Add("s", ["a"])
        with pytest.raises(OpError):
            op.infer_shape([Shape(4, 4, 8)])

    def test_concat_shape(self):
        op = Concat("c", ["a", "b"])
        assert op.infer_shape([Shape(26, 26, 128), Shape(26, 26, 256)]) == Shape(26, 26, 384)

    def test_concat_rejects_spatial_mismatch(self):
        op = Concat("c", ["a", "b"])
        with pytest.raises(OpError):
            op.infer_shape([Shape(26, 26, 128), Shape(13, 13, 128)])

    def test_regions_broadcast_to_all_inputs(self):
        rect = Rect(0, 0, 2, 2)
        add = Add("s", ["a", "b", "c"])
        shapes = [Shape(4, 4, 8)] * 3
        assert add.input_regions(rect, shapes, Shape(4, 4, 8)) == [rect, rect, rect]
        concat = Concat("c", ["a", "b"])
        shapes = [Shape(4, 4, 8), Shape(4, 4, 16)]
        assert concat.input_regions(rect, shapes, Shape(4, 4, 24)) == [rect, rect]


class TestSlice:
    def test_channel_slice_shape(self):
        op = Slice("s", ["x"], offsets=(0, 0, 32), sizes=(-1, -1, 32))
        assert op.infer_shape([Shape(104, 104, 64)]) == Shape(104, 104, 32)

    def test_spatial_slice_shape(self):
        op = Slice("s", ["x"], offsets=(10, 0, 0), sizes=(20, -1, -1))
        assert op.infer_shape([Shape(100, 50, 3)]) == Shape(20, 50, 3)

    def test_region_shifts(self):
        op = Slice("s", ["x"], offsets=(10, 5, 0), sizes=(20, 20, -1))
        [rect] = op.input_regions(Rect(0, 0, 4, 4), [Shape(100, 50, 3)], Shape(20, 20, 3))
        assert rect == Rect(10, 5, 14, 9)

    def test_rejects_out_of_bounds(self):
        op = Slice("s", ["x"], offsets=(95, 0, 0), sizes=(10, -1, -1))
        with pytest.raises(OpError):
            op.infer_shape([Shape(100, 50, 3)])

    def test_rejects_bad_construction(self):
        with pytest.raises(OpError):
            Slice("s", ["x"], offsets=(0, 0), sizes=(-1, -1, -1))
        with pytest.raises(OpError):
            Slice("s", ["x"], offsets=(0, 0, -1))
        with pytest.raises(OpError):
            Slice("s", ["x"], sizes=(0, -1, -1))


class TestUpsampleFlatten:
    def test_upsample_shape(self):
        op = Upsample("u", ["x"], factor=2)
        assert op.infer_shape([Shape(13, 13, 128)]) == Shape(26, 26, 128)

    def test_upsample_region(self):
        op = Upsample("u", ["x"], factor=2)
        [rect] = op.input_regions(Rect(1, 1, 3, 3), [Shape(13, 13, 128)], Shape(26, 26, 128))
        # rows [1, 3) of output -> input rows [0, 2)
        assert rect == Rect(0, 0, 2, 2)

    def test_upsample_region_odd_boundaries(self):
        op = Upsample("u", ["x"], factor=3)
        [rect] = op.input_regions(Rect(2, 4, 7, 8), [Shape(10, 10, 1)], Shape(30, 30, 1))
        assert rect == Rect(0, 1, 3, 3)

    def test_flatten(self):
        op = Flatten("f", ["x"])
        assert op.infer_shape([Shape(7, 7, 64)]) == Shape(1, 1, 3136)
        [rect] = op.input_regions(Rect(0, 0, 1, 1), [Shape(7, 7, 64)], Shape(1, 1, 3136))
        assert rect == Rect(0, 0, 7, 7)
