"""Tests for the darknet .cfg importer."""

import pytest

from repro.arch import CrossbarSpec
from repro.frontend import preprocess
from repro.mapping import layer_table, minimum_pe_requirement
from repro.models import (
    DarknetError,
    load_cfg,
    packaged_cfgs,
    parse_cfg,
    tiny_yolo_v3,
    tiny_yolo_v3_from_cfg,
    tiny_yolo_v4,
    tiny_yolo_v4_from_cfg,
)
from repro.models.darknet import _packaged_cfg

MINI_CFG = """
[net]
width=32
height=32
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
filters=16
size=1
stride=1
pad=1
activation=linear
"""


class TestParser:
    def test_sections(self):
        sections = parse_cfg(MINI_CFG)
        assert [s.name for s in sections] == ["net", "convolutional", "maxpool",
                                              "convolutional"]
        assert sections[1].get_int("filters") == 8
        assert sections[1].get_str("activation") == "leaky"

    def test_comments_stripped(self):
        sections = parse_cfg("# leading comment\n[net]\nwidth=4 # trailing\nheight=4\nchannels=1\n")
        assert sections[0].get_int("width") == 4

    def test_rejects_option_before_section(self):
        with pytest.raises(DarknetError, match="before any"):
            parse_cfg("width=4\n[net]\n")

    def test_rejects_empty(self):
        with pytest.raises(DarknetError, match="empty"):
            parse_cfg("\n# nothing\n")

    def test_rejects_missing_net(self):
        with pytest.raises(DarknetError, match="must start with"):
            parse_cfg("[convolutional]\nfilters=4\n")

    def test_rejects_garbage_line(self):
        with pytest.raises(DarknetError, match="cannot parse"):
            parse_cfg("[net]\nwidth 4\n")

    def test_missing_required_key(self):
        sections = parse_cfg("[net]\nwidth=4\nheight=4\nchannels=1\n[convolutional]\nsize=3\n")
        with pytest.raises(DarknetError, match="filters"):
            load_cfg("[net]\nwidth=4\nheight=4\nchannels=1\n[convolutional]\nsize=3\n")
        assert sections  # parser itself is fine


class TestBuilder:
    def test_mini_model(self):
        g = load_cfg(MINI_CFG, name="mini")
        shapes = g.infer_shapes()
        out = g.output_names()[0]
        assert shapes[out].hwc == (8, 8, 16)
        assert len(g.base_layers()) == 2
        # BN only on the first conv
        bn_nodes = [op for op in g if op.op_type == "BatchNorm"]
        assert len(bn_nodes) == 1

    def test_bias_follows_batch_normalize(self):
        g = load_cfg(MINI_CFG)
        convs = [g[name] for name in g.base_layers()]
        assert not convs[0].use_bias  # BN conv: no bias
        assert convs[1].use_bias      # plain conv: bias

    def test_route_groups_slice(self):
        cfg = """
[net]
width=8
height=8
channels=4

[convolutional]
filters=8
size=1
stride=1
pad=1
activation=linear

[route]
layers=-1
groups=2
group_id=1
"""
        g = load_cfg(cfg)
        out = g.output_names()[0]
        assert g.shape_of(out).channels == 4
        slice_op = g[out]
        assert slice_op.op_type == "Slice"
        assert slice_op.offsets == (0, 0, 4)

    def test_route_concat_absolute_and_relative(self):
        cfg = """
[net]
width=8
height=8
channels=4

[convolutional]
filters=8
size=1
stride=1
pad=1
activation=linear

[convolutional]
filters=8
size=1
stride=1
pad=1
activation=linear

[route]
layers = 0, -1
"""
        g = load_cfg(cfg)
        out = g.output_names()[0]
        assert g[out].op_type == "Concat"
        assert g.shape_of(out).channels == 16

    def test_route_out_of_range(self):
        cfg = """
[net]
width=8
height=8
channels=4

[route]
layers = 5
"""
        with pytest.raises(DarknetError, match="references layer"):
            load_cfg(cfg)

    def test_unsupported_section(self):
        with pytest.raises(DarknetError, match="unsupported section"):
            load_cfg("[net]\nwidth=4\nheight=4\nchannels=1\n[dropout]\n")

    def test_unsupported_activation(self):
        cfg = ("[net]\nwidth=4\nheight=4\nchannels=1\n"
               "[convolutional]\nfilters=2\nactivation=mish\n")
        with pytest.raises(DarknetError, match="activation"):
            load_cfg(cfg)


class TestOfficialCfgs:
    """The packaged cfgs must agree with the hand-built zoo models."""

    @pytest.mark.parametrize(
        "from_cfg, from_zoo, min_pes",
        [
            (tiny_yolo_v3_from_cfg, tiny_yolo_v3, 142),
            (tiny_yolo_v4_from_cfg, tiny_yolo_v4, 117),
        ],
        ids=["tinyyolov3", "tinyyolov4"],
    )
    def test_cfg_matches_zoo(self, from_cfg, from_zoo, min_pes):
        cfg_canonical = preprocess(from_cfg(), quantization=None).graph
        zoo_canonical = preprocess(from_zoo(), quantization=None).graph

        assert minimum_pe_requirement(cfg_canonical, CrossbarSpec()) == min_pes
        assert len(cfg_canonical.base_layers()) == len(zoo_canonical.base_layers())

        # per-layer geometry identical (same multiset of rows)
        def rows(graph):
            return sorted(
                (row["ifm"], row["ofm"], row["num_pes"], row["cycles"])
                for row in layer_table(graph, CrossbarSpec())
            )

        assert rows(cfg_canonical) == rows(zoo_canonical)

    def test_cfg_output_heads(self):
        g = tiny_yolo_v4_from_cfg()
        shapes = sorted(g.shape_of(o).hwc for o in g.output_names())
        assert shapes == [(13, 13, 255), (26, 26, 255)]


class TestPackagedCfgData:
    def test_packaged_cfgs_listed(self):
        assert packaged_cfgs() == ["yolov3-tiny.cfg", "yolov4-tiny.cfg"]

    def test_missing_cfg_raises_darknet_error_with_listing(self):
        with pytest.raises(DarknetError, match=r"yolov3-tiny\.cfg, yolov4-tiny\.cfg"):
            _packaged_cfg("yolov9000.cfg")

    def test_missing_cfg_is_not_a_file_not_found_error(self):
        try:
            _packaged_cfg("nope.cfg")
        except DarknetError as exc:
            assert not isinstance(exc, FileNotFoundError)
            assert "nope.cfg" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected DarknetError")
