"""Tests for the analysis package (tables, sweeps, reports)."""

import pytest

from repro.analysis import (
    benchmark_sweep,
    duplication_table,
    fig6c_report,
    fig7a_report,
    fig7b_report,
    format_table,
    headline_summary,
    sweep_all,
    table1,
    table2,
)
from repro.models import BenchmarkSpec, tiny_dual_head, tiny_sequential


def synthetic_spec(name="tiny_dual_head", factory=tiny_dual_head):
    """A BenchmarkSpec over a small model with measured numbers."""
    from repro.arch import CrossbarSpec
    from repro.frontend import preprocess
    from repro.mapping import minimum_pe_requirement
    from repro.models import zoo

    graph = factory()
    canonical = preprocess(graph, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    spec = BenchmarkSpec(
        name=name,
        input_shape=graph.shape_of(graph.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()),
        min_pes=min_pes,
    )
    # patch the zoo lookup so spec.build() works for synthetic names
    assert name in zoo.MODELS
    return spec


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(["col1", "col2"], [])
        assert "col1" in text


class TestPaperTables:
    def test_table1_contains_published_rows(self):
        text = table1()
        assert "conv2d" in text
        assert "(417, 417, 3)" in text
        assert "43264" in text
        assert "PE_min = 117" in text

    def test_table2_all_match(self):
        text = table2()
        assert "NO" not in text
        for name in ("tinyyolov3", "vgg16", "vgg19", "resnet50", "resnet101",
                     "resnet152"):
            assert name in text
        for value in ("142", "233", "314", "390", "679", "936"):
            assert value in text

    def test_duplication_table(self):
        from repro.arch import CrossbarSpec, paper_case_study
        from repro.core import ScheduleOptions, compile_model
        from repro.frontend import preprocess
        from repro.mapping import minimum_pe_requirement

        g = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        compiled = compile_model(
            g, paper_case_study(min_pes + 4), ScheduleOptions(mapping="wdup")
        )
        text = duplication_table(compiled.duplication, g.base_layers())
        assert "Duplicates" in text


class TestBenchmarkSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return benchmark_sweep(synthetic_spec(), xs=(2, 4))

    def test_point_inventory(self, sweep):
        configs = sorted({p.config for p in sweep.points})
        assert configs == ["wdup", "wdup+xinf", "xinf"]
        assert len(sweep.series("wdup")) == 2
        assert len(sweep.series("wdup+xinf")) == 2
        assert len(sweep.series("xinf")) == 1

    def test_speedups_at_least_one(self, sweep):
        for point in sweep.points:
            assert point.speedup >= 1.0 - 1e-9

    def test_combo_dominates(self, sweep):
        """wdup+xinf >= max(wdup, xinf) at equal x (paper's ordering)."""
        xinf = sweep.series("xinf")[0]
        for combo in sweep.series("wdup+xinf"):
            wdup = next(
                p for p in sweep.series("wdup") if p.extra_pes == combo.extra_pes
            )
            assert combo.speedup >= wdup.speedup - 1e-9
            assert combo.speedup >= xinf.speedup - 1e-9

    def test_labels(self, sweep):
        labels = {p.label for p in sweep.points}
        assert "xinf" in labels
        assert "wdup+2" in labels
        assert "wdup+2+xinf" in labels

    def test_best_points(self, sweep):
        assert sweep.best_speedup().speedup == max(p.speedup for p in sweep.points)
        assert sweep.best_utilization().utilization == max(
            p.utilization for p in sweep.points
        )

    def test_mismatched_published_numbers_rejected(self):
        bad = BenchmarkSpec("tiny_dual_head", (64, 64, 3), base_layers=5, min_pes=999)
        with pytest.raises(AssertionError, match="PE minimum"):
            benchmark_sweep(bad, xs=(2,))


class TestReports:
    @pytest.fixture(scope="class")
    def results(self):
        return sweep_all([synthetic_spec()], xs=(2, 4))

    def test_fig7a(self, results):
        text = fig7a_report(results)
        assert "speedup" in text
        assert "tiny_dual_head" in text
        assert "wdup+xinf+4" in text

    def test_fig7b(self, results):
        text = fig7b_report(results)
        assert "utilization" in text
        assert "%" in text

    def test_fig6c(self, results):
        text = fig6c_report(results[0])
        assert "case study" in text
        assert "layer-by-layer" in text

    def test_headline(self, results):
        text = headline_summary(results)
        assert "Best speedup" in text
        assert "Best utilization gain" in text
