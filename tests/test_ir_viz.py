"""Tests for the Graphviz DOT export."""

from repro.ir import GraphBuilder, save_dot, to_dot


def small_graph():
    b = GraphBuilder("viz")
    x = b.input((8, 8, 3), name="in")
    c = b.conv2d(x, 4, name="conv")
    b.relu(c, name="act")
    return b.graph


class TestToDot:
    def test_structure(self):
        dot = to_dot(small_graph())
        assert dot.startswith('digraph "viz"')
        assert dot.rstrip().endswith("}")
        assert '"in" -> "conv"' in dot
        assert '"conv" -> "act"' in dot

    def test_node_styling(self):
        dot = to_dot(small_graph())
        # base layer green box, non-base blue ellipse, input parallelogram
        assert "#c6e2b5" in dot
        assert "#bcd6ec" in dot
        assert "parallelogram" in dot

    def test_shapes_toggle(self):
        with_shapes = to_dot(small_graph(), include_shapes=True)
        without = to_dot(small_graph(), include_shapes=False)
        assert "(8, 8, 4)" in with_shapes
        assert "(8, 8, 4)" not in without

    def test_quote_escaping(self):
        b = GraphBuilder('na"me')
        b.input((1, 1, 1), name="in")
        dot = to_dot(b.graph)
        assert 'digraph "na\\"me"' in dot

    def test_save(self, tmp_path):
        path = tmp_path / "graph.dot"
        save_dot(small_graph(), str(path))
        text = path.read_text()
        assert text.startswith("digraph")

    def test_every_node_present(self):
        g = small_graph()
        dot = to_dot(g)
        for name in g.node_names():
            assert f'"{name}"' in dot
