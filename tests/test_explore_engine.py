"""Tests for the exploration engine (repro.explore.engine).

The acceptance-critical behaviours: every evaluated point is
journalled, the frontier is non-trivial, and a re-run against the same
store performs zero duplicate compiles (asserted through the engine's
compile counters *and* a spy on the evaluation function).
"""

import json

import pytest

import repro.analysis.sweep as sweep_mod
from repro import Session, paper_case_study
from repro.explore import (
    Categorical,
    Explorer,
    ExploreError,
    LogInteger,
    RunStore,
    SearchSpace,
    default_space,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.explore.store import StoreError
from repro.explore.strategies import Proposal, Strategy, unregister_strategy
from repro.frontend import preprocess
from repro.models import tiny_sequential

BUDGET = 10


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


def small_space(**kwargs):
    """A compact space keeping engine tests fast."""
    return default_space(max_extra_pes=16, max_rows_per_set=4, **kwargs)


def explore(canonical, **kwargs):
    kwargs.setdefault("space", small_space())
    kwargs.setdefault("budget", BUDGET)
    kwargs.setdefault("seed", 7)
    return Explorer(canonical, **kwargs).run()


class TestRunBasics:
    def test_budget_is_honoured(self, canonical):
        result = explore(canonical, strategy="random")
        assert result.counters.processed == BUDGET
        assert result.counters.evaluated_full == BUDGET
        assert len(result.results) == BUDGET

    def test_every_point_journalled(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = explore(canonical, strategy="random", store=path)
        lines = [json.loads(line) for line in open(path).read().splitlines()]
        records = [entry for entry in lines if entry["kind"] == "record"]
        assert len(records) == result.counters.evaluated_full == BUDGET
        fingerprints = {r["fingerprint"] for r in records}
        assert fingerprints == {r.fingerprint for r in result.results}

    def test_frontier_nontrivial_latency_energy(self, canonical):
        """Warm-start anchors guarantee the latency/energy tradeoff
        corners are visited, so the frontier has real tradeoffs."""
        result = explore(canonical, strategy="random")
        assert len(result.frontier) >= 2
        latencies = {e.values["latency"] for e in result.frontier}
        energies = {e.values["energy"] for e in result.frontier}
        assert len(latencies) >= 2 and len(energies) >= 2

    def test_all_objectives_scored_on_full_points(self, canonical):
        result = explore(canonical, strategy="random")
        for r in result.results:
            assert set(r.objectives) >= {"latency", "energy", "utilization"}
            assert r.objectives["latency"] > 0

    def test_same_seed_same_results(self, canonical):
        a = explore(canonical, strategy="random")
        b = explore(canonical, strategy="random")
        assert [r.fingerprint for r in a.results] == [
            r.fingerprint for r in b.results
        ]

    def test_invalid_budget_and_objective(self, canonical):
        with pytest.raises(ExploreError):
            Explorer(canonical, budget=0)
        with pytest.raises(KeyError):
            Explorer(canonical, objectives=("latency", "speed"))

    def test_summary_mentions_compiles(self, canonical):
        result = explore(canonical, strategy="random")
        assert f"compiles this run: {result.counters.compiles}" in result.summary()


class TestResume:
    def test_second_run_compiles_nothing(self, canonical, tmp_path, monkeypatch):
        """The acceptance property: a resumed identical exploration is a
        pure journal replay — zero compiles, asserted three ways."""
        path = str(tmp_path / "run.jsonl")
        first = explore(canonical, strategy="random", store=path)
        assert first.counters.compiles == BUDGET

        compile_calls = []
        original = sweep_mod.evaluate_eval_task

        def spy(*args, **kwargs):
            compile_calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(sweep_mod, "evaluate_eval_task", spy)
        second = explore(canonical, strategy="random", store=path)
        # 1. the engine's own counters
        assert second.counters.compiles == 0
        assert second.counters.reused_full == BUDGET
        # 2. the run store's fingerprint hit counter
        assert len(compile_calls) == 0
        # 3. the frontier is rebuilt identically from the journal
        assert {e.key for e in second.frontier} == {
            e.key for e in first.frontier
        }

    def test_store_reuse_hits_counted(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(canonical, strategy="random", store=path)
        store = RunStore.open(path, _fp(canonical))
        assert store.loaded == BUDGET
        # resuming through an explicitly-passed store counts its hits
        result = explore(canonical, strategy="random", store=store)
        assert result.counters.compiles == 0
        assert store.reuse_hits >= BUDGET

    def test_bigger_budget_extends_incrementally(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(canonical, strategy="random", store=path, budget=6)
        result = explore(canonical, strategy="random", store=path, budget=12)
        assert result.counters.reused_full == 6
        assert result.counters.evaluated_full == 6

    def test_resume_false_refuses_existing(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(canonical, strategy="random", store=path)
        with pytest.raises(StoreError):
            explore(canonical, strategy="random", store=path, resume=False)

    def test_store_for_other_model_refused(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunStore.open(path, "other-model")  # creates the file + header
        with pytest.raises(StoreError):
            explore(canonical, strategy="random", store=path)
        # an in-memory store for another model is rejected too
        with pytest.raises(StoreError):
            explore(canonical, strategy="random",
                    store=RunStore(None, "other-model"))

    def test_stores_shared_across_strategies(self, canonical, tmp_path):
        """The journal is strategy-agnostic: grid reuses random's work."""
        path = str(tmp_path / "run.jsonl")
        explore(canonical, strategy="random", store=path)
        result = explore(canonical, strategy="grid", store=path)
        assert result.counters.reused_full > 0


def _fp(graph):
    from repro.core.cache import CompilationCache

    return CompilationCache().fingerprint(graph)


class TestStrategies:
    def test_builtin_names(self):
        assert set(strategy_names()) >= {
            "grid", "random", "successive-halving", "evolutionary",
        }

    def test_grid_exhausts_small_space(self, canonical):
        space = SearchSpace(
            [
                Categorical("scheduling", ["layer-by-layer", "clsa-cim"]),
                LogInteger("extra_pes", 4, 8),
            ]
        )
        result = explore(canonical, strategy="grid", space=space, budget=50)
        # 2 x 2 grid, plus nothing else: strategy runs dry under budget
        assert result.counters.evaluated_full == 4

    def test_successive_halving_screens_with_proxies(self, canonical):
        result = explore(
            canonical,
            strategy="successive-halving",
            strategy_options={"eta": 3},
            budget=6,
        )
        assert result.counters.evaluated_proxy > 0
        assert result.counters.evaluated_full + result.counters.reused_full == 6
        # proxy latencies journal without energy/utilization
        proxies = [r for r in result.results if r.fidelity == "proxy"]
        assert proxies and all("energy" not in r.objectives for r in proxies)

    def test_successive_halving_promotes_fastest(self, canonical):
        result = explore(
            canonical,
            strategy="successive-halving",
            strategy_options={"eta": 3},
            budget=6,
        )
        proxy_latency = {
            r.fingerprint: r.objectives["latency"]
            for r in result.results
            if r.fidelity == "proxy"
        }
        promoted = [r for r in result.results if r.fidelity == "full" and not r.reused]
        assert promoted
        # anchors aside, promoted points came from the screened pool
        screened_points = [
            r.point for r in result.results if r.fidelity == "proxy"
        ]
        for r in promoted[4:]:  # skip the 4 warm-start anchors
            assert r.point in screened_points

    def test_evolutionary_archive_grows(self, canonical):
        result = explore(
            canonical,
            strategy="evolutionary",
            strategy_options={"population": 4, "mutation_rate": 0.3},
            budget=12,
        )
        assert result.counters.evaluated_full + result.counters.reused_full == 12
        assert len(result.frontier) >= 2

    def test_strategy_options_validated(self, canonical):
        with pytest.raises(ValueError):
            explore(canonical, strategy="successive-halving",
                    strategy_options={"eta": 1})
        with pytest.raises(ValueError):
            explore(canonical, strategy="evolutionary",
                    strategy_options={"population": 1})
        with pytest.raises(ValueError):
            explore(canonical, strategy="evolutionary",
                    strategy_options={"mutation_rate": 2.0})

    def test_unknown_strategy(self, canonical):
        with pytest.raises(KeyError):
            explore(canonical, strategy="simulated-annealing")

    def test_register_strategy_plugin(self, canonical):
        class FixedStrategy(Strategy):
            """Proposes one hand-picked point, then stops."""

            def __init__(self, space, **kwargs):
                super().__init__(space, **kwargs)
                self._done = False

            def propose(self, limit):
                if self._done:
                    return []
                self._done = True
                point = self.space.canonicalize(
                    {name: self.space.dimension(name).choices[0]
                     for name in self.space.names}
                )
                return [Proposal(point)]

        register_strategy("fixed", FixedStrategy)
        try:
            result = explore(
                canonical, strategy="fixed", budget=20, warm_start=False
            )
            assert result.counters.evaluated_full == 1
        finally:
            unregister_strategy("fixed")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_strategy("random", Strategy)
        with pytest.raises(ValueError):
            unregister_strategy("random")

    def test_make_strategy_passes_options(self):
        strategy = make_strategy(
            "successive-halving", small_space(), seed=1, eta=4
        )
        assert strategy.eta == 4


class TestWarmStart:
    def test_anchors_cover_mapping_scheduling_combos(self, canonical):
        result = explore(canonical, strategy="random", budget=4)
        combos = {
            (r.point["mapping"], r.point["scheduling"]) for r in result.results
        }
        assert combos == {
            ("none", "layer-by-layer"), ("none", "clsa-cim"),
            ("wdup", "layer-by-layer"), ("wdup", "clsa-cim"),
        }

    def test_warm_start_disabled(self, canonical):
        result = explore(
            canonical, strategy="random", budget=4, warm_start=False
        )
        assert result.counters.processed == 4  # all from the strategy

    def test_anchors_not_reproposed_by_strategy(self, canonical):
        """Anchor points are claimed on the strategy, so a fresh run
        never wastes budget re-visiting them (regression: random search
        used to pay a reused slot for an anchor duplicate)."""
        result = explore(canonical, strategy="random", budget=BUDGET)
        assert result.counters.reused_full == 0
        assert result.counters.evaluated_full == BUDGET
        assert len({r.fingerprint for r in result.results}) == BUDGET


class TestFeasibility:
    def test_chip_budget_journals_infeasible(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = explore(
            canonical,
            strategy="random",
            store=path,
            max_total_pes=12,
            warm_start=False,
        )
        assert result.counters.infeasible > 0
        assert result.counters.infeasible + result.counters.evaluated_full == BUDGET
        records = [json.loads(line) for line in open(path).read().splitlines()][1:]
        infeasible = [r for r in records if not r["feasible"]]
        assert len(infeasible) == result.counters.infeasible
        # infeasible points never reach the frontier
        keys = {e.key for e in result.frontier}
        assert not keys & {r["fingerprint"] for r in infeasible}

    def test_infeasible_points_not_recompiled_on_resume(self, canonical, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(canonical, strategy="random", store=path,
                max_total_pes=12, warm_start=False)
        again = explore(canonical, strategy="random", store=path,
                        max_total_pes=12, warm_start=False)
        assert again.counters.compiles == 0


class TestSessionIntegration:
    def test_session_explore_by_name(self, tmp_path):
        session = Session(paper_case_study(1))
        result = session.explore(
            "tiny_sequential",
            space=small_space(),
            strategy="random",
            budget=6,
            store=str(tmp_path / "run.jsonl"),
            seed=3,
        )
        assert result.counters.evaluated_full == 6
        assert len(result.frontier) >= 1

    def test_session_cache_shared_with_exploration(self, canonical):
        session = Session(paper_case_study(1))
        session.explore(
            canonical, space=small_space(), strategy="random", budget=4
        )
        # exploration populated the session cache (stage hits recorded)
        assert session.cache.hits > 0

    def test_parallel_jobs_match_serial(self, canonical):
        serial = explore(canonical, strategy="random", seed=5)
        parallel = explore(canonical, strategy="random", seed=5, jobs=2)
        assert {e.key for e in serial.frontier} == {
            e.key for e in parallel.frontier
        }
        assert [r.fingerprint for r in serial.results] == [
            r.fingerprint for r in parallel.results
        ]

    def test_custom_objectives(self, canonical):
        result = explore(
            canonical, strategy="random",
            objectives=("latency", "utilization"),
        )
        assert result.objectives == ("latency", "utilization")
        for entry in result.frontier:
            assert set(entry.values) == {"latency", "utilization"}
