"""Tests for Eq. 2 utilization and Eq. 3 speedup metrics."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_dual_head, tiny_sequential
from repro.sim import evaluate, speedup_eq3, utilization


def arch_for(graph, extra=8):
    canonical = preprocess(graph, quantization=None).graph
    return paper_case_study(minimum_pe_requirement(canonical, CrossbarSpec()) + extra)


def compile_config(graph, arch, mapping, scheduling):
    return compile_model(
        graph, arch, ScheduleOptions(mapping=mapping, scheduling=scheduling)
    )


class TestUtilization:
    def test_bounds(self):
        g = tiny_sequential()
        arch = arch_for(g)
        for mapping in ("none", "wdup"):
            for scheduling in ("layer-by-layer", "clsa-cim"):
                compiled = compile_config(g, arch, mapping, scheduling)
                ut = utilization(compiled.schedule, compiled.placement)
                assert 0.0 < ut <= 1.0

    def test_clsa_cim_improves_utilization(self):
        g = tiny_sequential()
        arch = arch_for(g)
        baseline = evaluate(compile_config(g, arch, "none", "layer-by-layer"))
        xinf = evaluate(compile_config(g, arch, "none", "clsa-cim"))
        assert xinf.utilization > baseline.utilization

    def test_single_layer_layer_by_layer(self):
        """One conv on exactly its PEs: utilization is c/(F) while running."""
        from repro.ir import GraphBuilder

        b = GraphBuilder("one")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="c")
        arch = paper_case_study(2)
        compiled = compile_config(b.graph, arch, "none", "layer-by-layer")
        # 1 PE busy 100% of the time, 1 PE idle -> Ut = 0.5
        assert utilization(compiled.schedule, compiled.placement) == pytest.approx(0.5)

    def test_active_cycles_invariant(self):
        g = tiny_dual_head()
        arch = arch_for(g)
        totals = {
            (m, s): evaluate(compile_config(g, arch, m, s)).total_active_pe_cycles
            for m in ("none", "wdup")
            for s in ("layer-by-layer", "clsa-cim")
        }
        assert len(set(totals.values())) == 1


class TestSpeedup:
    def test_measured_speedup(self):
        g = tiny_sequential()
        arch = arch_for(g)
        baseline = evaluate(compile_config(g, arch, "none", "layer-by-layer"))
        combo = evaluate(compile_config(g, arch, "wdup", "clsa-cim"))
        assert combo.speedup_over(baseline) >= 1.0

    def test_eq3_exact_under_latency_model(self):
        """Eq. 3 equals the measured speedup (total active conserved)."""
        g = tiny_dual_head()
        arch = arch_for(g)
        baseline = evaluate(compile_config(g, arch, "none", "layer-by-layer"))
        for mapping, scheduling in (
            ("wdup", "layer-by-layer"),
            ("none", "clsa-cim"),
            ("wdup", "clsa-cim"),
        ):
            metrics = evaluate(compile_config(g, arch, mapping, scheduling))
            assert speedup_eq3(metrics, baseline) == pytest.approx(
                metrics.speedup_over(baseline), rel=1e-9
            )

    def test_eq3_across_different_pe_counts(self):
        """Eq. 3 also holds between architectures of different sizes."""
        g = tiny_sequential()
        small = arch_for(g, extra=0)
        large = arch_for(g, extra=12)
        baseline = evaluate(compile_config(g, small, "none", "layer-by-layer"))
        combo = evaluate(compile_config(g, large, "wdup", "clsa-cim"))
        assert speedup_eq3(combo, baseline) == pytest.approx(
            combo.speedup_over(baseline), rel=1e-9
        )

    def test_utilization_gain(self):
        g = tiny_sequential()
        arch = arch_for(g)
        baseline = evaluate(compile_config(g, arch, "none", "layer-by-layer"))
        xinf = evaluate(compile_config(g, arch, "none", "clsa-cim"))
        assert xinf.utilization_gain_over(baseline) > 1.0

    def test_config_names(self):
        g = tiny_sequential()
        arch = arch_for(g)
        assert evaluate(compile_config(g, arch, "none", "clsa-cim")).config_name == "xinf"
        assert (
            evaluate(compile_config(g, arch, "wdup", "clsa-cim")).config_name
            == "wdup+xinf"
        )
