"""Key encoding and digesting for the persistent artifact store."""

import dataclasses

import numpy as np
import pytest

from repro.core import ScheduleOptions, SetGranularity
from repro.store import (
    STORE_SCHEMA_VERSION,
    UnstableKeyError,
    encode_key,
    key_digest,
)
from repro.store.keys import _encode


class TestEncode:
    def test_scalars_pass_through(self):
        assert _encode(None) is None
        assert _encode(True) is True
        assert _encode(7) == 7
        assert _encode("tile") == "tile"

    def test_floats_are_tagged_repr_exact(self):
        assert _encode(1.0) == {"~f": "1.0"}
        assert _encode(0.1) == {"~f": repr(0.1)}

    def test_float_and_int_encode_differently(self):
        # JSON would conflate 1 and 1.0; the tagged form must not.
        assert _encode(1) != _encode(1.0)
        assert key_digest(("s", 1), 1) != key_digest(("s", 1.0), 1)

    def test_bool_and_int_encode_differently(self):
        assert key_digest(("s", True), 1) != key_digest(("s", 1), 1)

    def test_numpy_scalars_normalize(self):
        assert _encode(np.int64(3)) == 3
        assert _encode(np.float64(1.5)) == {"~f": "1.5"}

    def test_tuples_and_lists_coincide(self):
        assert _encode((1, 2)) == _encode([1, 2]) == [1, 2]

    def test_dataclasses_encode_by_qualified_name_and_fields(self):
        record = _encode(SetGranularity(rows_per_set=2))
        assert record["~dc"].endswith("SetGranularity")
        assert record["f"]["rows_per_set"] == 2

    def test_dicts_sort_deterministically(self):
        a = _encode({"b": 1, "a": 2})
        b = _encode({"a": 2, "b": 1})
        assert a == b == {"~d": [["a", 2], ["b", 1]]}

    def test_frozensets_sort(self):
        assert _encode(frozenset({"b", "a"})) == {"~s": ["a", "b"]}

    def test_unencodable_raises(self):
        with pytest.raises(UnstableKeyError):
            _encode(object())

    def test_encode_key_of_real_stage_key(self):
        options = ScheduleOptions()
        key = ("schedule", ("fp", 1, 2), options.granularity, "clsa-cim")
        encoded = encode_key(key)
        assert isinstance(encoded, list)


class TestDigest:
    def test_stable_across_calls(self):
        key = ("tile", ("graph", "abc"), 128)
        assert key_digest(key, 1) == key_digest(key, 1)

    def test_sensitive_to_every_component(self):
        base = key_digest(("tile", "fp", 128), 1)
        assert key_digest(("tile", "fp", 129), 1) != base
        assert key_digest(("tile", "fq", 128), 1) != base
        assert key_digest(("place", "fp", 128), 1) != base

    def test_sensitive_to_codec_version(self):
        key = ("tile", "fp", 128)
        assert key_digest(key, 1) != key_digest(key, 2)

    def test_unencodable_key_returns_none(self):
        assert key_digest(("tile", object()), 1) is None

    def test_digest_is_hex_sha256(self):
        digest = key_digest(("preprocess", "fp"), 1)
        assert digest is not None
        assert len(digest) == 64
        int(digest, 16)

    def test_schema_version_is_folded_in(self, monkeypatch):
        key = ("tile", "fp", 128)
        before = key_digest(key, 1)
        monkeypatch.setattr(
            "repro.store.keys.STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1
        )
        assert key_digest(key, 1) != before

    def test_dataclass_keys_digest(self):
        options = ScheduleOptions(mapping="wdup")
        key = ("wdup", "fp", 128, 8, options.duplication_solver, "width", None)
        assert key_digest(key, 1) is not None

    def test_equal_dataclasses_share_digest(self):
        a = ("sets", "fp", SetGranularity(rows_per_set=2))
        b = ("sets", "fp", SetGranularity(rows_per_set=2))
        assert dataclasses.asdict(a[2]) == dataclasses.asdict(b[2])
        assert key_digest(a, 1) == key_digest(b, 1)
