"""Model zoo tests: exact reproduction of Table I and Table II."""

import numpy as np
import pytest

from repro.arch import CrossbarSpec
from repro.frontend import preprocess
from repro.ir import Executor, Shape, validate_graph
from repro.mapping import layer_table, minimum_pe_requirement
from repro.models import (
    CASE_STUDY,
    MODELS,
    PAPER_BENCHMARKS,
    benchmark_by_name,
    build,
    tiny_csp,
    tiny_dual_head,
    tiny_residual,
    tiny_sequential,
    tiny_yolo_v3,
    tiny_yolo_v4,
    vgg16,
)

XBAR = CrossbarSpec(rows=256, cols=256)


def canonical(graph):
    return preprocess(graph, quantization=None).graph


class TestTable2:
    """Table II: input shape, #base layers, min required 256x256 PEs."""

    @pytest.mark.parametrize("spec", PAPER_BENCHMARKS, ids=lambda s: s.name)
    def test_base_layer_count(self, spec):
        graph = canonical(spec.build())
        assert len(graph.base_layers()) == spec.base_layers

    @pytest.mark.parametrize("spec", PAPER_BENCHMARKS, ids=lambda s: s.name)
    def test_min_pe_requirement(self, spec):
        graph = canonical(spec.build())
        assert minimum_pe_requirement(graph, XBAR) == spec.min_pes

    @pytest.mark.parametrize("spec", PAPER_BENCHMARKS, ids=lambda s: s.name)
    def test_input_shape(self, spec):
        graph = spec.build()
        assert graph.shape_of(graph.input_names()[0]).hwc == spec.input_shape

    @pytest.mark.parametrize("spec", PAPER_BENCHMARKS, ids=lambda s: s.name)
    def test_structurally_valid(self, spec):
        assert validate_graph(spec.build()) == []


class TestTable1:
    """Table I: the TinyYOLOv4 per-layer structure."""

    @pytest.fixture(scope="class")
    def rows(self):
        graph = canonical(CASE_STUDY.build())
        return {row["layer"]: row for row in layer_table(graph, XBAR)}

    def test_min_pes_117(self):
        graph = canonical(CASE_STUDY.build())
        assert minimum_pe_requirement(graph, XBAR) == 117

    def test_conv_count_21(self):
        """Table I names layers up to conv2d_20 => 21 convolutions."""
        graph = canonical(CASE_STUDY.build())
        assert len(graph.base_layers()) == 21

    @pytest.mark.parametrize(
        "layer, ifm, ofm, pes, cycles",
        [
            ("conv2d", (417, 417, 3), (208, 208, 32), 1, 43264),
            ("conv2d_1", (209, 209, 32), (104, 104, 64), 2, 10816),
            ("conv2d_2", (106, 106, 64), (104, 104, 64), 3, 10816),
            ("conv2d_16", (15, 15, 256), (13, 13, 512), 18, 169),
            ("conv2d_20", (26, 26, 256), (26, 26, 255), 1, 676),
            ("conv2d_17", (13, 13, 512), (13, 13, 255), 2, 169),
        ],
    )
    def test_published_rows(self, rows, layer, ifm, ofm, pes, cycles):
        row = rows[layer]
        assert row["ifm"] == ifm
        assert row["ofm"] == ofm
        assert row["num_pes"] == pes
        assert row["cycles"] == cycles

    def test_first_layers_are_compute_heavy(self, rows):
        """Sec. V-A: early layers have large OH*OW and few PEs."""
        assert rows["conv2d"]["cycles"] > rows["conv2d_16"]["cycles"] * 100
        assert rows["conv2d"]["num_pes"] < rows["conv2d_16"]["num_pes"]


class TestTinyYolo:
    def test_v3_dual_heads(self):
        graph = tiny_yolo_v3()
        outputs = graph.output_names()
        assert len(outputs) == 2
        shapes = sorted(graph.shape_of(o).hwc for o in outputs)
        assert shapes == [(13, 13, 255), (26, 26, 255)]

    def test_v4_dual_heads(self):
        graph = tiny_yolo_v4()
        outputs = graph.output_names()
        assert len(outputs) == 2
        shapes = sorted(graph.shape_of(o).hwc for o in outputs)
        assert shapes == [(13, 13, 255), (26, 26, 255)]

    def test_v4_table1_names(self):
        graph = canonical(tiny_yolo_v4())
        base = graph.base_layers()
        assert base[0] == "conv2d"
        assert "conv2d_16" in base
        assert "conv2d_20" in base

    def test_custom_class_count(self):
        graph = tiny_yolo_v3(num_classes=20)  # VOC: 3*(20+5) = 75
        shapes = sorted(graph.shape_of(o).hwc for o in graph.output_names())
        assert shapes == [(13, 13, 75), (26, 26, 75)]

    def test_v3_is_non_sequential(self):
        graph = tiny_yolo_v3()
        fan_out = [len(graph.consumers(name)) for name in graph.node_names()]
        assert max(fan_out) >= 2  # route points feed two consumers


class TestVggResnet:
    def test_vgg16_include_top(self):
        graph = vgg16(include_top=True)
        out = graph.output_names()
        assert len(out) == 1
        assert graph.shape_of(out[0]) == Shape(1, 1, 1000)
        # 13 convs + 3 dense
        assert len(canonical(graph).base_layers()) == 16

    def test_vgg16_final_feature_map(self):
        graph = vgg16()
        out = graph.output_names()[0]
        assert graph.shape_of(out) == Shape(7, 7, 512)

    def test_resnet50_include_top(self):
        graph = build("resnet50")
        out = graph.output_names()[0]
        assert graph.shape_of(out) == Shape(7, 7, 2048)

    def test_resnet_stage_downsampling(self):
        graph = build("resnet50")
        shapes = graph.infer_shapes()
        spatial = {shape.height for shape in shapes.values()}
        # 224 -> 112 (stem) -> 56 -> 28 -> 14 -> 7
        assert {112, 56, 28, 14, 7} <= spatial

    def test_resnet_has_residual_adds(self):
        graph = build("resnet50")
        adds = [op for op in graph if op.op_type == "Add"]
        assert len(adds) == 16  # one per bottleneck block

    def test_bad_input_shape_rejected(self):
        with pytest.raises(ValueError):
            vgg16(input_shape=(224, 224))
        with pytest.raises(ValueError):
            vgg16(input_shape=(0, 224, 3))


class TestSynthetic:
    @pytest.mark.parametrize(
        "factory", [tiny_sequential, tiny_residual, tiny_csp, tiny_dual_head]
    )
    def test_valid_and_executable(self, factory):
        graph = factory()
        assert validate_graph(graph) == []
        graph.initialize_weights(seed=1)
        in_shape = graph.shape_of(graph.input_names()[0]).hwc
        image = np.random.default_rng(0).normal(size=in_shape)
        outputs = Executor(graph).run(image)
        assert outputs

    def test_preprocess_roundtrip(self):
        for factory in (tiny_sequential, tiny_residual, tiny_csp, tiny_dual_head):
            graph = factory()
            graph.initialize_weights(seed=2)
            image = np.random.default_rng(1).normal(
                size=graph.shape_of(graph.input_names()[0]).hwc
            )
            expected = Executor(graph).run(image)
            report = preprocess(graph, quantization=None)
            actual = Executor(report.graph).run(image)
            # canonicalization renames outputs (e.g. decoupled BiasAdd
            # nodes); match original and canonical outputs by shape
            expected_list = sorted(expected.values(), key=lambda a: a.shape)
            actual_list = sorted(actual.values(), key=lambda a: a.shape)
            assert len(expected_list) == len(actual_list)
            for exp, act in zip(expected_list, actual_list):
                np.testing.assert_allclose(act, exp, atol=1e-9)


class TestZoo:
    def test_build_by_name(self):
        graph = build("tinyyolov4")
        assert graph.name == "tinyyolov4"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("alexnet")

    def test_benchmark_lookup(self):
        assert benchmark_by_name("vgg16").min_pes == 233
        assert benchmark_by_name("tinyyolov4").min_pes == 117
        with pytest.raises(KeyError):
            benchmark_by_name("vgg11")

    def test_registry_complete(self):
        for spec in PAPER_BENCHMARKS:
            assert spec.name in MODELS
