"""Unit tests for the architecture model (Section II-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import (
    ArchitectureConfig,
    CrossbarSpec,
    DramSpec,
    MeshNoc,
    NocSpec,
    TileSpec,
    check_requirements,
    feature_map_bytes,
    paper_case_study,
    set_payload_bytes,
    small_crossbar,
)
from repro.ir import GraphBuilder, Shape


class TestCrossbarSpec:
    def test_paper_defaults(self):
        xbar = CrossbarSpec()
        assert (xbar.rows, xbar.cols) == (256, 256)
        assert xbar.t_mvm_ns == 1400.0
        assert xbar.capacity == 65536

    def test_eq1_pe_counts_from_table1(self):
        """Eq. (1) reproduces the #PE column of Table I."""
        xbar = CrossbarSpec(rows=256, cols=256)
        # conv2d: 3x3x3 kernel -> 27 rows, 32 cols -> 1 PE
        assert xbar.pes_for_kernel_matrix(27, 32) == 1
        # conv2d_1: 3x3x32 -> 288 rows, 64 cols -> 2 PEs
        assert xbar.pes_for_kernel_matrix(288, 64) == 2
        # conv2d_2: 3x3x64 -> 576 rows, 64 cols -> 3 PEs
        assert xbar.pes_for_kernel_matrix(576, 64) == 3
        # conv2d_16: 3x3x256 -> 2304 rows, 512 cols -> 9*2 = 18 PEs
        assert xbar.pes_for_kernel_matrix(2304, 512) == 18
        # conv2d_17: 1x1x512 -> 512 rows, 255 cols -> 2 PEs
        assert xbar.pes_for_kernel_matrix(512, 255) == 2
        # conv2d_20: 1x1x256 -> 256 rows, 255 cols -> 1 PE
        assert xbar.pes_for_kernel_matrix(256, 255) == 1

    def test_grid(self):
        xbar = CrossbarSpec(rows=256, cols=256)
        assert xbar.grid_for_kernel_matrix(2304, 512) == (9, 2)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CrossbarSpec(rows=0)
        with pytest.raises(ValueError):
            CrossbarSpec(t_mvm_ns=0.0)
        with pytest.raises(ValueError):
            CrossbarSpec(cell_bits=0)
        with pytest.raises(ValueError):
            CrossbarSpec().pes_for_kernel_matrix(0, 5)

    @given(
        rows=st.integers(1, 4096),
        cols=st.integers(1, 4096),
        n=st.integers(1, 512),
        m=st.integers(1, 512),
    )
    def test_property_pe_count_monotone(self, rows, cols, n, m):
        """More kernel rows/cols never need fewer PEs."""
        xbar = CrossbarSpec(rows=n, cols=m)
        assert xbar.pes_for_kernel_matrix(rows, cols) <= xbar.pes_for_kernel_matrix(
            rows + 1, cols + 1
        )


class TestTileSpec:
    def test_capacity(self):
        tile = TileSpec(pes_per_tile=4)
        assert tile.weight_capacity == 4 * 65536

    def test_gpeu_supports_standard_ops(self):
        tile = TileSpec()
        for op_type in ("MaxPool", "BiasAdd", "Activation", "Concat", "Upsample"):
            assert tile.gpeu.supports(op_type)
        assert not tile.gpeu.supports("Conv2D")

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TileSpec(pes_per_tile=0)
        with pytest.raises(ValueError):
            TileSpec(input_buffer_bytes=-1)


class TestMeshNoc:
    def test_grid_shape(self):
        noc = MeshNoc(12)
        assert noc.cols == 4
        assert noc.rows == 3

    def test_hops(self):
        noc = MeshNoc(16)  # 4x4
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 3) == 3
        assert noc.hops(0, 15) == 6  # (3, 3) from (0, 0)

    def test_connected(self):
        for count in (1, 2, 5, 16, 117):
            assert MeshNoc(count).is_connected()

    def test_transfer_latency(self):
        noc = MeshNoc(4, NocSpec(hop_latency_ns=2.0, link_bandwidth_bytes_per_ns=32.0))
        assert noc.transfer_latency_ns(0, 0, 1024) == 0.0
        one_hop = noc.transfer_latency_ns(0, 1, 1024)
        assert one_hop == pytest.approx(2.0 + 1024 / 32.0)
        assert noc.transfer_latency_ns(0, 3, 1024) > one_hop

    def test_dram_round_trip(self):
        noc = MeshNoc(4, NocSpec(dram_latency_ns=100.0, link_bandwidth_bytes_per_ns=32.0))
        assert noc.dram_round_trip_ns(0) == 200.0
        assert noc.dram_round_trip_ns(3200) == 300.0

    def test_average_hops_grows_with_size(self):
        assert MeshNoc(1).average_hops() == 0.0
        assert MeshNoc(4).average_hops() < MeshNoc(64).average_hops()

    def test_bad_tile_rejected(self):
        noc = MeshNoc(4)
        with pytest.raises(ValueError):
            noc.hops(0, 4)
        with pytest.raises(ValueError):
            noc.transfer_latency_ns(0, 1, -1)


class TestMemory:
    def test_tensor_bytes(self):
        dram = DramSpec(bytes_per_element=1)
        assert dram.tensor_bytes(Shape(13, 13, 512)) == 13 * 13 * 512

    def test_fits(self):
        dram = DramSpec(capacity_bytes=1000, bytes_per_element=1)
        assert dram.fits([Shape(10, 10, 5)])
        assert not dram.fits([Shape(10, 10, 11)])

    def test_helpers(self):
        assert feature_map_bytes(Shape(2, 2, 2), 2) == 16
        assert set_payload_bytes(4, 4, 32) == 512
        with pytest.raises(ValueError):
            set_payload_bytes(-1, 1, 1)
        with pytest.raises(ValueError):
            feature_map_bytes(Shape(1, 1, 1), 0)


class TestArchitectureConfig:
    def test_paper_preset(self):
        arch = paper_case_study(117)
        assert arch.num_pes == 117
        assert arch.crossbar.rows == 256
        assert arch.t_mvm_ns == 1400.0
        assert arch.num_tiles == 117

    def test_with_extra_pes(self):
        arch = paper_case_study(117).with_extra_pes(32)
        assert arch.num_pes == 149
        assert "+32" in arch.name

    def test_cycles_conversion(self):
        arch = paper_case_study(117)
        assert arch.cycles_to_ns(1) == 1400.0
        assert arch.cycles_to_ms(1_000_000) == pytest.approx(1400.0)

    def test_tiles_round_up(self):
        arch = ArchitectureConfig(num_pes=10, tile=TileSpec(pes_per_tile=4))
        assert arch.num_tiles == 3

    def test_small_crossbar_preset(self):
        arch = small_crossbar(100, dim=128)
        assert arch.crossbar.rows == 128

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(num_pes=0)
        with pytest.raises(ValueError):
            paper_case_study(117).with_extra_pes(-1)

    def test_summary(self):
        text = paper_case_study(149).summary()
        assert "149 PEs" in text
        assert "256x256" in text


class TestRequirements:
    def make_model(self):
        b = GraphBuilder("net")
        x = b.input((16, 16, 3), name="in")
        c = b.conv2d(x, 8, kernel=3, padding="valid", use_bias=False)
        b.maxpool(c, 2)
        return b.graph

    def test_satisfied(self):
        report = check_requirements(self.make_model(), paper_case_study(4), pe_demand=1)
        assert report.satisfied
        assert report.issues == []

    def test_insufficient_pes(self):
        report = check_requirements(self.make_model(), paper_case_study(2), pe_demand=5)
        assert not report.satisfied
        assert any("PEs" in issue for issue in report.issues)

    def test_no_buffers_flagged(self):
        arch = ArchitectureConfig(
            num_pes=4,
            tile=TileSpec(input_buffer_bytes=0, output_buffer_bytes=0),
        )
        report = check_requirements(self.make_model(), arch, pe_demand=1)
        assert not report.satisfied
        assert any("buffers" in issue for issue in report.issues)

    def test_unsupported_gpeu_op_flagged(self):
        from repro.arch import GpeuSpec

        arch = ArchitectureConfig(
            num_pes=4,
            tile=TileSpec(gpeu=GpeuSpec(supported_ops=("BiasAdd",))),
        )
        report = check_requirements(self.make_model(), arch, pe_demand=1)
        assert not report.satisfied
        assert any("MaxPool" in issue for issue in report.issues)

    def test_dram_overflow_flagged(self):
        arch = ArchitectureConfig(num_pes=4, dram=DramSpec(capacity_bytes=16))
        report = check_requirements(self.make_model(), arch, pe_demand=1)
        assert not report.satisfied
        assert any("DRAM" in issue for issue in report.issues)
