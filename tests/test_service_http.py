"""End-to-end tests for the compile service HTTP surface.

One ephemeral-port :class:`CompileServer` with a persistent store per
test class; clients talk real HTTP through :class:`repro.service.Client`
and the ``remote`` executor, so these tests cover the full wire path the
CLI uses (submit → poll → decode).
"""

import threading

import pytest

from repro import ScheduleOptions, Session, paper_case_study
from repro.core import SetGranularity
from repro.exec import EvaluateJob, SweepJob
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_sequential
from repro.service import Client, CompileServer, RemoteError, RemoteExecutor

COARSE = SetGranularity(rows_per_set=4)
COARSE_OPTIONS = ScheduleOptions(granularity=COARSE)


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def min_pes(canonical):
    return minimum_pe_requirement(canonical, paper_case_study(1).crossbar)


@pytest.fixture(scope="module")
def arch(min_pes):
    return paper_case_study(min_pes + 4)


@pytest.fixture(scope="module")
def spec(canonical, min_pes):
    return BenchmarkSpec(
        "tiny_sequential",
        canonical.shape_of(canonical.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()),
        min_pes=min_pes,
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store_root = tmp_path_factory.mktemp("service-store")
    with CompileServer(
        port=0, jobs=2, store_path=str(store_root / "store")
    ) as srv:
        srv.start()
        yield srv


@pytest.fixture()
def client(server):
    return Client(server.url)


def sweep_job(spec, canonical, key=None):
    return SweepJob(
        (spec,), xs=(2,),
        options_overrides={"granularity": COARSE},
        graphs={spec.name: canonical},
        key=key,
    )


class TestRoutes:
    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_unknown_route_and_job_404(self, client):
        with pytest.raises(RemoteError, match="no such route") as excinfo:
            client._request("GET", "/v2/everything")
        assert excinfo.value.status == 404
        with pytest.raises(RemoteError, match="unknown job"):
            client.status("not-a-job")
        with pytest.raises(RemoteError, match="unknown job"):
            client.cancel("not-a-job")

    def test_malformed_submission_rejected(self, client):
        with pytest.raises(RemoteError, match="bad job payload") as excinfo:
            client._request(
                "POST", "/v1/jobs", {"job": {"version": 1, "kind": "teleport"}},
                accept=(201,),
            )
        assert excinfo.value.status == 400
        assert client.health() == {"status": "ok"}  # service survived

    def test_evaluate_roundtrip_matches_local(self, client, canonical, arch):
        handle = client.evaluate(
            canonical, COARSE_OPTIONS, arch=arch, assume_canonical=True
        )
        remote = handle.result(timeout=120).unwrap()
        local = (
            Session(arch)
            .submit(EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True))
            .result()
            .unwrap()
        )
        assert remote.metrics == local.metrics
        assert remote.energy == local.energy
        assert handle.status()["state"] == "done"

    def test_job_listing_and_stats(self, client, canonical, arch):
        handle = client.evaluate(
            canonical, COARSE_OPTIONS, arch=arch, assume_canonical=True
        )
        handle.result(timeout=120)
        assert handle.id in [job["id"] for job in client.jobs()]
        stats = client.stats()
        assert stats["executor"]["name"] == "async"
        assert stats["jobs"]["done"] >= 1
        assert "store" in stats and "session" in stats["store"]

    def test_request_timeout_surfaces_as_failed_envelope(self, client, spec,
                                                         canonical):
        handle = client.submit_job(sweep_job(spec, canonical), timeout=1e-9)
        envelope = handle.result(timeout=120)
        assert not envelope.ok
        assert envelope.error.kind == "JobTimeoutError"
        assert handle.status()["state"] == "failed"
        assert client.health() == {"status": "ok"}  # service survived


class TestConcurrentClients:
    def test_second_client_served_from_shared_store(self, server, spec,
                                                    canonical):
        """S4: two clients, one server — the second sweep never recompiles."""
        cold = Client(server.url).submit_job(
            sweep_job(spec, canonical, key="cold")
        ).result(timeout=300)
        (cold_sweep,) = cold.unwrap()
        assert any(p.cache_misses > 0 for p in cold_sweep.points)

        results = {}
        errors = []

        def run(name):
            try:
                handle = Client(server.url).submit_job(
                    sweep_job(spec, canonical, key=name)
                )
                results[name] = handle.result(timeout=300)
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(f"warm{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert set(results) == {"warm0", "warm1"}
        for envelope in results.values():
            (sweep,) = envelope.unwrap()
            assert sweep.points == cold_sweep.points or all(
                p.cache_store_hits > 0 for p in sweep.points
            )
            assert all(p.cache_misses == 0 for p in sweep.points)
            assert any(p.cache_store_hits > 0 for p in sweep.points)
            assert sweep.baseline_cache is not None
            assert sweep.baseline_cache[2] == 0  # baseline: zero misses too

    def test_warm_results_identical_to_cold(self, client, spec, canonical):
        first = client.submit_job(sweep_job(spec, canonical)).result(timeout=300)
        second = client.submit_job(sweep_job(spec, canonical)).result(timeout=300)
        (a,) = first.unwrap()
        (b,) = second.unwrap()
        assert a.baseline == b.baseline
        assert [(p.config, p.speedup, p.energy_uj) for p in a.points] == [
            (p.config, p.speedup, p.energy_uj) for p in b.points
        ]


class TestCancellation:
    def test_delete_cancels_queued_job(self, server, spec, canonical):
        client = Client(server.url)
        # Saturate both slots, then cancel a third (still-queued) job.
        blockers = [
            client.submit_job(sweep_job(spec, canonical)) for _ in range(2)
        ]
        victim = client.submit_job(sweep_job(spec, canonical))
        victim_status = client.cancel(victim.id)
        assert victim_status["state"] in ("cancelled", "running", "done")
        for handle in blockers:
            assert handle.result(timeout=300).ok
        final = victim.status()
        if final["state"] == "cancelled":
            envelope = client.result(victim.id)
            assert envelope.error.kind == "Cancelled"
        assert client.health() == {"status": "ok"}  # service survived


class TestRemoteExecutor:
    def test_session_remote_sweep_matches_local(self, server, spec, canonical):
        job = sweep_job(spec, canonical)
        with Session(paper_case_study(1)) as local_session:
            (local,) = local_session.submit(job).result().unwrap()
        executor = RemoteExecutor(server.url)
        try:
            with Session(paper_case_study(1), executor=executor) as session:
                result = session.submit(job).result()
        finally:
            executor.shutdown()
        (remote,) = result.unwrap()
        assert remote.benchmark == local.benchmark
        assert remote.baseline == local.baseline
        assert [(p.config, p.extra_pes, p.speedup, p.energy_uj)
                for p in remote.points] == [
            (p.config, p.extra_pes, p.speedup, p.energy_uj)
            for p in local.points
        ]

    def test_remote_executor_requires_url(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVER_URL", raising=False)
        with pytest.raises(ValueError, match="REPRO_SERVER_URL"):
            RemoteExecutor()

    def test_remote_executor_resolves_url_from_env(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_URL", server.url)
        executor = RemoteExecutor()
        try:
            assert executor.client.base_url == server.url
        finally:
            executor.shutdown()


class TestServerLifecycle:
    def test_shutdown_idempotent_and_rejects_submissions(self, spec, canonical,
                                                         tmp_path):
        server = CompileServer(port=0, jobs=1).start()
        client = Client(server.url)
        handle = client.submit_job(sweep_job(spec, canonical))
        assert handle.result(timeout=300).ok
        server.shutdown_service()
        server.shutdown_service()  # no-op
        with pytest.raises(OSError):
            Client(server.url, timeout=2.0).health()
