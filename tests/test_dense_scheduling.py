"""Scheduling behaviour of Dense layers (classifier heads).

Dense layers are base layers with a single OFM set and a *full-input*
dependency (through Flatten/GlobalAvgPool): they act as barriers in the
cross-layer schedule.  The VGG/ResNet models with ``include_top=True``
exercise this path at scale.
"""

import pytest

from repro.analysis import layer_utilization_report
from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.ir import GraphBuilder
from repro.mapping import minimum_pe_requirement
from repro.sim import evaluate


def classifier_model():
    b = GraphBuilder("classifier")
    x = b.input((16, 16, 3), name="in")
    x = b.conv2d(x, 8, kernel=3, padding="same", use_bias=True)
    x = b.relu(x)
    x = b.maxpool(x, 2)
    x = b.global_avgpool(x)
    x = b.flatten(x)
    x = b.dense(x, 32, use_bias=True)
    x = b.relu(x)
    b.dense(x, 10, use_bias=True)
    return b.graph


@pytest.fixture(scope="module")
def compiled():
    g = preprocess(classifier_model(), quantization=None).graph
    min_pes = minimum_pe_requirement(g, CrossbarSpec())
    return compile_model(
        g,
        paper_case_study(min_pes + 2),
        ScheduleOptions(mapping="none", scheduling="clsa-cim"),
        assume_canonical=True,
    )


class TestDenseScheduling:
    def test_dense_is_single_set(self, compiled):
        dense_layers = [
            name for name in compiled.mapped.base_layers() if "dense" in name
        ]
        assert len(dense_layers) == 2
        for layer in dense_layers:
            assert len(compiled.sets[layer]) == 1

    def test_dense_waits_for_full_producer(self, compiled):
        """GlobalAvgPool makes the first Dense a barrier: it starts only
        after the conv's entire OFM is finished."""
        conv = compiled.mapped.base_layers()[0]
        first_dense = [
            name for name in compiled.mapped.base_layers() if "dense" in name
        ][0]
        conv_end = compiled.schedule.layer_span(conv)[1]
        dense_start = compiled.schedule.layer_span(first_dense)[0]
        assert dense_start >= conv_end

    def test_dense_chain_sequential(self, compiled):
        d1, d2 = [
            name for name in compiled.mapped.base_layers() if "dense" in name
        ]
        assert compiled.schedule.layer_span(d2)[0] >= compiled.schedule.layer_span(d1)[1]

    def test_metrics_and_simulation(self, compiled):
        from repro.sim import simulate

        metrics = evaluate(compiled)
        assert 0 < metrics.utilization <= 1
        assert simulate(compiled).finish_cycles == compiled.latency_cycles

    def test_vgg16_with_top_compiles(self):
        from repro.models import vgg16

        g = preprocess(vgg16(include_top=True), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        # the 4096-wide FC layers need many PEs: 25088x4096 kernel matrix
        assert min_pes > 233
        compiled = compile_model(
            g,
            paper_case_study(min_pes),
            ScheduleOptions(mapping="none", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        # dense layers are at the end of the critical path
        last_base = compiled.mapped.base_layers()[-1]
        assert "dense" in last_base
        assert compiled.schedule.layer_span(last_base)[1] == compiled.latency_cycles


class TestLayerUtilizationReport:
    def test_report_contents(self, compiled):
        text = layer_utilization_report(compiled)
        assert "per-layer PE activity" in text
        assert "Busy share" in text
        assert "%" in text

    def test_shares_bounded(self, compiled):
        text = layer_utilization_report(compiled)
        for line in text.splitlines()[3:]:
            share = float(line.split()[-1].rstrip("%"))
            assert 0.0 <= share <= 100.0
