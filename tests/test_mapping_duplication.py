"""Unit and property tests for the weight-duplication optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    DuplicationError,
    DuplicationProblem,
    continuous_lower_bound,
    problem_from_tilings,
    solve,
    solve_dp,
    solve_greedy,
)


def make_problem(t, c, budget, d_max=None):
    n = len(t)
    layers = tuple(f"layer{i}" for i in range(n))
    return DuplicationProblem(
        layers=layers,
        t=tuple(t),
        c=tuple(c),
        budget=budget,
        d_max=tuple(d_max) if d_max else tuple(10**6 for _ in range(n)),
    )


class TestProblem:
    def test_base_cost_and_extra(self):
        problem = make_problem([100, 50], [2, 3], budget=9)
        assert problem.base_cost == 5
        assert problem.extra_budget == 4

    def test_infeasible_rejected(self):
        with pytest.raises(DuplicationError, match="infeasible"):
            make_problem([100], [10], budget=9)

    def test_validation(self):
        with pytest.raises(DuplicationError):
            make_problem([], [], budget=5)
        with pytest.raises(DuplicationError):
            make_problem([0], [1], budget=5)
        with pytest.raises(DuplicationError):
            make_problem([10], [0], budget=5)
        with pytest.raises(DuplicationError):
            DuplicationProblem(("a",), (10,), (1,), 5, (0,))


class TestGreedy:
    def test_single_layer_uses_whole_budget(self):
        problem = make_problem([100], [1], budget=5)
        solution = solve_greedy(problem)
        assert solution.d == {"layer0": 5}
        assert solution.objective == pytest.approx(20.0)

    def test_prefers_high_latency_low_cost(self):
        # layer0: huge latency, cheap; layer1: small latency, expensive
        problem = make_problem([1000, 10], [1, 5], budget=8)
        solution = solve_greedy(problem)
        assert solution.d["layer0"] == 3  # both extra PEs go to layer0
        assert solution.d["layer1"] == 1

    def test_respects_budget(self):
        problem = make_problem([100, 200, 300], [2, 3, 4], budget=20)
        solution = solve_greedy(problem)
        assert solution.pes_used <= 20

    def test_respects_d_max(self):
        problem = make_problem([1000], [1], budget=100, d_max=[3])
        solution = solve_greedy(problem)
        assert solution.d["layer0"] == 3

    def test_no_extra_budget_all_ones(self):
        problem = make_problem([10, 20], [2, 2], budget=4)
        solution = solve_greedy(problem)
        assert set(solution.d.values()) == {1}
        assert solution.duplicated_layers == []

    def test_speedup_metric(self):
        problem = make_problem([100], [1], budget=4)
        solution = solve_greedy(problem)
        assert solution.speedup_layer_by_layer() == pytest.approx(4.0)


class TestDp:
    def test_matches_greedy_on_uniform_costs(self):
        """With unit costs the greedy is provably optimal; DP must agree."""
        problem = make_problem([100, 70, 30], [1, 1, 1], budget=9)
        assert solve_dp(problem).objective == pytest.approx(
            solve_greedy(problem).objective
        )

    def test_beats_or_matches_greedy_generally(self):
        problem = make_problem([100, 99], [3, 2], budget=10)
        dp_obj = solve_dp(problem).objective
        greedy_obj = solve_greedy(problem).objective
        assert dp_obj <= greedy_obj + 1e-9

    def test_case_where_greedy_is_suboptimal(self):
        """A crafted instance where ratio-greedy strands budget.

        Extra budget 3: greedy buys the cheap high-ratio item (cost 2),
        then cannot afford anything (leftover 1); DP buys cost 3.
        """
        problem = make_problem([60, 60], [2, 3], budget=8)
        greedy = solve_greedy(problem)
        dp = solve_dp(problem)
        assert dp.objective <= greedy.objective

    def test_respects_d_max(self):
        problem = make_problem([1000, 10], [1, 1], budget=100, d_max=[2, 3])
        solution = solve_dp(problem)
        assert solution.d["layer0"] <= 2
        assert solution.d["layer1"] <= 3

    def test_solve_dispatch(self):
        problem = make_problem([100], [1], budget=3)
        assert solve(problem, "greedy").method == "greedy"
        assert solve(problem, "dp").method == "dp"
        with pytest.raises(DuplicationError):
            solve(problem, "annealing")


class TestLowerBound:
    def test_bound_below_integer_optimum(self):
        problem = make_problem([100, 70, 30], [2, 3, 1], budget=15)
        bound = continuous_lower_bound(problem)
        assert bound <= solve_dp(problem).objective + 1e-9

    def test_bound_tight_when_caps_reached(self):
        problem = make_problem([100], [1], budget=1000, d_max=[4])
        assert continuous_lower_bound(problem) == pytest.approx(25.0)

    def test_bound_with_binding_budget(self):
        # continuous optimum: d = budget/c for a single layer
        problem = make_problem([100], [2], budget=10)
        assert continuous_lower_bound(problem) == pytest.approx(100 / 5, rel=1e-6)


@st.composite
def random_problems(draw):
    n = draw(st.integers(1, 6))
    t = [draw(st.integers(1, 500)) for _ in range(n)]
    c = [draw(st.integers(1, 8)) for _ in range(n)]
    extra = draw(st.integers(0, 25))
    d_max = [draw(st.integers(1, 6)) for _ in range(n)]
    return make_problem(t, c, budget=sum(c) + extra, d_max=d_max)


class TestProperties:
    @settings(max_examples=120)
    @given(problem=random_problems())
    def test_dp_never_worse_than_greedy(self, problem):
        assert solve_dp(problem).objective <= solve_greedy(problem).objective + 1e-9

    @settings(max_examples=120)
    @given(problem=random_problems())
    def test_solutions_feasible(self, problem):
        for solver in (solve_greedy, solve_dp):
            solution = solver(problem)
            assert solution.pes_used <= problem.budget
            for name, factor in solution.d.items():
                index = problem.layers.index(name)
                assert 1 <= factor <= problem.d_max[index]

    @settings(max_examples=120)
    @given(problem=random_problems())
    def test_continuous_bound_is_lower_bound(self, problem):
        bound = continuous_lower_bound(problem)
        assert bound <= solve_dp(problem).objective + 1e-6

    @settings(max_examples=60)
    @given(problem=random_problems(), extra=st.integers(1, 10))
    def test_more_budget_never_hurts(self, problem, extra):
        richer = DuplicationProblem(
            layers=problem.layers,
            t=problem.t,
            c=problem.c,
            budget=problem.budget + extra,
            d_max=problem.d_max,
        )
        assert solve_dp(richer).objective <= solve_dp(problem).objective + 1e-9


class TestFromTilings:
    def test_problem_built_from_tilings(self):
        from repro.arch import CrossbarSpec
        from repro.ir import GraphBuilder
        from repro.mapping import tile_graph

        b = GraphBuilder("net")
        x = b.input((16, 16, 3), name="in")
        c1 = b.conv2d(x, 8, kernel=3, padding="valid", use_bias=False, name="c1")
        b.conv2d(c1, 8, kernel=3, padding="valid", use_bias=False, name="c2")
        tilings = tile_graph(b.graph, CrossbarSpec())
        problem = problem_from_tilings(tilings, budget=10)
        assert problem.layers == ("c1", "c2")
        assert problem.t == (14 * 14, 12 * 12)
        assert problem.c == (1, 1)
        # d_max defaults to the OFM height
        assert problem.d_max == (14, 12)

    def test_d_max_cap_applied(self):
        from repro.arch import CrossbarSpec
        from repro.ir import GraphBuilder
        from repro.mapping import tile_graph

        b = GraphBuilder("net")
        x = b.input((16, 16, 3), name="in")
        b.conv2d(x, 8, kernel=3, padding="valid", use_bias=False, name="c1")
        tilings = tile_graph(b.graph, CrossbarSpec())
        problem = problem_from_tilings(tilings, budget=10, d_max_cap=4)
        assert problem.d_max == (4,)
