"""Unit tests for graph JSON serialization."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, dumps, graph_to_dict, loads
from repro.ir.serialize import op_from_dict, op_to_dict


def example_graph():
    b = GraphBuilder("serialize-me")
    x = b.input((16, 16, 3), name="in")
    c = b.conv_bn_act(x, 8, kernel=3, strides=2, activation="leaky_relu")
    p = b.maxpool(c, 2)
    c2 = b.conv2d(p, 4, kernel=1, padding="valid", use_bias=True)
    b.concat([b.upsample(c2, 2), c])
    return b.graph


class TestRoundTrip:
    def test_structure_round_trips(self):
        g = example_graph()
        clone = loads(dumps(g))
        assert clone.name == g.name
        assert clone.node_names() == g.topological_order()
        for name in g.node_names():
            original = g[name]
            restored = clone[name]
            assert restored.op_type == original.op_type
            assert restored.inputs == original.inputs

    def test_shapes_round_trip(self):
        g = example_graph()
        clone = loads(dumps(g))
        assert clone.infer_shapes() == g.infer_shapes()

    def test_params_excluded_by_default(self):
        g = example_graph()
        g.initialize_weights(seed=1)
        clone = loads(dumps(g))
        assert clone["conv2d"].weights is None

    def test_params_included_on_request(self):
        g = example_graph()
        g.initialize_weights(seed=1)
        clone = loads(dumps(g, include_params=True))
        np.testing.assert_allclose(clone["conv2d"].weights, g["conv2d"].weights)
        np.testing.assert_allclose(
            clone["batch_normalization"].gamma, g["batch_normalization"].gamma
        )

    def test_functional_equivalence_with_params(self):
        from repro.ir import Executor

        g = example_graph()
        g.initialize_weights(seed=2)
        clone = loads(dumps(g, include_params=True))
        image = np.random.default_rng(0).normal(size=(16, 16, 3))
        out1 = Executor(g).run(image)
        out2 = Executor(clone).run(image)
        for key in out1:
            np.testing.assert_allclose(out1[key], out2[key], atol=1e-12)

    def test_save_load_file(self, tmp_path):
        from repro.ir import load, save

        g = example_graph()
        path = tmp_path / "graph.json"
        save(g, str(path))
        clone = load(str(path))
        assert clone.infer_shapes() == g.infer_shapes()


class TestErrors:
    def test_unknown_op_type(self):
        with pytest.raises(ValueError, match="unknown op type"):
            op_from_dict({"type": "Warp", "name": "w", "inputs": []})

    def test_unknown_attribute(self):
        record = {"type": "Identity", "name": "i", "inputs": ["x"],
                  "attrs": {"bogus": 1}}
        with pytest.raises(ValueError, match="no attribute"):
            op_from_dict(record)

    def test_bad_format_version(self):
        with pytest.raises(ValueError, match="format version"):
            loads('{"format_version": 99, "name": "x", "nodes": []}')

    def test_op_to_dict_skips_is_base(self):
        g = example_graph()
        record = op_to_dict(g["conv2d"])
        assert "is_base" not in record["attrs"]

    def test_graph_to_dict_topological(self):
        g = example_graph()
        record = graph_to_dict(g)
        names = [node["name"] for node in record["nodes"]]
        assert names == g.topological_order()


class TestConcatSpatialRoundTrip:
    def test_width_axis_round_trips(self):
        from repro.ir import ConcatSpatial, Graph, Input, Shape, Slice

        g = Graph("spatial")
        g.add(Input("in", [], shape=Shape(4, 6, 2)))
        g.add(Slice("left", ["in"], offsets=(0, 0, 0), sizes=(-1, 3, -1)))
        g.add(Slice("right", ["in"], offsets=(0, 3, 0), sizes=(-1, 3, -1)))
        g.add(ConcatSpatial("cat", ["left", "right"], axis="width"))
        clone = loads(dumps(g))
        assert clone["cat"].axis == "width"
        assert clone.infer_shapes() == g.infer_shapes()

    def test_duplicated_graph_round_trips(self):
        """A full wdup-rewritten graph survives serialization."""
        from repro.arch import CrossbarSpec, paper_case_study
        from repro.core import ScheduleOptions, compile_model
        from repro.frontend import preprocess
        from repro.mapping import minimum_pe_requirement
        from repro.models import tiny_sequential

        canonical = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
        compiled = compile_model(
            canonical,
            paper_case_study(min_pes + 4),
            ScheduleOptions(mapping="wdup"),
            assume_canonical=True,
        )
        clone = loads(dumps(compiled.mapped))
        assert clone.infer_shapes() == compiled.mapped.infer_shapes()
        assert clone.base_layers() == compiled.mapped.base_layers()
