"""Tests for the layer-by-layer baseline and CLSA-CIM schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Schedule,
    SetGranularity,
    SetTask,
    cross_layer_schedule,
    cross_layer_schedule_dynamic,
    determine_dependencies,
    determine_sets,
    intra_layer_order,
    layer_by_layer_schedule,
    validate_schedule,
)
from repro.frontend import preprocess
from repro.ir import GraphBuilder, Rect


def chain_model(num_layers=3, size=8):
    """Sequential 1x1-conv chain: every layer same OFM size."""
    b = GraphBuilder("chain")
    x = b.input((size, size, 3), name="in")
    for i in range(num_layers):
        x = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name=f"c{i}")
    return b.graph


def branch_model(size=8):
    """Input feeds two independent convs (no inter-dependency)."""
    b = GraphBuilder("branch")
    x = b.input((size, size, 3), name="in")
    b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="left")
    b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name="right")
    return b.graph


class TestSetTask:
    def test_duration(self):
        task = SetTask("c", 0, Rect(0, 0, 1, 8), start=0, end=8)
        assert task.duration == 8

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            SetTask("c", 0, Rect(0, 0, 1, 8), start=-1, end=7)
        with pytest.raises(ValueError):
            SetTask("c", 0, Rect(0, 0, 1, 8), start=10, end=2)

    def test_rejects_duration_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            SetTask("c", 0, Rect(0, 0, 1, 8), start=0, end=9)


class TestScheduleContainer:
    def make(self):
        s = Schedule(policy="test")
        s.tasks = [
            SetTask("a", 0, Rect(0, 0, 1, 4), 0, 4),
            SetTask("a", 1, Rect(1, 0, 2, 4), 4, 8),
            SetTask("b", 0, Rect(0, 0, 1, 2), 6, 8),
        ]
        return s

    def test_makespan(self):
        assert self.make().makespan == 8
        assert Schedule(policy="empty").makespan == 0

    def test_busy_cycles(self):
        assert self.make().busy_cycles() == {"a": 8, "b": 2}

    def test_layer_span(self):
        s = self.make()
        assert s.layer_span("a") == (0, 8)
        with pytest.raises(KeyError):
            s.layer_span("ghost")

    def test_layers_order(self):
        assert self.make().layers() == ["a", "b"]

    def test_overlap_detection(self):
        s = self.make()
        s.tasks.append(SetTask("b", 1, Rect(1, 0, 2, 2), 7, 9))
        with pytest.raises(AssertionError, match="resource violation"):
            s.validate_intra_layer_order()


class TestLayerByLayer:
    def test_chain_is_sequential(self):
        g = chain_model(3)
        schedule = layer_by_layer_schedule(g)
        assert schedule.makespan == 3 * 64
        spans = [schedule.layer_span(f"c{i}") for i in range(3)]
        assert spans == [(0, 64), (64, 128), (128, 192)]

    def test_independent_branches_overlap(self):
        g = branch_model()
        schedule = layer_by_layer_schedule(g)
        # both convs depend only on the input: they run on their own
        # PEs in parallel even under layer-by-layer semantics
        assert schedule.makespan == 64

    def test_with_sets_same_makespan(self):
        g = chain_model(2)
        sets = determine_sets(g)
        coarse = layer_by_layer_schedule(g)
        fine = layer_by_layer_schedule(g, sets)
        assert coarse.makespan == fine.makespan
        assert len(fine.tasks) == 16  # 8 rows x 2 layers

    def test_sets_run_back_to_back(self):
        g = chain_model(1)
        schedule = layer_by_layer_schedule(g, determine_sets(g))
        tasks = schedule.tasks_of("c0")
        for earlier, later in zip(tasks, tasks[1:]):
            assert later.start == earlier.end


class TestCrossLayerStatic:
    def schedule_for(self, graph, granularity=None):
        sets = determine_sets(graph, granularity or SetGranularity(rows_per_set=1))
        deps = determine_dependencies(graph, sets)
        order = intra_layer_order(sets)
        schedule = cross_layer_schedule(graph, deps, order)
        validate_schedule(schedule, deps)
        return schedule

    def test_chain_pipelines(self):
        g = chain_model(3)
        schedule = self.schedule_for(g)
        lbl = layer_by_layer_schedule(g)
        # 1x1 convs forward row by row: each extra layer adds one row (8
        # cycles) instead of a full layer (64 cycles)
        assert schedule.makespan == 64 + 8 + 8
        assert schedule.makespan < lbl.makespan

    def test_never_slower_than_layer_by_layer(self):
        from repro.models import tiny_csp, tiny_dual_head, tiny_residual

        for factory in (tiny_residual, tiny_csp, tiny_dual_head):
            canonical = preprocess(factory(), quantization=None).graph
            xinf = self.schedule_for(canonical)
            lbl = layer_by_layer_schedule(canonical)
            assert xinf.makespan <= lbl.makespan

    def test_busy_cycles_conserved(self):
        g = chain_model(3)
        assert self.schedule_for(g).busy_cycles() == layer_by_layer_schedule(g).busy_cycles()


class TestCrossLayerDynamic:
    def schedule_for(self, graph):
        sets = determine_sets(graph)
        deps = determine_dependencies(graph, sets)
        schedule = cross_layer_schedule_dynamic(graph, deps)
        validate_schedule(schedule, deps)
        return schedule

    def test_matches_static_on_chain(self):
        g = chain_model(3)
        sets = determine_sets(g)
        deps = determine_dependencies(g, sets)
        static = cross_layer_schedule(g, deps, intra_layer_order(sets))
        dynamic = cross_layer_schedule_dynamic(g, deps)
        assert dynamic.makespan == static.makespan

    def test_competitive_with_static(self):
        from repro.models import tiny_csp, tiny_dual_head, tiny_residual

        for factory in (tiny_residual, tiny_csp, tiny_dual_head):
            canonical = preprocess(factory(), quantization=None).graph
            sets = determine_sets(canonical)
            deps = determine_dependencies(canonical, sets)
            static = cross_layer_schedule(canonical, deps, intra_layer_order(sets))
            dynamic = cross_layer_schedule_dynamic(canonical, deps)
            # greedy list scheduling is not provably optimal; require
            # at-least-competitive behaviour
            assert dynamic.makespan <= 1.05 * static.makespan

    def test_all_sets_scheduled(self):
        from repro.models import tiny_dual_head

        canonical = preprocess(tiny_dual_head(), quantization=None).graph
        sets = determine_sets(canonical)
        deps = determine_dependencies(canonical, sets)
        schedule = cross_layer_schedule_dynamic(canonical, deps)
        assert len(schedule.tasks) == deps.num_sets()


class TestIntraLayerPolicies:
    def test_policies_are_permutations(self):
        rects = [Rect(r, 0, r + 1, 4) for r in range(5)]
        for policy in ("row_major", "column_major", "reverse_row_major", "even_odd"):
            order = intra_layer_order({"layer": rects}, policy)["layer"]
            assert sorted(order) == list(range(5))

    def test_even_odd_interleaves(self):
        rects = [Rect(r, 0, r + 1, 4) for r in range(5)]
        order = intra_layer_order({"l": rects}, "even_odd")["l"]
        assert order == [0, 2, 4, 1, 3]

    def test_reverse_row_major_reverses(self):
        rects = [Rect(r, 0, r + 1, 4) for r in range(3)]
        order = intra_layer_order({"l": rects}, "reverse_row_major")["l"]
        assert order == [2, 1, 0]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown intra-layer policy"):
            intra_layer_order({"l": []}, "zigzag")


class TestScheduleProperties:
    @settings(max_examples=30)
    @given(
        num_layers=st.integers(1, 4),
        size=st.sampled_from([4, 6, 8]),
        kernel=st.sampled_from([1, 3]),
        rows=st.integers(1, 4),
    )
    def test_property_valid_schedules(self, num_layers, size, kernel, rows):
        """Random chains: both schedulers produce dependency-valid
        schedules, and cross-layer never loses to the baseline."""
        b = GraphBuilder("prop")
        x = b.input((size, size, 2), name="in")
        for i in range(num_layers):
            x = b.conv2d(x, 3, kernel=kernel, padding="same", use_bias=False,
                         name=f"c{i}")
        g = preprocess(b.graph, quantization=None).graph
        sets = determine_sets(g, SetGranularity(rows_per_set=rows))
        deps = determine_dependencies(g, sets)
        dynamic = cross_layer_schedule_dynamic(g, deps)
        validate_schedule(dynamic, deps)
        lbl = layer_by_layer_schedule(g, sets)
        assert dynamic.makespan <= lbl.makespan
        assert dynamic.busy_cycles() == lbl.busy_cycles()
