"""Tests for the graph simplification passes."""

import numpy as np
import pytest

from repro.frontend import (
    drop_zero_pads,
    eliminate_dead_nodes,
    merge_pads,
    remove_identities,
    simplify,
)
from repro.ir import Executor, GraphBuilder, Shape


def graph_with_clutter():
    b = GraphBuilder("cluttered")
    x = b.input((8, 8, 3), name="in")
    x = b.identity(x, name="alias1")
    x = b.pad(x, (1, 1, 1, 1), name="pad_a")
    x = b.pad(x, (0, 0, 0, 0), name="pad_zero")
    x = b.pad(x, (1, 0, 1, 0), name="pad_b")
    x = b.conv2d(x, 4, kernel=3, padding="valid", use_bias=False, name="conv")
    b.relu(x, name="act")
    g = b.graph
    g.initialize_weights(seed=1)
    return g


class TestIndividualPasses:
    def test_remove_identities(self):
        g = graph_with_clutter()
        removed = remove_identities(g)
        assert removed == ["alias1"]
        assert "alias1" not in g
        assert g["pad_a"].inputs == ["in"]

    def test_drop_zero_pads(self):
        g = graph_with_clutter()
        removed = drop_zero_pads(g)
        assert removed == ["pad_zero"]
        assert g["pad_b"].inputs == ["pad_a"]

    def test_merge_pads(self):
        g = graph_with_clutter()
        drop_zero_pads(g)
        merged = merge_pads(g)
        assert merged == [("pad_a", "pad_b")]
        pad = g["pad_b"]
        assert (pad.pad_top, pad.pad_bottom, pad.pad_left, pad.pad_right) == (2, 1, 2, 1)

    def test_merge_respects_shared_pad(self):
        b = GraphBuilder("shared")
        x = b.input((4, 4, 1), name="in")
        p1 = b.pad(x, (1, 1, 1, 1), name="p1")
        b.pad(p1, (1, 1, 1, 1), name="p2")
        b.identity(p1, name="other_consumer")
        g = b.graph
        assert merge_pads(g) == []  # p1 feeds two consumers

    def test_merge_respects_fill_value(self):
        from repro.ir import Pad

        b = GraphBuilder("values")
        x = b.input((4, 4, 1), name="in")
        g = b.graph
        g.add(Pad("p1", [x], pad_top=1, value=0.0))
        g.add(Pad("p2", ["p1"], pad_top=1, value=-1.0))
        assert merge_pads(g) == []

    def test_eliminate_dead_nodes(self):
        g = graph_with_clutter()
        # prune to just the conv: the relu becomes dead
        removed = eliminate_dead_nodes(g, outputs=["conv"])
        assert removed == ["act"]
        assert "conv" in g

    def test_eliminate_unknown_output_rejected(self):
        g = graph_with_clutter()
        with pytest.raises(KeyError):
            eliminate_dead_nodes(g, outputs=["ghost"])

    def test_natural_outputs_keep_everything(self):
        g = graph_with_clutter()
        assert eliminate_dead_nodes(g) == []


class TestSimplify:
    def test_fixed_point(self):
        g = graph_with_clutter()
        report = simplify(g)
        assert report.total_changes == 3  # identity + zero pad + merge
        # idempotent
        again = simplify(g)
        assert again.total_changes == 0

    def test_shapes_preserved(self):
        g = graph_with_clutter()
        before = g.shape_of("act")
        simplify(g)
        # 8x8 input + (2,1,2,1) total padding = 11x11; 3x3 valid -> 9x9
        assert g.shape_of("act") == before == Shape(9, 9, 4)

    def test_numeric_equivalence(self):
        g = graph_with_clutter()
        image = np.random.default_rng(0).normal(size=(8, 8, 3))
        expected = Executor(g).run_single(image)
        simplify(g)
        np.testing.assert_allclose(Executor(g).run_single(image), expected, atol=1e-12)

    def test_clean_graph_untouched(self):
        b = GraphBuilder("clean")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, kernel=3, padding="valid", use_bias=False)
        g = b.graph
        node_count = len(g)
        report = simplify(g)
        assert report.total_changes == 0
        assert len(g) == node_count
