"""Tests for the inference energy model."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.sim import EnergyModelConfig, estimate_energy


@pytest.fixture(scope="module")
def setup():
    g = preprocess(tiny_sequential(), quantization=None).graph
    min_pes = minimum_pe_requirement(g, CrossbarSpec())
    arch = paper_case_study(min_pes + 8)
    return g, arch


def compile_config(setup, mapping, scheduling):
    g, arch = setup
    return compile_model(
        g, arch, ScheduleOptions(mapping=mapping, scheduling=scheduling),
        assume_canonical=True,
    )


class TestEnergyModel:
    def test_breakdown_positive(self, setup):
        compiled = compile_config(setup, "wdup", "clsa-cim")
        report = estimate_energy(compiled)
        assert report.mvm_uj > 0
        assert report.noc_uj > 0
        assert report.static_uj > 0
        assert report.total_uj == pytest.approx(
            report.mvm_uj + report.noc_uj + report.static_uj
        )

    def test_mvm_energy_schedule_invariant(self, setup):
        """Total active PE-cycles are conserved, so MVM energy is too."""
        a = estimate_energy(compile_config(setup, "none", "clsa-cim"))
        b = estimate_energy(compile_config(setup, "wdup", "clsa-cim"))
        assert a.mvm_uj == pytest.approx(b.mvm_uj)

    def test_faster_schedule_saves_static_energy(self, setup):
        slow = compile_config(setup, "none", "clsa-cim")
        fast = compile_config(setup, "wdup", "clsa-cim")
        assert fast.latency_cycles < slow.latency_cycles
        e_slow = estimate_energy(slow)
        e_fast = estimate_energy(fast)
        assert e_fast.static_uj < e_slow.static_uj

    def test_layer_by_layer_has_no_noc_term(self, setup):
        """Without a set graph, NoC energy cannot be attributed."""
        compiled = compile_config(setup, "none", "layer-by-layer")
        report = estimate_energy(compiled)
        assert report.noc_uj == 0.0
        assert report.mvm_uj > 0

    def test_coefficients_scale_linearly(self, setup):
        compiled = compile_config(setup, "none", "clsa-cim")
        base = estimate_energy(compiled, EnergyModelConfig(mvm_energy_nj=40.0))
        double = estimate_energy(compiled, EnergyModelConfig(mvm_energy_nj=80.0))
        assert double.mvm_uj == pytest.approx(2 * base.mvm_uj)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnergyModelConfig(mvm_energy_nj=-1)
        with pytest.raises(ValueError):
            EnergyModelConfig(static_power_mw_per_pe=-0.1)
        with pytest.raises(ValueError):
            EnergyModelConfig(bytes_per_element=0)

    def test_summary(self, setup):
        compiled = compile_config(setup, "wdup", "clsa-cim")
        text = estimate_energy(compiled).summary()
        assert "uJ" in text
        assert "wdup+xinf" in text
