"""Tests for the inference energy model."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.sim import EnergyModelConfig, estimate_energy


@pytest.fixture(scope="module")
def setup():
    g = preprocess(tiny_sequential(), quantization=None).graph
    min_pes = minimum_pe_requirement(g, CrossbarSpec())
    arch = paper_case_study(min_pes + 8)
    return g, arch


def compile_config(setup, mapping, scheduling):
    g, arch = setup
    return compile_model(
        g, arch, ScheduleOptions(mapping=mapping, scheduling=scheduling),
        assume_canonical=True,
    )


class TestEnergyModel:
    def test_breakdown_positive(self, setup):
        compiled = compile_config(setup, "wdup", "clsa-cim")
        report = estimate_energy(compiled)
        assert report.mvm_uj > 0
        assert report.noc_uj > 0
        assert report.static_uj > 0
        assert report.total_uj == pytest.approx(
            report.mvm_uj + report.noc_uj + report.static_uj
        )

    def test_mvm_energy_schedule_invariant(self, setup):
        """Total active PE-cycles are conserved, so MVM energy is too."""
        a = estimate_energy(compile_config(setup, "none", "clsa-cim"))
        b = estimate_energy(compile_config(setup, "wdup", "clsa-cim"))
        assert a.mvm_uj == pytest.approx(b.mvm_uj)

    def test_faster_schedule_saves_static_energy(self, setup):
        slow = compile_config(setup, "none", "clsa-cim")
        fast = compile_config(setup, "wdup", "clsa-cim")
        assert fast.latency_cycles < slow.latency_cycles
        e_slow = estimate_energy(slow)
        e_fast = estimate_energy(fast)
        assert e_fast.static_uj < e_slow.static_uj

    def test_layer_by_layer_has_no_noc_term(self, setup):
        """Without a set graph, NoC energy cannot be attributed."""
        compiled = compile_config(setup, "none", "layer-by-layer")
        report = estimate_energy(compiled)
        assert report.noc_uj == 0.0
        assert report.mvm_uj > 0

    def test_coefficients_scale_linearly(self, setup):
        compiled = compile_config(setup, "none", "clsa-cim")
        base = estimate_energy(compiled, EnergyModelConfig(mvm_energy_nj=40.0))
        double = estimate_energy(compiled, EnergyModelConfig(mvm_energy_nj=80.0))
        assert double.mvm_uj == pytest.approx(2 * base.mvm_uj)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EnergyModelConfig(mvm_energy_nj=-1)
        with pytest.raises(ValueError):
            EnergyModelConfig(static_power_mw_per_pe=-0.1)
        with pytest.raises(ValueError):
            EnergyModelConfig(bytes_per_element=0)

    def test_summary(self, setup):
        compiled = compile_config(setup, "wdup", "clsa-cim")
        text = estimate_energy(compiled).summary()
        assert "uJ" in text
        assert "wdup+xinf" in text

    def test_derived_quantities(self, setup):
        compiled = compile_config(setup, "wdup", "clsa-cim")
        report = estimate_energy(compiled)
        assert not report.is_degenerate
        assert report.makespan_ns == pytest.approx(compiled.latency_ns)
        assert report.average_power_mw > 0
        assert report.energy_per_active_cycle_nj > 0


class TestDegenerateSchedules:
    """Zero-cycle schedules (empty models) must not divide by zero."""

    def empty_compiled(self, scheduling):
        from repro.ir.graph import Graph
        from repro.session import Session

        session = Session(paper_case_study(4))
        return session.compile(
            Graph("empty"),
            ScheduleOptions(mapping="none", scheduling=scheduling),
        )

    @pytest.mark.parametrize("scheduling", ["layer-by-layer", "clsa-cim"])
    def test_zero_cycle_schedule_reports_all_zero(self, scheduling):
        compiled = self.empty_compiled(scheduling)
        assert compiled.schedule.makespan == 0
        report = estimate_energy(compiled)
        assert report.is_degenerate
        assert report.total_uj == 0.0
        assert report.mvm_uj == report.noc_uj == report.static_uj == 0.0
        assert report.details["active_pe_cycles"] == 0.0

    def test_degenerate_derived_quantities_guarded(self):
        report = estimate_energy(self.empty_compiled("clsa-cim"))
        # the guarded ratios return 0.0 instead of raising
        assert report.average_power_mw == 0.0
        assert report.energy_per_active_cycle_nj == 0.0

    def test_degenerate_summary_renders(self):
        text = estimate_energy(self.empty_compiled("clsa-cim")).summary()
        assert "0.0 uJ" in text

    def test_handbuilt_report_defaults_degenerate(self):
        from repro.sim import EnergyReport

        report = EnergyReport("x", mvm_uj=1.0, noc_uj=0.0, static_uj=0.0)
        assert report.is_degenerate  # no makespan recorded
        assert report.average_power_mw == 0.0
        assert report.energy_per_active_cycle_nj == 0.0  # no active cycles

    def test_average_power_consistent_units(self, setup):
        """1 uJ over 1 ms is 1 mW."""
        from repro.sim import EnergyReport

        report = EnergyReport(
            "x", mvm_uj=1.0, noc_uj=0.0, static_uj=0.0, makespan_ns=1e6,
            details={"active_pe_cycles": 500.0},
        )
        assert report.average_power_mw == pytest.approx(1.0)
        assert report.energy_per_active_cycle_nj == pytest.approx(2.0)
