"""The disk-backed artifact store: publish, integrity, GC, stats."""

import json
import os

import pytest

from repro.arch import paper_case_study
from repro.core import ScheduleOptions
from repro.core.cache import CompilationCache, graph_fingerprint
from repro.core.pipeline import compile_model
from repro.frontend import preprocess
from repro.models import tiny_sequential
from repro.store import ArtifactStore, codec_for
from repro.store.keys import key_digest


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _graph_key(canonical):
    return ("preprocess", graph_fingerprint(canonical))


class TestLayout:
    def test_directories_and_meta_created(self, store):
        for name in ("objects", "tmp", "quarantine"):
            assert os.path.isdir(os.path.join(store.root, name))
        with open(os.path.join(store.root, "meta.json")) as handle:
            meta = json.load(handle)
        assert meta == {"format": "clsa-cim-store", "schema": 1}

    def test_path_alias(self, store):
        assert store.path == store.root


class TestRoundTrip:
    def test_preprocess_graph_round_trips(self, store, canonical):
        key = _graph_key(canonical)
        assert store.put("preprocess", key, canonical)
        hit, value = store.get("preprocess", key)
        assert hit
        assert graph_fingerprint(value) == graph_fingerprint(canonical)

    def test_every_pipeline_stage_round_trips(self, store, canonical):
        """Compile once through a store-backed cache, then read every
        published stage back from a *fresh* store handle."""
        cache = CompilationCache(store=store)
        compiled = compile_model(
            canonical,
            paper_case_study(40),
            ScheduleOptions(),
            cache=cache,
            assume_canonical=True,
        )
        stats = store.stats()
        for stage in ("tile", "wdup", "place", "sets", "deps", "schedule"):
            assert stage in stats.per_stage, f"{stage} never published"
        reread = ArtifactStore(store.root)
        cache2 = CompilationCache(store=reread)
        compiled2 = compile_model(
            canonical,
            paper_case_study(40),
            ScheduleOptions(),
            cache=cache2,
            assume_canonical=True,
        )
        assert cache2.misses == 0
        assert (
            compiled2.schedule.makespan == compiled.schedule.makespan
        )
        m1, m2 = compiled.evaluate(), compiled2.evaluate()
        assert m1.latency_cycles == m2.latency_cycles
        assert m1.utilization == m2.utilization

    def test_unknown_stage_is_memory_only(self, store):
        assert codec_for("mapping") is None
        assert not store.put("mapping", ("mapping", "x"), object())
        assert store.get("mapping", ("mapping", "x")) == (False, None)

    def test_unencodable_key_is_memory_only(self, store, canonical):
        key = ("preprocess", object())
        assert not store.put("preprocess", key, canonical)
        assert store.get("preprocess", key) == (False, None)

    def test_missing_entry_is_a_miss(self, store):
        hit, value = store.get("preprocess", ("preprocess", "nope"))
        assert (hit, value) == (False, None)
        assert store.misses == 1


class TestAtomicity:
    def test_publish_leaves_no_tmp_litter(self, store, canonical):
        store.put("preprocess", _graph_key(canonical), canonical)
        assert os.listdir(os.path.join(store.root, "tmp")) == []

    def test_second_put_is_idempotent(self, store, canonical):
        key = _graph_key(canonical)
        assert store.put("preprocess", key, canonical)
        assert store.put("preprocess", key, canonical)
        assert len(store.index()) == 1

    def test_tmp_litter_invisible_to_get(self, store, canonical):
        """A writer killed mid-publish leaves only a tmp file — readers
        must not see a partial entry."""
        key = _graph_key(canonical)
        digest = key_digest(key, codec_for("preprocess").version)
        litter = os.path.join(store.root, "tmp", f"{digest}.999.dead")
        with open(litter, "w") as handle:
            handle.write('{"format": "clsa-cim-store-entry", "truncat')
        assert store.get("preprocess", key) == (False, None)
        assert store.corrupt == 0  # a miss, not a corruption

    def test_gc_sweeps_stale_tmp_litter(self, store):
        litter = os.path.join(store.root, "tmp", "deadbeef.1.00")
        with open(litter, "w") as handle:
            handle.write("partial")
        os.utime(litter, (1, 1))  # ancient
        result = store.gc()
        assert result.swept_tmp == 1
        assert not os.path.exists(litter)

    def test_gc_keeps_recent_tmp_files(self, store):
        litter = os.path.join(store.root, "tmp", "deadbeef.1.01")
        with open(litter, "w") as handle:
            handle.write("in flight")
        result = store.gc()
        assert result.swept_tmp == 0
        assert os.path.exists(litter)


class TestIntegrity:
    def _entry_path(self, store, canonical):
        key = _graph_key(canonical)
        store.put("preprocess", key, canonical)
        digest = key_digest(key, codec_for("preprocess").version)
        return key, store._entry_path(digest)

    def test_corrupted_payload_quarantined(self, store, canonical):
        key, path = self._entry_path(store, canonical)
        with open(path, "r+") as handle:
            record = json.load(handle)
            record["payload"]["ops"] = []
            handle.seek(0)
            json.dump(record, handle)
            handle.truncate()
        assert store.get("preprocess", key) == (False, None)
        assert store.corrupt == 1
        assert not os.path.exists(path)
        assert len(os.listdir(os.path.join(store.root, "quarantine"))) == 1
        # Quarantined entries are not re-read: still a miss, no crash.
        assert store.get("preprocess", key) == (False, None)

    def test_truncated_entry_quarantined(self, store, canonical):
        key, path = self._entry_path(store, canonical)
        with open(path, "w") as handle:
            handle.write('{"format": "clsa-cim-store-entry"')
        assert store.get("preprocess", key) == (False, None)
        assert store.corrupt == 1

    def test_wrong_stage_header_quarantined(self, store, canonical):
        key, path = self._entry_path(store, canonical)
        with open(path, "r+") as handle:
            record = json.load(handle)
            record["stage"] = "schedule"
            handle.seek(0)
            json.dump(record, handle)
            handle.truncate()
        assert store.get("preprocess", key) == (False, None)
        assert store.corrupt == 1

    def test_quarantine_then_recompute_republishes(self, store, canonical):
        key, path = self._entry_path(store, canonical)
        with open(path, "w") as handle:
            handle.write("garbage")
        cache = CompilationCache(store=store)
        value = cache.get_or_compute(key, lambda: canonical)
        assert value is canonical
        assert cache.misses == 1  # recompiled, not crashed
        hit, _ = store.get("preprocess", key)
        assert hit  # write-through republished a good entry


class TestGC:
    def _fill(self, store, canonical, n=4):
        """Publish n distinct entries by perturbing the key."""
        keys = []
        for i in range(n):
            key = ("preprocess", graph_fingerprint(canonical), i)
            assert store.put("preprocess", key, canonical)
            keys.append(key)
        return keys

    def test_gc_evicts_lru_down_to_budget(self, store, canonical):
        keys = self._fill(store, canonical)
        sizes = [size for _p, size, _m in store._scan_entries()]
        per_entry = sizes[0]
        # Touch the last key so it is most-recently-used.
        paths = sorted(
            store._scan_entries(), key=lambda item: item[2]
        )
        os.utime(paths[0][0], (1, 1))  # force one entry oldest
        result = store.gc(max_bytes=2 * per_entry)
        assert result.evicted_entries == 2
        assert result.remaining_entries == 2
        assert result.remaining_bytes <= 2 * per_entry
        assert not os.path.exists(paths[0][0])

    def test_gc_without_budget_only_sweeps(self, store, canonical):
        self._fill(store, canonical)
        result = store.gc()
        assert result.evicted_entries == 0
        assert result.remaining_entries == 4

    def test_gc_rewrites_manifest(self, store, canonical):
        self._fill(store, canonical)
        store.gc(max_bytes=0)
        assert store.index() == []
        assert store.stats().entries == 0

    def test_gc_counts_quarantine_toward_budget_and_evicts_it_first(
        self, store, canonical
    ):
        keys = self._fill(store, canonical)
        per_entry = store._scan_entries()[0][1]
        # Corrupt one entry so a read sends it to quarantine/.
        digest = key_digest(keys[0], codec_for("preprocess").version)
        with open(store._entry_path(digest), "w") as handle:
            handle.write("garbage")
        assert store.get("preprocess", keys[0]) == (False, None)
        quarantine = os.path.join(store.root, "quarantine")
        assert len(os.listdir(quarantine)) == 1
        # Budget covers the three live entries exactly: the quarantined
        # file is dead weight that must be charged and evicted first.
        result = store.gc(max_bytes=3 * per_entry)
        assert os.listdir(quarantine) == []
        assert result.remaining_entries == 3

    def test_auto_gc_with_standing_budget(self, tmp_path, canonical):
        budgeted = ArtifactStore(str(tmp_path / "b"), max_bytes=1)
        for i in range(3):
            budgeted.put(
                "preprocess", ("preprocess", graph_fingerprint(canonical), i),
                canonical,
            )
        assert budgeted.stats().entries <= 1

    def test_clear_removes_everything(self, store, canonical):
        self._fill(store, canonical)
        removed = store.clear()
        assert removed == 4
        assert store.stats().entries == 0
        assert store.index() == []


class TestManifestAndStats:
    def test_manifest_header_and_records(self, store, canonical):
        store.put("preprocess", _graph_key(canonical), canonical)
        with open(os.path.join(store.root, "manifest.jsonl")) as handle:
            lines = handle.read().splitlines()
        header = json.loads(lines[0])
        assert header == {"format": "clsa-cim-store", "schema": 1}
        record = json.loads(lines[1])
        assert record["stage"] == "preprocess"
        assert record["bytes"] > 0

    def test_index_tolerates_torn_final_line(self, store, canonical):
        store.put("preprocess", _graph_key(canonical), canonical)
        with open(os.path.join(store.root, "manifest.jsonl"), "a") as handle:
            handle.write('{"digest": "torn')
        records = store.index()
        assert len(records) == 1

    def test_stats_counts_and_session_counters(self, store, canonical):
        key = _graph_key(canonical)
        store.put("preprocess", key, canonical)
        store.get("preprocess", key)
        store.get("preprocess", ("preprocess", "missing"))
        stats = store.stats()
        assert stats.entries == 1
        assert stats.per_stage["preprocess"][0] == 1
        assert stats.session_hits == 1
        assert stats.session_misses == 1
        assert stats.session_writes == 1
        payload = stats.to_dict()
        assert payload["session"] == {
            "hits": 1,
            "misses": 1,
            "corrupt": 0,
            "writes": 1,
        }

    def test_reopen_existing_store_preserves_entries(self, store, canonical):
        key = _graph_key(canonical)
        store.put("preprocess", key, canonical)
        reopened = ArtifactStore(store.root)
        hit, _ = reopened.get("preprocess", key)
        assert hit
