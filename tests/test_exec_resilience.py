"""Tests for fault-tolerant execution: retries, deadlines, fault injection.

Unit coverage for :mod:`repro.exec.resilience` and
:mod:`repro.exec.faults`, plus chaos scenarios driving the process
backend through injected worker kills, deadline overruns, and poison
jobs (``jobs=2`` keeps the pool real but cheap on small CI boxes).
"""

import os
import time
import warnings

import pytest

from repro import (
    EvaluateJob,
    ScheduleOptions,
    Session,
    SessionHooks,
    paper_case_study,
)
from repro.analysis import sweep_to_csv
from repro.core import SetGranularity
from repro.exec import (
    Deadline,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    JobTimeoutError,
    RetryPolicy,
    TransientFault,
    WorkerCrashError,
    check_deadline,
    deadline_scope,
)
from repro.exec.faults import apply_fault
from repro.exec.resilience import NO_RETRY, normalize_retry
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_sequential

COARSE = {"granularity": SetGranularity(rows_per_set=4)}
COARSE_OPTIONS = ScheduleOptions(granularity=SetGranularity(rows_per_set=4))


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def arch(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + 4)


@pytest.fixture(scope="module")
def spec(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return BenchmarkSpec(
        "tiny_sequential",
        canonical.shape_of(canonical.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()),
        min_pes=min_pes,
    )


def chaos_sweep(spec, canonical, arch, plan, *, hooks=None, store=None,
                cache=False, timeout=5.0, retry=3):
    """One 4-point process-pool sweep under ``plan``, warnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        session = Session(arch, cache=cache, hooks=hooks, store=store,
                          retry=retry, job_timeout=timeout, fault_plan=plan)
        with session:
            return session.sweep(
                [spec], xs=(2,), jobs=2, executor="process",
                options_overrides=COARSE,
                graphs={"tiny_sequential": canonical},
            )[0]


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff("k", 1) == policy.backoff("k", 1)
        assert RetryPolicy(seed=7).backoff("k", 2) == policy.backoff("k", 2)

    def test_backoff_varies_with_seed_and_key(self):
        policy = RetryPolicy(seed=0, jitter=0.25)
        assert policy.backoff("a", 1) != RetryPolicy(seed=1, jitter=0.25).backoff("a", 1)
        assert policy.backoff("a", 1) != policy.backoff("b", 1)

    def test_backoff_bounds_and_growth(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=1.0, jitter=0.0
        )
        assert policy.backoff("k", 1) == pytest.approx(0.1)
        assert policy.backoff("k", 2) == pytest.approx(0.2)
        assert policy.backoff("k", 9) == pytest.approx(1.0)  # capped
        jittered = RetryPolicy(backoff_base_s=0.1, jitter=0.25)
        raw = 0.1
        assert raw * 0.75 <= jittered.backoff("k", 1) <= raw * 1.25

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.retryable("WorkerCrashError")
        assert policy.retryable("JobTimeoutError")
        assert policy.retryable("BrokenProcessPool")
        assert policy.retryable("TransientFault")
        assert not policy.retryable("ValueError")  # deterministic: fail fast
        assert not policy.retryable("InjectedFault")

    def test_should_retry_respects_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("WorkerCrashError", 1)
        assert policy.should_retry("WorkerCrashError", 2)
        assert not policy.should_retry("WorkerCrashError", 3)
        assert not policy.should_retry("ValueError", 1)

    def test_normalize(self):
        assert normalize_retry(None) is NO_RETRY
        assert normalize_retry(4).max_attempts == 4
        policy = RetryPolicy(max_attempts=2)
        assert normalize_retry(policy) is policy
        with pytest.raises(TypeError):
            normalize_retry(True)


class TestDeadline:
    def test_check_is_noop_without_scope(self):
        check_deadline("anywhere")

    def test_none_scope_installs_nothing(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            check_deadline("inside")

    def test_expired_deadline_raises(self):
        with deadline_scope(0.0):
            with pytest.raises(JobTimeoutError, match="deadline"):
                check_deadline("unit test")

    def test_scopes_nest_and_restore(self):
        with deadline_scope(60.0) as outer:
            assert isinstance(outer, Deadline)
            with deadline_scope(0.0):
                with pytest.raises(JobTimeoutError):
                    check_deadline()
            check_deadline()  # outer deadline restored, far from expiry
        check_deadline()  # no deadline left


class TestFaultPlan:
    def test_keyed_by_key_and_attempt(self):
        spec = FaultSpec("raise")
        plan = FaultPlan({("job", 1): spec})
        assert plan.get("job", 1) is spec
        assert plan.get("job", 2) is None
        assert plan.get("other", 1) is None

    def test_seeded_is_deterministic(self):
        keys = [f"job-{i}" for i in range(8)]
        one = FaultPlan.seeded(keys, seed=3, kills=2, sleeps=1)
        two = FaultPlan.seeded(list(reversed(keys)), seed=3, kills=2, sleeps=1)
        assert one.faults == two.faults
        actions = sorted(s.action for s in one.faults.values())
        assert actions == ["kill", "kill", "sleep"]

    def test_seeded_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(["a", "b"], kills=3)

    def test_merged_overlays(self):
        base = FaultPlan({("a", 1): FaultSpec("raise")})
        extra = FaultPlan({("b", 1): FaultSpec("kill")})
        merged = base.merged(extra)
        assert merged.get("a", 1) is not None and merged.get("b", 1) is not None


class TestApplyFault:
    def test_raise_transient_and_fatal(self):
        with pytest.raises(TransientFault):
            apply_fault(FaultSpec("raise", transient=True), in_worker=False)
        with pytest.raises(InjectedFault):
            apply_fault(FaultSpec("raise", transient=False), in_worker=False)

    def test_kill_outside_worker_is_a_crash_error(self):
        # Driver-side backends must not SIGKILL the driver itself.
        with pytest.raises(WorkerCrashError):
            apply_fault(FaultSpec("kill"), in_worker=False)

    def test_sleep_respects_cooperative_deadline(self):
        start = time.monotonic()
        with deadline_scope(0.05):
            with pytest.raises(JobTimeoutError):
                apply_fault(FaultSpec("sleep", seconds=30.0), in_worker=False)
        assert time.monotonic() - start < 5.0

    def test_corrupt_garbles_a_store_object(self, tmp_path):
        objects = tmp_path / "objects"
        objects.mkdir()
        victim = objects / "aa.json"
        victim.write_text('{"format": "clsa-cim-store-entry"}')
        apply_fault(
            FaultSpec("corrupt", transient=True),
            in_worker=False,
            store_root=str(tmp_path),
        )
        assert victim.read_text() != '{"format": "clsa-cim-store-entry"}'


class TestJobFutureCancel:
    def test_cancel_after_resolution_reports_failure(self, canonical, arch):
        session = Session(arch)
        future = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True)
        )
        assert future.done()
        assert future.cancel() is False  # already ran: cancellation failed
        assert future.cancelled() is False
        assert future.result().ok


class TestInlineRetry:
    def test_transient_fault_retries_with_provenance(self, canonical, arch):
        events = []
        hooks = SessionHooks(on_job_retry=events.append)
        plan = FaultPlan({("pt", 1): FaultSpec("raise", transient=True)})
        session = Session(arch, hooks=hooks, retry=3, fault_plan=plan)
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="pt")
        ).result()
        assert result.ok
        assert result.attempts == 2
        assert result.backend == "inline"
        assert [(e.key, e.attempt, e.error_kind) for e in events] == [
            ("pt", 1, "TransientFault")
        ]

    def test_fatal_fault_fails_fast(self, canonical, arch):
        plan = FaultPlan({("pt", 1): FaultSpec("raise", transient=False)})
        session = Session(arch, retry=3, fault_plan=plan)
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="pt")
        ).result()
        assert not result.ok
        assert result.error.kind == "InjectedFault"
        assert result.attempts == 1  # deterministic failure: no retry

    def test_retry_budget_exhaustion_surfaces_last_error(self, canonical, arch):
        plan = FaultPlan({
            ("pt", attempt): FaultSpec("raise", transient=True)
            for attempt in (1, 2)
        })
        session = Session(arch, retry=2, fault_plan=plan)
        result = session.submit(
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key="pt")
        ).result()
        assert not result.ok
        assert result.error.kind == "TransientFault"
        assert result.attempts == 2


class TestProcessChaos:
    def test_injected_kill_recovers_every_point(self, spec, canonical, arch):
        events = []
        hooks = SessionHooks(on_job_retry=events.append)
        plan = FaultPlan({("tiny_sequential/wdup+2", 1): FaultSpec("kill")})
        result = chaos_sweep(spec, canonical, arch, plan, hooks=hooks)
        assert not result.failures
        by_label = {p.label: p for p in result.points}
        assert set(by_label) == {"xinf", "wdup+2", "wdup+2+xinf"}
        assert by_label["wdup+2"].attempts == 2
        assert by_label["wdup+2"].backend == "process"
        assert [(e.key, e.error_kind) for e in events] == [
            ("tiny_sequential/wdup+2", "WorkerCrashError")
        ]

    def test_seeded_plan_replays_byte_identically(self, spec, canonical, arch):
        keys = [
            "tiny_sequential/xinf+0",
            "tiny_sequential/wdup+2",
            "tiny_sequential/wdup+xinf+2",
        ]
        runs = []
        for _ in range(2):
            plan = FaultPlan.seeded(keys, seed=11, kills=1)
            result = chaos_sweep(spec, canonical, arch, plan)
            assert not result.failures
            runs.append(sweep_to_csv([result]))
        assert runs[0] == runs[1]
        assert ",2,process,ok," in runs[0]  # the killed point retried once

    def test_poison_job_is_quarantined_not_fatal(self, spec, canonical, arch):
        plan = FaultPlan({
            ("tiny_sequential/wdup+2", 1): FaultSpec("kill"),
            ("tiny_sequential/wdup+2", 2): FaultSpec("kill"),
        })
        result = chaos_sweep(spec, canonical, arch, plan)
        assert {p.label for p in result.points} == {"xinf", "wdup+2+xinf"}
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.label == "wdup+2"
        assert failure.error.kind == "WorkerCrashError"
        assert "quarantined" in failure.error.message
        assert failure.attempts == 2
        assert not result.ok

    def test_watchdog_kills_hung_worker_and_retry_stays_pooled(
        self, spec, canonical, arch
    ):
        # The hang never returns on its own within the test budget: the
        # only way this finishes fast is the watchdog SIGKILL plus pool
        # resurrection, with the retry resubmitted to the process pool.
        plan = FaultPlan(
            {("tiny_sequential/xinf+0", 1): FaultSpec("hang", seconds=120.0)}
        )
        start = time.monotonic()
        result = chaos_sweep(spec, canonical, arch, plan, timeout=1.0)
        assert time.monotonic() - start < 60.0
        assert not result.failures
        by_label = {p.label: p for p in result.points}
        assert by_label["xinf"].attempts == 2
        assert by_label["xinf"].backend == "process"

    def test_timeout_respawn_keeps_store_warmth(
        self, spec, canonical, arch, tmp_path
    ):
        from repro.store.disk import ArtifactStore

        store = ArtifactStore(str(tmp_path / "store"))
        # Warm run primes the persistent store...
        warm = chaos_sweep(spec, canonical, arch, None, store=store, cache=True)
        assert not warm.failures
        assert store.stats().entries > 0
        # ...so after a watchdog kill the respawned workers reopen it
        # disk-warm and the whole grid is served from the store.
        plan = FaultPlan(
            {("tiny_sequential/wdup+2", 1): FaultSpec("hang", seconds=120.0)}
        )
        result = chaos_sweep(
            spec, canonical, arch, plan, store=store, cache=True, timeout=1.0
        )
        assert not result.failures
        by_label = {p.label: p for p in result.points}
        assert by_label["wdup+2"].attempts == 2
        assert sum(p.cache_store_hits for p in result.points) > 0

    def test_close_reaps_pool_workers(self, canonical, arch):
        from repro.exec import JobRuntime

        # A string spec makes the runtime own (and therefore reap) the pool.
        runtime = JobRuntime("process", jobs=2, use_cache=False, arch=arch)
        batch = [
            EvaluateJob(canonical, COARSE_OPTIONS, assume_canonical=True, key=key)
            for key in ("a", "b")
        ]
        results = list(
            runtime.map_jobs(batch, graphs={"tiny_sequential": canonical})
        )
        assert all(r.ok for r in results)
        pids = list(runtime.executor.worker_pids())
        assert pids  # the pool stays warm between batches
        runtime.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                alive.append(pid)
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, f"workers survived close(): {alive}"
