"""Integration tests for the preprocessing pipeline (Fig. 2 flow)."""

import numpy as np

from repro.frontend import QuantizationConfig, is_canonical, preprocess
from repro.ir import Executor, GraphBuilder


def framework_style_model():
    """A small conv net in 'framework' form: same-padding, fused bias, BN."""
    b = GraphBuilder("mini")
    x = b.input((32, 32, 3), name="in")
    x = b.conv_bn_act(x, 8, kernel=3, strides=2, activation="leaky_relu")
    x = b.maxpool(x, 2)
    x = b.conv2d(x, 16, kernel=3, padding="same", use_bias=True)
    x = b.relu(x)
    g = b.graph
    g.initialize_weights(seed=21)
    return g


class TestPreprocess:
    def test_original_graph_untouched(self):
        g = framework_style_model()
        node_count = len(g)
        preprocess(g)
        assert len(g) == node_count
        assert not is_canonical(g)  # original still framework-style

    def test_result_is_canonical(self):
        report = preprocess(framework_style_model())
        assert is_canonical(report.graph)
        assert report.bn_folding.num_folded == 1
        assert len(report.base_layers) == 2

    def test_functional_equivalence_without_quantization(self):
        g = framework_style_model()
        image = np.random.default_rng(0).normal(size=(32, 32, 3))
        reference = Executor(g).run_single(image)
        report = preprocess(g, quantization=None)
        np.testing.assert_allclose(
            Executor(report.graph).run_single(image), reference, rtol=1e-9, atol=1e-9
        )

    def test_quantized_output_close(self):
        """8-bit quantization must track the float model closely."""
        g = framework_style_model()
        image = np.random.default_rng(0).normal(size=(32, 32, 3))
        reference = Executor(g).run_single(image)
        report = preprocess(g, quantization=QuantizationConfig(weight_bits=8))
        quantized_out = Executor(report.graph).run_single(image)
        # loose relative tolerance: quantization error accumulates
        assert np.abs(quantized_out - reference).max() < 0.1 * (np.abs(reference).max() + 1)

    def test_summary_mentions_stages(self):
        report = preprocess(framework_style_model())
        text = report.summary()
        assert "BN folded" in text
        assert "base layers" in text
        assert "quantized" in text

    def test_geometry_only_model(self):
        """Scheduling-only usage: no weights anywhere, no quantization."""
        b = GraphBuilder("geo")
        x = b.input((416, 416, 3), name="in")
        x = b.conv_bn_act(x, 32, kernel=3, strides=2)
        b.conv_bn_act(x, 64, kernel=3, strides=2)
        report = preprocess(b.graph, quantization=None)
        assert is_canonical(report.graph)
        assert len(report.base_layers) == 2
        # Table I geometry: first conv sees the padded 417x417 input
        conv = report.graph[report.base_layers[0]]
        pad_name = conv.inputs[0]
        assert report.graph.shape_of(pad_name).hwc == (417, 417, 3)
