"""Tests for the service job registry/state machine (repro.service.manager)."""

import threading
import time

import pytest

from repro import ScheduleOptions, paper_case_study
from repro.core import SetGranularity
from repro.exec import EvaluateJob, JobResult
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.service import JobManager, JobState, TERMINAL_STATES

COARSE_OPTIONS = ScheduleOptions(granularity=SetGranularity(rows_per_set=4))


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture(scope="module")
def arch(canonical):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + 4)


def wait_terminal(manager, record, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if manager.get(record.id) is None or record.terminal:
            return
        time.sleep(0.02)
    raise TimeoutError(f"job {record.id} still {record.state}")


class _BlockingManager(JobManager):
    """Replaces real execution with an event gate to pin state machines."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.release = threading.Event()
        self.started = threading.Event()

    def _execute(self, record):
        with self._lock:
            if record.state == JobState.CANCELLED:
                return record.result or JobResult(key=record.key)
            record.state = JobState.RUNNING
            record.started_at = time.time()
        self.started.set()
        self.release.wait(30)
        return JobResult(key=record.key, value=None)


class TestLifecycle:
    def test_evaluate_job_runs_to_done(self, canonical, arch):
        manager = JobManager(1)
        try:
            record = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            assert record.state in (JobState.QUEUED, JobState.RUNNING)
            wait_terminal(manager, record)
            assert record.state == JobState.DONE
            assert record.result is not None and record.result.ok
            assert record.result.value.metrics.latency_cycles > 0
            assert record.finished_at is not None
            status = record.status_dict()
            assert status["state"] == "done"
            assert status["ok"] is True
            assert status["backend"] == "inline"
            assert manager.cache_totals["misses"] > 0
        finally:
            manager.shutdown(grace=0)

    def test_failed_job_keeps_service_alive(self, canonical, arch):
        manager = JobManager(1)
        try:
            bad = manager.submit(EvaluateJob("no-such-model"))
            wait_terminal(manager, bad)
            assert bad.state == JobState.FAILED
            assert bad.result.error is not None
            good = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            wait_terminal(manager, good)
            assert good.state == JobState.DONE
        finally:
            manager.shutdown(grace=0)

    def test_unknown_id_and_listing(self, canonical, arch):
        manager = JobManager(1)
        try:
            assert manager.get("nope") is None
            record = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            assert manager.get(record.id) is record
            assert record.id in [r.id for r in manager.list_records()]
            wait_terminal(manager, record)
        finally:
            manager.shutdown(grace=0)


class TestCancel:
    def test_cancel_queued_job_never_runs(self):
        manager = _BlockingManager(1)
        try:
            blocker = manager.submit(EvaluateJob("tiny_sequential"))
            assert manager.started.wait(10)
            queued = manager.submit(EvaluateJob("tiny_sequential"))
            cancelled = manager.cancel(queued.id)
            assert cancelled is queued
            assert queued.state == JobState.CANCELLED
            assert queued.result.error.kind == "Cancelled"
            manager.release.set()
            wait_terminal(manager, blocker)
            assert blocker.state == JobState.DONE
        finally:
            manager.release.set()
            manager.shutdown(grace=0)

    def test_cancel_running_job_discards_late_result(self):
        manager = _BlockingManager(1)
        try:
            record = manager.submit(EvaluateJob("tiny_sequential"))
            assert manager.started.wait(10)
            manager.cancel(record.id)
            assert record.state == JobState.CANCELLED
            assert record.result.error.kind == "Cancelled"
            manager.release.set()
            record.future.raw.exception(timeout=30)
            time.sleep(0.05)  # let the done-callback run
            assert record.state == JobState.CANCELLED
            assert record.result.error is not None
        finally:
            manager.release.set()
            manager.shutdown(grace=0)

    def test_cancel_terminal_job_is_noop(self, canonical, arch):
        manager = JobManager(1)
        try:
            record = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            wait_terminal(manager, record)
            assert manager.cancel(record.id) is record
            assert record.state == JobState.DONE
        finally:
            manager.shutdown(grace=0)


class TestTtlAndStats:
    def test_terminal_records_evicted_after_ttl(self, canonical, arch):
        manager = JobManager(1, result_ttl=0.05)
        try:
            record = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            wait_terminal(manager, record)
            assert manager.get(record.id) is record
            time.sleep(0.1)
            assert manager.get(record.id) is None
        finally:
            manager.shutdown(grace=0)

    def test_stats_shape(self, canonical, arch):
        manager = JobManager(2)
        try:
            record = manager.submit(
                EvaluateJob(canonical, COARSE_OPTIONS, arch=arch,
                            assume_canonical=True)
            )
            wait_terminal(manager, record)
            stats = manager.stats()
            assert stats["jobs"]["done"] == 1
            assert stats["total_submitted"] == 1
            assert stats["executor"] == {"name": "async", "jobs": 2}
            assert set(stats["cache"]) == {"memory_hits", "store_hits", "misses"}
            assert "store" not in stats
        finally:
            manager.shutdown(grace=0)


class TestShutdown:
    def test_shutdown_drains_then_cancels(self):
        manager = _BlockingManager(1)
        blocker = manager.submit(EvaluateJob("tiny_sequential"))
        queued = manager.submit(EvaluateJob("tiny_sequential"))
        assert manager.started.wait(10)
        manager.shutdown(grace=0.1)
        manager.release.set()
        assert blocker.terminal and queued.terminal
        assert queued.state == JobState.CANCELLED
        assert blocker.state in TERMINAL_STATES

    def test_shutdown_idempotent_and_rejects_submissions(self):
        manager = JobManager(1)
        manager.shutdown()
        manager.shutdown()  # no-op
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(EvaluateJob("tiny_sequential"))

    def test_shutdown_waits_for_inflight_within_grace(self):
        manager = _BlockingManager(1)
        record = manager.submit(EvaluateJob("tiny_sequential"))
        assert manager.started.wait(10)
        threading.Timer(0.1, manager.release.set).start()
        manager.shutdown(grace=10.0)
        assert record.state == JobState.DONE
