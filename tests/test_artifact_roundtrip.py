"""Artifact round-trip tests: CompiledModel.save() → load().

Satellite acceptance: identical makespan, placement, and ``evaluate()``
metrics for at least two models × two configurations.
"""

import json

import pytest

from repro import CompiledModel, ScheduleOptions, Session, paper_case_study
from repro.frontend import preprocess
from repro.ir import serialize
from repro.mapping import minimum_pe_requirement
from repro.models import build

MODELS = ("tiny_sequential", "tiny_csp")
CONFIGS = {
    "wdup+xinf": ScheduleOptions(mapping="wdup", scheduling="clsa-cim"),
    "layer-by-layer": ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
}


@pytest.fixture(scope="module")
def compiled_grid():
    grid = {}
    for model in MODELS:
        canonical = preprocess(build(model), quantization=None).graph
        min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
        session = Session(paper_case_study(min_pes + 4))
        for config_name, options in CONFIGS.items():
            grid[(model, config_name)] = session.compile(
                canonical, options, assume_canonical=True
            )
    return grid


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
class TestRoundTrip:
    def test_save_load_identical(self, compiled_grid, tmp_path, model, config_name):
        compiled = compiled_grid[(model, config_name)]
        path = tmp_path / f"{model}-{config_name}.json"
        compiled.save(str(path))
        loaded = CompiledModel.load(str(path))

        assert loaded.schedule.makespan == compiled.schedule.makespan
        assert loaded.schedule.policy == compiled.schedule.policy
        assert loaded.schedule.tasks == compiled.schedule.tasks
        assert loaded.placement.pe_ranges == compiled.placement.pe_ranges
        assert loaded.placement.tilings == compiled.placement.tilings
        assert loaded.sets == compiled.sets
        assert loaded.options == compiled.options
        assert loaded.arch == compiled.arch
        assert loaded.evaluate() == compiled.evaluate()

    def test_loaded_graphs_match(self, compiled_grid, tmp_path, model, config_name):
        compiled = compiled_grid[(model, config_name)]
        path = tmp_path / "artifact.json"
        compiled.save(str(path))
        loaded = CompiledModel.load(str(path))
        assert loaded.canonical.topological_order() == (
            compiled.canonical.topological_order()
        )
        assert loaded.mapped.topological_order() == compiled.mapped.topological_order()
        if compiled.options.mapping == "none":
            # no rewrite: the mapped graph is stored as a reference
            assert loaded.mapped is loaded.canonical

    def test_gantt_and_origins_survive(self, compiled_grid, tmp_path, model, config_name):
        compiled = compiled_grid[(model, config_name)]
        path = tmp_path / "artifact.json"
        compiled.save(str(path))
        loaded = CompiledModel.load(str(path))
        assert loaded.gantt() == compiled.gantt()
        for layer in loaded.schedule.layers():
            assert loaded.origin_of_layer(layer) == compiled.origin_of_layer(layer)


class TestArtifactDetails:
    def _one(self, compiled_grid):
        return compiled_grid[("tiny_sequential", "wdup+xinf")]

    def test_duplication_and_rewrite_round_trip(self, compiled_grid, tmp_path):
        compiled = self._one(compiled_grid)
        assert compiled.duplication is not None  # wdup actually duplicated
        path = tmp_path / "artifact.json"
        compiled.save(str(path))
        loaded = CompiledModel.load(str(path))
        assert loaded.duplication.d == compiled.duplication.d
        assert loaded.duplication.method == compiled.duplication.method
        assert loaded.duplication.objective == compiled.duplication.objective
        assert loaded.duplication.pes_used == compiled.duplication.pes_used
        assert loaded.rewrite.origin_of == compiled.rewrite.origin_of
        assert set(loaded.rewrite.duplicated) == set(compiled.rewrite.duplicated)

    def test_dependencies_opt_in(self, compiled_grid, tmp_path):
        compiled = self._one(compiled_grid)
        path = tmp_path / "artifact.json"
        compiled.save(str(path))
        assert CompiledModel.load(str(path)).dependencies is None

        compiled.save(str(path), include_dependencies=True)
        loaded = CompiledModel.load(str(path))
        assert loaded.dependencies is not None
        assert loaded.dependencies.deps == compiled.dependencies.deps

    def test_to_json_is_the_artifact_document(self, compiled_grid):
        compiled = self._one(compiled_grid)
        record = json.loads(compiled.to_json())
        assert record["format"] == serialize.ARTIFACT_FORMAT
        assert record["format_version"] == serialize.ARTIFACT_FORMAT_VERSION
        again = serialize.compiled_from_dict(record)
        assert again.schedule.makespan == compiled.schedule.makespan

    def test_wrong_format_rejected(self, compiled_grid):
        compiled = self._one(compiled_grid)
        record = serialize.compiled_to_dict(compiled)
        record["format"] = "something-else"
        with pytest.raises(ValueError, match="artifact"):
            serialize.compiled_from_dict(record)

    def test_wrong_version_rejected(self, compiled_grid):
        compiled = self._one(compiled_grid)
        record = serialize.compiled_to_dict(compiled)
        record["format_version"] = serialize.ARTIFACT_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            serialize.compiled_from_dict(record)

    def test_plugin_artifact_loads_without_plugin(self, tmp_path):
        """An artifact compiled with a registered plugin scheduler must
        load (and evaluate) in a process where the plugin is absent."""
        from repro.core.passes import register_scheduler, unregister_scheduler
        from repro.core.schedule import Schedule, SetTask

        def sequential(ctx):
            cursor, tasks = 0, []
            for layer in ctx.sets:
                for index, rect in enumerate(ctx.sets[layer]):
                    tasks.append(SetTask(layer, index, rect, cursor, cursor + rect.area))
                    cursor += rect.area
            return Schedule(policy="plugin-sequential", tasks=tasks)

        canonical = preprocess(build("tiny_sequential"), quantization=None).graph
        min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
        path = tmp_path / "plugin.json"
        register_scheduler("plugin-sequential", sequential, needs_dependencies=False)
        try:
            compiled = Session(paper_case_study(min_pes + 4)).compile(
                canonical,
                ScheduleOptions(mapping="none", scheduling="plugin-sequential"),
                assume_canonical=True,
            )
            compiled.save(str(path))
        finally:
            unregister_scheduler("plugin-sequential")

        # Plugin is gone: the name no longer validates...
        with pytest.raises(ValueError):
            ScheduleOptions(scheduling="plugin-sequential")
        # ...but the artifact still loads, evaluates, and re-serializes.
        loaded = CompiledModel.load(str(path))
        assert loaded.options.scheduling == "plugin-sequential"
        assert loaded.schedule.makespan == compiled.schedule.makespan
        assert loaded.evaluate() == compiled.evaluate()
        assert json.loads(loaded.to_json())["options"]["scheduling"] == (
            "plugin-sequential"
        )

    def test_timings_and_diagnostics_preserved(self, compiled_grid, tmp_path):
        compiled = self._one(compiled_grid)
        path = tmp_path / "artifact.json"
        compiled.save(str(path))
        loaded = CompiledModel.load(str(path))
        assert loaded.timings == compiled.timings
        assert loaded.diagnostics == compiled.diagnostics
