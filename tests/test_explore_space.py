"""Tests for the declarative search space (repro.explore.space)."""

import random

import pytest

from repro.explore import (
    Categorical,
    Integer,
    LogInteger,
    SearchSpace,
    default_space,
)


class TestDimensions:
    def test_categorical(self):
        dim = Categorical("mapping", ["none", "wdup"])
        assert dim.choices == ("none", "wdup")
        assert dim.contains("wdup")
        assert not dim.contains("best")

    def test_integer_step(self):
        dim = Integer("x", 2, 10, step=4)
        assert dim.choices == (2, 6, 10)

    def test_log_integer_grid(self):
        assert LogInteger("x", 1, 8).choices == (1, 2, 4, 8)
        assert LogInteger("x", 4, 64).choices == (4, 8, 16, 32, 64)
        assert LogInteger("x", 3, 100, base=3).choices == (3, 9, 27, 81)

    def test_sample_on_grid(self):
        rng = random.Random(0)
        dim = LogInteger("x", 1, 16)
        assert all(dim.sample(rng) in dim.choices for _ in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            Categorical("x", [])
        with pytest.raises(ValueError):
            Categorical("x", [1, 1])
        with pytest.raises(ValueError):
            Integer("x", 5, 1)
        with pytest.raises(ValueError):
            LogInteger("x", 0, 8)
        with pytest.raises(ValueError):
            LogInteger("x", 1, 8, base=1)
        with pytest.raises(ValueError):
            Categorical("", [1])


def toy_space(**kwargs):
    return SearchSpace(
        [Categorical("a", ["p", "q"]), LogInteger("b", 1, 4)], **kwargs
    )


class TestSearchSpace:
    def test_size_and_grid(self):
        space = toy_space()
        assert space.size() == 6
        points = list(space.grid())
        assert len(points) == 6
        assert all(space.contains(p) for p in points)
        # odometer order: first dimension varies slowest
        assert points[0] == {"a": "p", "b": 1}
        assert points[-1] == {"a": "q", "b": 4}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([Categorical("a", [1]), Categorical("a", [2])])

    def test_contains_rejects_off_grid_and_missing(self):
        space = toy_space()
        assert not space.contains({"a": "p", "b": 3})
        assert not space.contains({"a": "p"})
        assert not space.contains({"a": "p", "b": 1, "c": 0})

    def test_constraints(self):
        space = toy_space(
            constraints=[("no-q4", lambda p: not (p["a"] == "q" and p["b"] == 4))]
        )
        assert space.is_valid({"a": "q", "b": 2})
        assert not space.is_valid({"a": "q", "b": 4})
        assert space.violated_constraints({"a": "q", "b": 4}) == ["no-q4"]
        assert len(list(space.grid())) == 5
        rng = random.Random(3)
        for _ in range(30):
            assert space.is_valid(space.sample(rng))

    def test_unsatisfiable_constraint_raises(self):
        space = toy_space(constraints=[("never", lambda p: False)])
        with pytest.raises(RuntimeError):
            space.sample(random.Random(0), max_attempts=20)

    def test_sample_deterministic_per_seed(self):
        space = toy_space()
        a = [space.sample(random.Random(5)) for _ in range(5)]
        b = [space.sample(random.Random(5)) for _ in range(5)]
        assert a == b

    def test_mutate_changes_point_and_stays_valid(self):
        space = toy_space()
        rng = random.Random(1)
        point = {"a": "p", "b": 1}
        for _ in range(20):
            mutant = space.mutate(point, rng)
            assert mutant != point
            assert space.is_valid(mutant)

    def test_crossover_mixes_parents(self):
        space = toy_space()
        rng = random.Random(2)
        a, b = {"a": "p", "b": 1}, {"a": "q", "b": 4}
        child = space.crossover(a, b, rng)
        assert child["a"] in ("p", "q")
        assert child["b"] in (1, 4)
        assert space.is_valid(child)

    def test_describe_is_json_safe(self):
        import json

        json.dumps(toy_space().describe())


class TestDefaultSpace:
    def test_dimensions_cover_the_knobs(self):
        space = default_space()
        names = set(space.names)
        assert {
            "mapping", "scheduling", "rows_per_set", "order_mode",
            "duplication_axis", "d_max_cap", "extra_pes", "pes_per_tile",
        } <= names

    def test_no_arch_dims_when_disabled(self):
        names = set(default_space(include_arch=False).names)
        assert "extra_pes" not in names
        assert "pes_per_tile" not in names

    def test_crossbar_dim_only_when_varied(self):
        assert "crossbar_dim" not in default_space().names
        assert "crossbar_dim" in default_space(crossbar_dims=(128, 256)).names

    def test_canonicalize_collapses_dead_knobs(self):
        space = default_space()
        point = {
            "mapping": "none", "scheduling": "layer-by-layer",
            "rows_per_set": 8, "order_mode": "static",
            "duplication_axis": "height", "d_max_cap": 4,
            "extra_pes": 8, "pes_per_tile": 4,
        }
        canonical = space.canonicalize(point)
        assert canonical["d_max_cap"] == 0
        assert canonical["duplication_axis"] == "width"
        assert canonical["rows_per_set"] == 1
        assert canonical["order_mode"] == "dynamic"
        assert canonical["pes_per_tile"] == 1
        # live knobs survive
        assert canonical["extra_pes"] == 8

    def test_canonicalize_keeps_live_knobs(self):
        space = default_space()
        point = {
            "mapping": "wdup", "scheduling": "clsa-cim",
            "rows_per_set": 8, "order_mode": "static",
            "duplication_axis": "height", "d_max_cap": 4,
            "extra_pes": 8, "pes_per_tile": 4,
        }
        assert space.canonicalize(point) == point

    def test_canonicalize_idempotent(self):
        space = default_space()
        rng = random.Random(9)
        for _ in range(40):
            once = space.canonicalize(space.sample(rng))
            assert space.canonicalize(once) == once

    def test_max_total_pes_recorded(self):
        assert default_space().max_total_pes is None
        assert default_space(max_total_pes=200).max_total_pes == 200
