"""Unit tests for the numpy reference executor."""

import numpy as np
import pytest

from repro.ir import (
    Executor,
    GraphBuilder,
    conv2d_reference,
    im2col_patches,
    run_graph,
)
from repro.ir.executor import ExecutionError


def rng():
    return np.random.default_rng(1234)


class TestIm2col:
    def test_patch_matrix_shape(self):
        ifm = rng().normal(size=(6, 6, 3))
        patches = im2col_patches(ifm, (3, 3), (1, 1))
        assert patches.shape == (16, 27)

    def test_patch_contents(self):
        ifm = np.arange(16, dtype=float).reshape(4, 4, 1)
        patches = im2col_patches(ifm, (2, 2), (2, 2))
        assert patches.shape == (4, 4)
        np.testing.assert_array_equal(patches[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(patches[3], [10, 11, 14, 15])

    def test_kernel_too_large(self):
        with pytest.raises(ExecutionError):
            im2col_patches(np.zeros((2, 2, 1)), (3, 3), (1, 1))

    def test_conv_equals_direct_convolution(self):
        """im2col GEMM must equal a naive direct convolution."""
        r = rng()
        ifm = r.normal(size=(7, 9, 3))
        weights = r.normal(size=(3, 3, 3, 5))
        out = conv2d_reference(ifm, weights, (2, 2), "valid")
        # naive loop reference
        oh = (7 - 3) // 2 + 1
        ow = (9 - 3) // 2 + 1
        expected = np.zeros((oh, ow, 5))
        for i in range(oh):
            for j in range(ow):
                window = ifm[i * 2 : i * 2 + 3, j * 2 : j * 2 + 3, :]
                for k in range(5):
                    expected[i, j, k] = np.sum(window * weights[:, :, :, k])
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_conv_same_padding(self):
        r = rng()
        ifm = r.normal(size=(8, 8, 2))
        weights = r.normal(size=(3, 3, 2, 4))
        out = conv2d_reference(ifm, weights, (1, 1), "same")
        assert out.shape == (8, 8, 4)
        # interior positions must match valid conv shifted by the pad
        valid = conv2d_reference(ifm, weights, (1, 1), "valid")
        np.testing.assert_allclose(out[1:-1, 1:-1, :], valid, atol=1e-12)

    def test_conv_bias(self):
        r = rng()
        ifm = r.normal(size=(4, 4, 1))
        weights = r.normal(size=(1, 1, 1, 3))
        bias = np.array([1.0, -2.0, 0.5])
        with_bias = conv2d_reference(ifm, weights, (1, 1), "valid", bias)
        without = conv2d_reference(ifm, weights, (1, 1), "valid")
        np.testing.assert_allclose(with_bias - without, np.broadcast_to(bias, (4, 4, 3)))

    def test_channel_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            conv2d_reference(np.zeros((4, 4, 2)), np.zeros((3, 3, 3, 4)), (1, 1), "valid")


class TestExecutor:
    def test_simple_pipeline(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c = b.conv2d(x, 4, kernel=3, padding="same", use_bias=True)
        a = b.relu(c)
        b.maxpool(a, 2)
        g = b.graph
        g.initialize_weights(seed=7)
        out = Executor(g).run_single(rng().normal(size=(8, 8, 3)))
        assert out.shape == (4, 4, 4)
        assert np.all(out >= 0.0)  # relu then max-pool keeps non-negatives

    def test_input_as_dict_and_array_agree(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 1), name="image")
        b.conv2d(x, 2, kernel=1, use_bias=False)
        g = b.graph
        g.initialize_weights(seed=3)
        image = rng().normal(size=(4, 4, 1))
        out1 = Executor(g).run_single(image)
        out2 = Executor(g).run({"image": image})
        np.testing.assert_array_equal(out1, list(out2.values())[0])

    def test_missing_input_raises(self):
        b = GraphBuilder("net")
        b.input((4, 4, 1), name="image")
        with pytest.raises(ExecutionError, match="missing"):
            Executor(b.graph).run({})

    def test_wrong_input_shape_raises(self):
        b = GraphBuilder("net")
        b.input((4, 4, 1), name="image")
        with pytest.raises(ExecutionError, match="shape"):
            Executor(b.graph).run(np.zeros((5, 5, 1)))

    def test_missing_weights_raises(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 1))
        b.conv2d(x, 2)
        with pytest.raises(ExecutionError, match="weights"):
            Executor(b.graph).run(np.zeros((4, 4, 1)))

    def test_branching_and_concat(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 2), name="in")
        left = b.channel_slice(x, 0, 1)
        right = b.channel_slice(x, 1, 1)
        cat = b.concat([left, right])
        b.add([cat, x])
        g = b.graph
        image = rng().normal(size=(4, 4, 2))
        out = Executor(g).run_single(image)
        # slice+concat reconstructs the input, add doubles it
        np.testing.assert_allclose(out, 2.0 * image)

    def test_pad_and_valid_conv_equals_same_conv(self):
        """Explicit Pad + valid conv == same-padded conv (Sec. III-A)."""
        r = rng()
        image = r.normal(size=(9, 9, 2))
        weights = r.normal(size=(3, 3, 2, 4))

        b1 = GraphBuilder("same")
        x = b1.input((9, 9, 2), name="in")
        b1.conv2d(x, 4, kernel=3, strides=2, padding="same", use_bias=False)
        g1 = b1.graph
        g1["conv2d"].weights = weights

        from repro.ir import same_padding

        pt, pb = same_padding(9, 3, 2)
        pl, pr = same_padding(9, 3, 2)
        b2 = GraphBuilder("padded")
        x = b2.input((9, 9, 2), name="in")
        p = b2.pad(x, (pt, pb, pl, pr))
        c = b2.conv2d(p, 4, kernel=3, strides=2, padding="valid", use_bias=False)
        g2 = b2.graph
        g2["conv2d"].weights = weights

        np.testing.assert_allclose(
            Executor(g1).run_single(image), Executor(g2).run_single(image), atol=1e-12
        )

    def test_maxpool_same_stride1(self):
        b = GraphBuilder("net")
        x = b.input((3, 3, 1), name="in")
        b.maxpool(x, 2, strides=1, padding="same")
        image = np.arange(9, dtype=float).reshape(3, 3, 1)
        out = Executor(b.graph).run_single(image)
        assert out.shape == (3, 3, 1)
        # bottom-right output is the max over the padded window = 8
        assert out[2, 2, 0] == 8.0

    def test_upsample_nearest(self):
        b = GraphBuilder("net")
        x = b.input((2, 2, 1), name="in")
        b.upsample(x, 2)
        image = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(2, 2, 1)
        out = Executor(b.graph).run_single(image)
        np.testing.assert_array_equal(out[:, :, 0], [[1, 1, 2, 2], [1, 1, 2, 2],
                                                     [3, 3, 4, 4], [3, 3, 4, 4]])

    def test_global_avg_and_dense(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 8), name="in")
        gap = b.global_avgpool(x)
        flat = b.flatten(gap)
        b.dense(flat, 10, use_bias=True)
        g = b.graph
        g.initialize_weights(seed=11)
        out = Executor(g).run_single(rng().normal(size=(4, 4, 8)))
        assert out.shape == (1, 1, 10)

    def test_batchnorm_numeric(self):
        b = GraphBuilder("net")
        x = b.input((2, 2, 3), name="in")
        b.batch_norm(x)
        g = b.graph
        bn = g["batch_normalization"]
        bn.gamma = np.array([1.0, 2.0, 0.5])
        bn.beta = np.array([0.0, 1.0, -1.0])
        bn.mean = np.array([0.5, 0.0, 0.0])
        bn.variance = np.array([1.0, 4.0, 0.25])
        bn.epsilon = 0.0
        image = np.ones((2, 2, 3))
        out = Executor(g).run_single(image)
        expected = (1.0 - bn.mean) / np.sqrt(bn.variance) * bn.gamma + bn.beta
        np.testing.assert_allclose(out[0, 0], expected)

    def test_run_graph_helper(self):
        b = GraphBuilder("net")
        x = b.input((2, 2, 1), name="in")
        b.identity(x, name="out")
        image = rng().normal(size=(2, 2, 1))
        outputs = run_graph(b.graph, image)
        np.testing.assert_array_equal(outputs["out"], image)

    def test_intermediate_outputs_requestable(self):
        b = GraphBuilder("net")
        x = b.input((4, 4, 1), name="in")
        c = b.conv2d(x, 2, kernel=1, use_bias=False)
        b.relu(c)
        g = b.graph
        g.initialize_weights(seed=5)
        values = Executor(g).run(np.ones((4, 4, 1)), node_names=["conv2d", "relu"])
        assert set(values) == {"conv2d", "relu"}
        np.testing.assert_allclose(values["relu"], np.maximum(values["conv2d"], 0))
