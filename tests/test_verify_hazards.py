"""Mutation corpus for the vectorized schedule hazard detector.

Compiles both zoo case-study models under both Stage IV engines,
asserts the verifier reports **zero diagnostics** on clean compiles
(no false positives) and on save→load round trips, then injects one
seeded mutation per hazard class and asserts the matching named rule
fires:

* ``schedule.raw-race``       — a consumer starts before its producer ends
* ``schedule.exclusivity``    — two sets of one layer overlap in time
* ``schedule.coverage``       — a set is missing / scheduled twice
* ``schedule.duration``       — duration ≠ set area, or rect mismatch
* ``schedule.pe-double-book`` — overlapping layers share PEs concurrently
* ``schedule.buffer-capacity``— peak tile occupancy exceeds the buffer
"""

import dataclasses
import functools

import numpy as np
import pytest

from repro.arch import paper_case_study
from repro.core.kernels import set_graph_arrays
from repro.core.schedule import Schedule
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import build
from repro.session import Session
from repro.verify import (
    Severity,
    assert_arrays_schedule,
    assert_batch_arrays_schedule,
    assert_schedule,
    verify_artifact,
    verify_compiled,
)

ZOO = ("tinyyolov3", "tinyyolov4")
ENGINES = ("csr", "python")


def roomy_arch(num_pes):
    """Paper architecture with 1 MiB tile buffers.

    The paper's 64 KB buffers overflow on the zoo models (an expected
    advisory finding); the mutation corpus needs a baseline with zero
    diagnostics so every post-mutation diagnostic is attributable.
    """
    arch = paper_case_study(num_pes)
    tile = dataclasses.replace(
        arch.tile, input_buffer_bytes=1 << 20, output_buffer_bytes=1 << 20
    )
    return dataclasses.replace(arch, tile=tile)


@functools.lru_cache(maxsize=None)
def compile_zoo(model: str, engine: str):
    canonical = preprocess(build(model), quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    session = Session(roomy_arch(min_pes + 16))
    from repro.core.pipeline import ScheduleOptions

    return session.compile(
        canonical, ScheduleOptions(engine=engine), assume_canonical=True
    )


@pytest.fixture(scope="module")
def compiled():
    """The mutation target: tinyyolov3 on the csr engine."""
    return compile_zoo("tinyyolov3", "csr")


# ---------------------------------------------------------------------------
# mutation helpers
# ---------------------------------------------------------------------------


def with_columns(compiled, cols):
    """A CompiledModel whose schedule is ``cols`` (natively columnar)."""
    schedule = Schedule(compiled.schedule.policy, columns=cols)
    return dataclasses.replace(compiled, schedule=schedule)


def row_of(cols, layer: str, set_index: int) -> int:
    names = [cols.layers[lid] for lid in cols.layer_id.tolist()]
    for i, (name, si) in enumerate(zip(names, cols.set_index.tolist())):
        if name == layer and si == set_index:
            return i
    raise AssertionError(f"no row for ({layer}, {set_index})")


def first_dependent_edge(arrays):
    """A (producer gid, consumer gid) data-dependency edge."""
    for gid in range(arrays.num_sets):
        lo, hi = int(arrays.indptr[gid]), int(arrays.indptr[gid + 1])
        if hi > lo:
            return int(arrays.indices[lo]), gid
    raise AssertionError("set graph has no dependency edges")


def shifted(cols, row: int, new_start: int):
    """Columns with one row moved to ``new_start`` (duration kept)."""
    start = cols.start.copy()
    end = cols.end.copy()
    duration = int(end[row] - start[row])
    start[row] = new_start
    end[row] = new_start + duration
    return dataclasses.replace(cols, start=start, end=end)


# ---------------------------------------------------------------------------
# zero false positives on clean compiles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("model", ZOO)
@pytest.mark.parametrize("engine", ENGINES)
def test_clean_zoo_compile_has_zero_diagnostics(model, engine):
    report = verify_compiled(compile_zoo(model, engine))
    assert report.clean, report.format()
    assert len(report) == 0
    for rule in (
        "schedule.raw-race",
        "schedule.exclusivity",
        "schedule.coverage",
        "schedule.duration",
        "schedule.pe-double-book",
        "schedule.buffer-capacity",
    ):
        assert rule in report.rules_run


@pytest.mark.parametrize("model", ZOO)
def test_roundtripped_artifact_verifies_clean(model, tmp_path):
    from repro.ir import save_compiled

    compiled = compile_zoo(model, "csr")
    path = tmp_path / f"{model}.json"
    save_compiled(compiled, path)
    report = verify_artifact(path)
    assert report.clean, report.format()


def test_paper_buffers_warn_but_do_not_fail():
    canonical = preprocess(build("tinyyolov3"), quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    compiled = Session(paper_case_study(min_pes + 16)).compile(
        canonical, assume_canonical=True
    )
    report = verify_compiled(compiled)
    assert report.ok  # warnings only
    assert not report.clean
    assert report.fired_rules() == ("schedule.buffer-capacity",)
    diag = report.by_rule("schedule.buffer-capacity")[0]
    assert diag.severity is Severity.WARNING
    assert "exceeds capacity" in diag.message
    assert "input_buffer_bytes" in (diag.hint or "")


# ---------------------------------------------------------------------------
# one mutation per hazard class
# ---------------------------------------------------------------------------


class TestMutations:
    def test_raw_race(self, compiled):
        arrays = set_graph_arrays(compiled.dependencies)
        producer, consumer = first_dependent_edge(arrays)
        cols = compiled.schedule.columns()
        row = row_of(
            cols,
            arrays.layers[int(arrays.layer_of[consumer])],
            int(arrays.set_index[consumer]),
        )
        mutated = with_columns(compiled, shifted(cols, row, 0))
        report = verify_compiled(mutated, rules=("schedule.raw-race",))
        assert report.fired_rules() == ("schedule.raw-race",)
        diags = report.by_rule("schedule.raw-race")
        assert any("data dependency violated" in d.message for d in diags)
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_exclusivity(self, compiled):
        cols = compiled.schedule.columns()
        # two sets of the same layer
        lid = int(np.bincount(cols.layer_id).argmax())
        rows = np.flatnonzero(cols.layer_id == lid)[:2]
        assert len(rows) == 2
        mutated = with_columns(
            compiled, shifted(cols, int(rows[1]), int(cols.start[rows[0]]))
        )
        report = verify_compiled(mutated, rules=("schedule.exclusivity",))
        [diag] = report.by_rule("schedule.exclusivity")
        assert "resource violation" in diag.message
        assert diag.location.layer == cols.layers[lid]

    def test_coverage_missing_set(self, compiled):
        cols = compiled.schedule.columns()
        keep = {
            f: getattr(cols, f)[1:]
            for f in ("layer_id", "set_index", "start", "end", "image",
                      "r0", "c0", "r1", "c1")
        }
        mutated = with_columns(compiled, dataclasses.replace(cols, **keep))
        report = verify_compiled(mutated, rules=("schedule.coverage",))
        assert any(
            "missing from schedule" in d.message
            for d in report.by_rule("schedule.coverage")
        )

    def test_coverage_duplicate_set(self, compiled):
        cols = compiled.schedule.columns()
        doubled = {
            f: np.concatenate([getattr(cols, f), getattr(cols, f)[:1]])
            for f in ("layer_id", "set_index", "start", "end", "image",
                      "r0", "c0", "r1", "c1")
        }
        mutated = with_columns(compiled, dataclasses.replace(cols, **doubled))
        report = verify_compiled(mutated, rules=("schedule.coverage",))
        assert any(
            "scheduled more than once" in d.message
            for d in report.by_rule("schedule.coverage")
        )

    def test_duration_mismatch(self, compiled):
        cols = compiled.schedule.columns()
        end = cols.end.copy()
        end[0] += 5
        mutated = with_columns(compiled, dataclasses.replace(cols, end=end))
        report = verify_compiled(mutated, rules=("schedule.duration",))
        assert any(
            "does not equal the set area" in d.message
            for d in report.by_rule("schedule.duration")
        )

    def test_rect_mismatch(self, compiled):
        cols = compiled.schedule.columns()
        r1 = cols.r1.copy()
        r1[0] += 1
        start = cols.start.copy()
        end = cols.end.copy()
        end[0] += int(r1[0] - cols.r1[0]) * int(cols.c1[0] - cols.c0[0])
        mutated = with_columns(
            compiled, dataclasses.replace(cols, r1=r1, start=start, end=end)
        )
        report = verify_compiled(mutated, rules=("schedule.duration",))
        assert any(
            "does not match the Stage I set rectangle" in d.message
            for d in report.by_rule("schedule.duration")
        )

    def test_pe_double_booking(self, compiled):
        # Cross-layer schedules overlap consecutive layers in time, so
        # colliding their PE ranges manufactures a double-booking.
        stats = compiled.schedule.per_layer_stats()
        layers = [l for l in compiled.placement.pe_ranges if l in stats]
        pair = None
        for a in layers:
            for b in layers:
                if a < b and stats[a][0] < stats[b][1] and stats[b][0] < stats[a][1]:
                    pair = (a, b)
                    break
            if pair:
                break
        assert pair is not None, "no temporally overlapping layer pair"
        a, b = pair
        ranges = dict(compiled.placement.pe_ranges)
        ranges[b] = ranges[a]
        placement = dataclasses.replace(compiled.placement, pe_ranges=ranges)
        mutated = dataclasses.replace(compiled, placement=placement)
        report = verify_compiled(mutated, rules=("schedule.pe-double-book",))
        assert report.fired_rules() == ("schedule.pe-double-book",)
        diag = report.by_rule("schedule.pe-double-book")[0]
        assert "PE double-booking" in diag.message
        assert diag.location.pe is not None

    def test_mutation_summary_caps_detail(self, compiled):
        """Mass corruption collapses into a summarizing diagnostic."""
        cols = compiled.schedule.columns()
        start = np.zeros_like(cols.start)
        end = start + (cols.end - cols.start)
        mutated = with_columns(
            compiled, dataclasses.replace(cols, start=start, end=end)
        )
        report = verify_compiled(mutated, rules=("schedule.raw-race",))
        diags = report.by_rule("schedule.raw-race")
        assert diags
        assert len(diags) <= 9  # MAX_DETAIL + 1 summary line
        assert any("more" in d.message for d in diags)


# ---------------------------------------------------------------------------
# raising wrappers (legacy entry points route through the same detector)
# ---------------------------------------------------------------------------


class TestRaisingWrappers:
    def test_assert_schedule_clean(self, compiled):
        assert_schedule(compiled.schedule, compiled.dependencies)

    def test_assert_schedule_raises_on_race(self, compiled):
        arrays = set_graph_arrays(compiled.dependencies)
        _, consumer = first_dependent_edge(arrays)
        cols = compiled.schedule.columns()
        row = row_of(
            cols,
            arrays.layers[int(arrays.layer_of[consumer])],
            int(arrays.set_index[consumer]),
        )
        bad = Schedule(compiled.schedule.policy, columns=shifted(cols, row, 0))
        with pytest.raises(AssertionError, match="data dependency violated"):
            assert_schedule(bad, compiled.dependencies)

    def test_assert_arrays_schedule(self, compiled):
        arrays = set_graph_arrays(compiled.dependencies)
        cols = compiled.schedule.columns()
        # scatter row intervals onto gid order
        start = np.empty(arrays.num_sets, dtype=np.int64)
        end = np.empty(arrays.num_sets, dtype=np.int64)
        for i in range(len(cols)):
            layer = cols.layers[int(cols.layer_id[i])]
            lid = arrays.layers.index(layer)
            gid = int(arrays.offsets[lid]) + int(cols.set_index[i])
            start[gid] = cols.start[i]
            end[gid] = cols.end[i]
        assert_arrays_schedule(arrays, start, end)
        bad = start.copy()
        _, consumer = first_dependent_edge(arrays)
        bad[consumer] = 0
        with pytest.raises(AssertionError, match="data dependency violated"):
            assert_arrays_schedule(
                arrays, bad, bad + (end - start)
            )

    def test_batch_schedule_validates_by_default(self, compiled):
        from repro.core.kernels import csr_batch_schedule

        arrays = set_graph_arrays(compiled.dependencies)
        schedule, spans = csr_batch_schedule(arrays, 2)  # validate=True default
        assert len(spans) == 2

    def test_assert_batch_arrays_schedule_raises(self, compiled):
        from repro.core.kernels import csr_batch_schedule

        arrays = set_graph_arrays(compiled.dependencies)
        schedule, _ = csr_batch_schedule(arrays, 2)
        cols = schedule.columns()
        n = arrays.num_sets
        start = np.empty(2 * n, dtype=np.int64)
        end = np.empty(2 * n, dtype=np.int64)
        for i in range(len(cols)):
            layer = cols.layers[int(cols.layer_id[i])]
            lid = arrays.layers.index(layer)
            gid = int(arrays.offsets[lid]) + int(cols.set_index[i])
            slot = int(cols.image[i]) * n + gid
            start[slot] = cols.start[i]
            end[slot] = cols.end[i]
        assert_batch_arrays_schedule(arrays, 2, start, end)
        _, consumer = first_dependent_edge(arrays)
        duration = end[n + consumer] - start[n + consumer]
        start[n + consumer] = 0
        end[n + consumer] = duration
        with pytest.raises(
            AssertionError, match="batch data dependency violated for image 1"
        ):
            assert_batch_arrays_schedule(arrays, 2, start, end)
