"""Tests for critical-path extraction and buffer occupancy analysis."""

import pytest

from repro.analysis import (
    critical_layer_summary,
    critical_path,
    format_critical_path,
)
from repro.arch import ArchitectureConfig, CrossbarSpec, TileSpec, paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.ir import GraphBuilder
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_sequential
from repro.sim import analyze_buffers


def compiled_model(mapping="none", extra=4):
    g = preprocess(tiny_sequential(), quantization=None).graph
    min_pes = minimum_pe_requirement(g, CrossbarSpec())
    arch = paper_case_study(min_pes + extra)
    return compile_model(
        g, arch, ScheduleOptions(mapping=mapping, scheduling="clsa-cim"),
        assume_canonical=True,
    )


def chain_compiled():
    b = GraphBuilder("chain")
    x = b.input((8, 8, 3), name="in")
    for i in range(3):
        x = b.conv2d(x, 4, kernel=1, padding="valid", use_bias=False, name=f"c{i}")
    g = b.graph
    return compile_model(
        g, paper_case_study(4), ScheduleOptions(mapping="none", scheduling="clsa-cim"),
        assume_canonical=True,
    )


class TestCriticalPath:
    def test_path_ends_at_makespan(self):
        compiled = compiled_model()
        steps = critical_path(compiled)
        assert steps[-1].end == compiled.latency_cycles

    def test_path_is_contiguous(self):
        """Consecutive steps touch: no unexplained idle gaps."""
        compiled = compiled_model()
        steps = critical_path(compiled)
        for earlier, later in zip(steps, steps[1:]):
            assert earlier.end == later.start

    def test_first_step_is_source(self):
        compiled = compiled_model()
        steps = critical_path(compiled)
        assert steps[0].bound_by == "source"
        assert all(s.bound_by in ("data", "resource") for s in steps[1:])

    def test_chain_path_walks_layers(self):
        compiled = chain_compiled()
        steps = critical_path(compiled)
        layers_on_path = {step.layer for step in steps}
        # the last layer is always on the path; the chain pulls in
        # earlier layers through data dependencies
        assert "c2" in layers_on_path
        assert "c0" in layers_on_path

    def test_summary_accounts_full_path(self):
        compiled = compiled_model("wdup")
        steps = critical_path(compiled)
        summary = critical_layer_summary(compiled, steps)
        assert sum(summary.values()) == sum(s.end - s.start for s in steps)
        # origins are canonical layer names, not /dup names
        for layer in summary:
            assert "/dup" not in layer

    def test_format(self):
        compiled = compiled_model()
        text = format_critical_path(compiled)
        assert "critical path" in text
        assert "%" in text

    def test_layer_by_layer_rejected(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        compiled = compile_model(
            g, paper_case_study(min_pes),
            ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
            assume_canonical=True,
        )
        with pytest.raises(ValueError):
            critical_path(compiled)


class TestBufferAnalysis:
    def test_every_tile_reported(self):
        compiled = compiled_model()
        report = analyze_buffers(compiled)
        assert len(report.tiles) == compiled.arch.num_tiles

    def test_peak_positive_for_real_model(self):
        compiled = compiled_model()
        report = analyze_buffers(compiled)
        assert report.peak_bytes > 0

    def test_bytes_scale_linearly(self):
        compiled = compiled_model()
        one = analyze_buffers(compiled, bytes_per_element=1)
        four = analyze_buffers(compiled, bytes_per_element=4)
        assert four.peak_bytes == 4 * one.peak_bytes

    def test_overflow_detection(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        tiny_buffers = ArchitectureConfig(
            num_pes=min_pes,
            tile=TileSpec(input_buffer_bytes=1, output_buffer_bytes=1),
        )
        compiled = compile_model(
            g, tiny_buffers,
            ScheduleOptions(mapping="none", scheduling="clsa-cim"),
            assume_canonical=True,
        )
        report = analyze_buffers(compiled)
        assert report.overflowing_tiles  # 1-byte buffers must spill
        assert "spill" in report.summary()

    def test_roomy_buffers_do_not_overflow(self):
        compiled = compiled_model()  # 64 KiB default buffers
        report = analyze_buffers(compiled)
        assert report.overflowing_tiles == []

    def test_validation(self):
        compiled = compiled_model()
        with pytest.raises(ValueError):
            analyze_buffers(compiled, bytes_per_element=0)
