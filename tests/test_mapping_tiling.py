"""Unit tests for im2col lowering and Eq. 1 PE tiling."""

import pytest

from repro.arch import CrossbarSpec
from repro.ir import GraphBuilder
from repro.mapping import (
    layer_table,
    lower_graph,
    lower_layer,
    minimum_pe_requirement,
    tile_graph,
)


def small_net():
    b = GraphBuilder("net")
    x = b.input((32, 32, 3), name="in")
    c1 = b.conv2d(x, 64, kernel=3, padding="valid", use_bias=False, name="c1")
    c2 = b.conv2d(c1, 512, kernel=3, padding="valid", use_bias=False, name="c2")
    p = b.maxpool(c2, 2, name="pool")
    f = b.flatten(b.global_avgpool(p))
    b.dense(f, 300, use_bias=False, name="fc")
    return b.graph


class TestLowering:
    def test_conv_lowering(self):
        g = small_net()
        lowering = lower_layer(g, "c1")
        assert lowering.kernel_rows == 3 * 3 * 3
        assert lowering.kernel_cols == 64
        assert lowering.num_mvms == 30 * 30
        assert lowering.ofm_shape.hwc == (30, 30, 64)

    def test_second_conv_sees_64_channels(self):
        g = small_net()
        lowering = lower_layer(g, "c2")
        assert lowering.kernel_rows == 3 * 3 * 64
        assert lowering.kernel_cols == 512

    def test_dense_lowering(self):
        g = small_net()
        lowering = lower_layer(g, "fc")
        assert lowering.kernel_rows == 512
        assert lowering.kernel_cols == 300
        assert lowering.num_mvms == 1

    def test_macs_and_weights(self):
        g = small_net()
        lowering = lower_layer(g, "c1")
        assert lowering.weight_elements == 27 * 64
        assert lowering.macs == 27 * 64 * 900

    def test_non_base_layer_rejected(self):
        g = small_net()
        with pytest.raises(ValueError, match="not a base layer"):
            lower_layer(g, "pool")

    def test_lower_graph_covers_all_base_layers(self):
        g = small_net()
        lowerings = lower_graph(g)
        assert set(lowerings) == {"c1", "c2", "fc"}


class TestTiling:
    def test_eq1_grid(self):
        g = small_net()
        tilings = tile_graph(g, CrossbarSpec(rows=256, cols=256))
        # c1: 27 rows, 64 cols -> 1x1
        assert tilings["c1"].pe_grid == (1, 1)
        assert tilings["c1"].num_pes == 1
        # c2: 576 rows, 512 cols -> 3x2
        assert tilings["c2"].pe_grid == (3, 2)
        assert tilings["c2"].num_pes == 6
        # fc: 512 rows, 300 cols -> 2x2
        assert tilings["fc"].num_pes == 4

    def test_latency_is_ofm_spatial_size(self):
        g = small_net()
        tilings = tile_graph(g, CrossbarSpec())
        assert tilings["c1"].latency_cycles == 900
        assert tilings["c2"].latency_cycles == 28 * 28
        assert tilings["fc"].latency_cycles == 1

    def test_utilization_share(self):
        g = small_net()
        tilings = tile_graph(g, CrossbarSpec())
        assert tilings["c2"].utilization_share() == 6 * 784

    def test_minimum_pe_requirement(self):
        g = small_net()
        assert minimum_pe_requirement(g, CrossbarSpec()) == 1 + 6 + 4

    def test_smaller_crossbars_need_more_pes(self):
        g = small_net()
        big = minimum_pe_requirement(g, CrossbarSpec(rows=256, cols=256))
        small = minimum_pe_requirement(g, CrossbarSpec(rows=64, cols=64))
        assert small > big

    def test_layer_table_rows(self):
        g = small_net()
        rows = layer_table(g, CrossbarSpec())
        assert [row["layer"] for row in rows] == ["c1", "c2", "fc"]
        first = rows[0]
        assert first["ifm"] == (32, 32, 3)
        assert first["ofm"] == (30, 30, 64)
        assert first["num_pes"] == 1
        assert first["cycles"] == 900
