"""Coverage of smaller API surfaces not exercised elsewhere."""

import pytest

from repro.analysis.sweep import benchmark_sweep
from repro.arch import PRESETS, CrossbarSpec, isaac_like, paper_case_study
from repro.core import ScheduleOptions, SetGranularity, compile_model
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_sequential
from repro.sim import Metrics


class TestPresetsRegistry:
    def test_all_presets_construct(self):
        for name, factory in PRESETS.items():
            arch = factory(64)
            assert arch.num_pes == 64, name

    def test_isaac_like_properties(self):
        arch = isaac_like(64)
        assert arch.tile.pes_per_tile == 8
        assert arch.num_tiles == 8
        assert arch.crossbar.rows == 128
        assert arch.t_mvm_ns == 100.0

    def test_presets_schedule_end_to_end(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        for name, factory in PRESETS.items():
            min_pes = minimum_pe_requirement(g, factory(1).crossbar)
            arch = factory(min_pes + 2)
            compiled = compile_model(
                g, arch, ScheduleOptions(mapping="none", scheduling="clsa-cim"),
                assume_canonical=True,
            )
            assert compiled.latency_cycles > 0, name


class TestPipelineOptionPaths:
    def make(self, **kwargs):
        g = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        return compile_model(
            g, paper_case_study(min_pes + 6), ScheduleOptions(**kwargs),
            assume_canonical=True,
        )

    def test_d_max_cap_respected(self):
        compiled = self.make(mapping="wdup", d_max_cap=2)
        assert all(factor <= 2 for factor in compiled.duplication.d.values())

    def test_greedy_solver_option(self):
        compiled = self.make(mapping="wdup", duplication_solver="greedy")
        assert compiled.duplication.method == "greedy"

    def test_height_axis_option(self):
        compiled = self.make(mapping="wdup", duplication_axis="height")
        if compiled.rewrite.duplicated:
            entry = next(iter(compiled.rewrite.duplicated.values()))
            assert entry.axis == "height"

    def test_coarse_granularity_option(self):
        coarse = self.make(granularity=SetGranularity(rows_per_set=None,
                                                      target_sets=4))
        fine = self.make()
        assert coarse.latency_cycles >= fine.latency_cycles

    def test_static_policy_option(self):
        compiled = self.make(order_mode="static", intra_layer_policy="column_major")
        assert compiled.latency_cycles > 0


class TestSweepOverrides:
    def test_options_overrides_applied(self):
        graph = tiny_sequential()
        canonical = preprocess(graph, quantization=None).graph
        min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
        spec = BenchmarkSpec(
            "tiny_sequential",
            graph.shape_of(graph.input_names()[0]).hwc,
            base_layers=len(canonical.base_layers()),
            min_pes=min_pes,
        )
        coarse = benchmark_sweep(
            spec,
            xs=(2,),
            graph=canonical,
            options_overrides={
                "granularity": SetGranularity(rows_per_set=8),
            },
        )
        fine = benchmark_sweep(spec, xs=(2,), graph=canonical)
        coarse_xinf = coarse.series("xinf")[0]
        fine_xinf = fine.series("xinf")[0]
        assert coarse_xinf.metrics.latency_cycles >= fine_xinf.metrics.latency_cycles


class TestMetricsErrors:
    def make_metrics(self, latency=10, utilization=0.5, num_pes=4):
        return Metrics(
            config_name="x",
            latency_cycles=latency,
            latency_ns=latency * 1400.0,
            num_pes=num_pes,
            total_active_pe_cycles=latency * num_pes,
            utilization=utilization,
        )

    def test_zero_latency_speedup(self):
        zero = self.make_metrics(latency=0)
        with pytest.raises(ZeroDivisionError):
            zero.speedup_over(self.make_metrics())

    def test_zero_utilization_gain(self):
        flat = self.make_metrics(utilization=0.0)
        with pytest.raises(ZeroDivisionError):
            self.make_metrics().utilization_gain_over(flat)

    def test_zero_baseline_eq3(self):
        from repro.sim import speedup_eq3

        flat = self.make_metrics(utilization=0.0)
        with pytest.raises(ZeroDivisionError):
            speedup_eq3(self.make_metrics(), flat)
