"""Tests for the incremental Pareto frontier (repro.explore.pareto).

The headline property test: offering random objective vectors to the
incremental frontier one by one leaves exactly the set a brute-force
dominance scan selects.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    ObjectiveSpec,
    ParetoFrontier,
    dominates,
    pareto_indices,
    resolve_objectives,
)

LAT_EN = resolve_objectives(("latency", "energy"))


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable(self):
        assert not dominates((1, 3), (2, 1))
        assert not dominates((2, 1), (1, 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestFrontier:
    def frontier(self):
        return ParetoFrontier(LAT_EN)

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            ParetoFrontier(())

    def test_single_point(self):
        front = self.frontier()
        assert front.add("a", {"latency": 10, "energy": 5})
        assert len(front) == 1

    def test_dominated_offer_rejected(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        assert not front.add("b", {"latency": 11, "energy": 6})
        assert len(front) == 1
        assert front.dominated_offers == 1

    def test_dominating_offer_evicts(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        front.add("b", {"latency": 12, "energy": 4})
        assert front.add("c", {"latency": 9, "energy": 3})  # beats both
        assert [e.key for e in front] == ["c"]

    def test_incomparable_coexist(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        assert front.add("b", {"latency": 5, "energy": 10})
        assert len(front) == 2

    def test_duplicate_vectors_coexist(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        assert front.add("b", {"latency": 10, "energy": 5})
        assert len(front) == 2

    def test_reoffered_key_replaces(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        front.add("a", {"latency": 10, "energy": 5})
        assert len(front) == 1

    def test_max_objective_sense(self):
        front = ParetoFrontier(resolve_objectives(("latency", "utilization")))
        front.add("a", {"latency": 10, "utilization": 0.5})
        # higher utilization at equal latency dominates
        assert front.add("b", {"latency": 10, "utilization": 0.9})
        assert [e.key for e in front] == ["b"]

    def test_best(self):
        front = self.frontier()
        front.add("a", {"latency": 10, "energy": 5})
        front.add("b", {"latency": 5, "energy": 10})
        assert front.best("latency").key == "b"
        assert front.best("energy").key == "a"
        with pytest.raises(KeyError):
            front.best("utilization")

    def test_missing_objective_value_raises(self):
        with pytest.raises(KeyError):
            self.frontier().add("a", {"latency": 10})

    def test_summary(self):
        front = self.frontier()
        assert "empty" in front.summary()
        front.add("a", {"latency": 10, "energy": 5})
        assert "best latency=10" in front.summary()


@st.composite
def objective_dicts(draw):
    scale = draw(st.sampled_from([1, 3]))  # small scale forces ties
    return {
        "latency": draw(st.integers(0, scale)),
        "energy": draw(st.integers(0, scale)),
        "utilization": draw(st.integers(0, scale)),
    }


class TestFrontierMatchesBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(objective_dicts(), max_size=40), st.booleans())
    def test_incremental_equals_brute_force(self, values, mixed_senses):
        """The archive is exactly the non-dominated subset of all offers."""
        names = ("latency", "utilization") if mixed_senses else ("latency", "energy")
        objectives = resolve_objectives(names)
        front = ParetoFrontier(objectives)
        for index, point in enumerate(values):
            front.add(f"p{index}", point)

        vectors = [
            tuple(spec.canonical(point[spec.name]) for spec in objectives)
            for point in values
        ]
        expected = {f"p{i}" for i in pareto_indices(vectors)}
        assert {entry.key for entry in front} == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(objective_dicts(), min_size=1, max_size=30))
    def test_insertion_order_irrelevant(self, values):
        keyed = [(f"p{i}", v) for i, v in enumerate(values)]
        forward = ParetoFrontier(LAT_EN)
        backward = ParetoFrontier(LAT_EN)
        for key, point in keyed:
            forward.add(key, point)
        for key, point in reversed(keyed):
            backward.add(key, point)
        assert {e.key for e in forward} == {e.key for e in backward}


class TestCustomObjective:
    def test_register_and_use(self):
        from repro.explore import register_objective
        from repro.explore.objectives import OBJECTIVES

        register_objective(ObjectiveSpec("area", "min", units="mm2"))
        try:
            front = ParetoFrontier(resolve_objectives(("latency", "area")))
            front.add("a", {"latency": 10, "area": 2.0})
            assert front.best("area").values["area"] == 2.0
        finally:
            OBJECTIVES.pop("area", None)

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveSpec("x", "both")

    def test_resolve_rejects_unknown_and_dupes(self):
        with pytest.raises(KeyError):
            resolve_objectives(("latency", "speed"))
        with pytest.raises(ValueError):
            resolve_objectives(("latency", "latency"))
        with pytest.raises(ValueError):
            resolve_objectives(())
