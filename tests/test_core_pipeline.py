"""Integration tests for the end-to-end compilation pipeline."""

import pytest

from repro.arch import paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.frontend import preprocess
from repro.models import tiny_csp, tiny_dual_head, tiny_sequential


class TestScheduleOptions:
    def test_paper_names(self):
        cases = {
            ("none", "layer-by-layer"): "layer-by-layer",
            ("none", "clsa-cim"): "xinf",
            ("wdup", "layer-by-layer"): "wdup",
            ("wdup", "clsa-cim"): "wdup+xinf",
        }
        for (mapping, scheduling), expected in cases.items():
            options = ScheduleOptions(mapping=mapping, scheduling=scheduling)
            assert options.paper_name == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduleOptions(mapping="triplicate")
        with pytest.raises(ValueError):
            ScheduleOptions(scheduling="magic")
        with pytest.raises(ValueError):
            ScheduleOptions(order_mode="chaotic")


class TestCompileModel:
    def arch_for(self, graph, extra=8):
        from repro.arch import CrossbarSpec
        from repro.mapping import minimum_pe_requirement

        canonical = preprocess(graph, quantization=None).graph
        min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
        return paper_case_study(min_pes + extra)

    def test_all_four_configurations_run(self):
        g = tiny_sequential()
        arch = self.arch_for(g)
        latencies = {}
        for mapping in ("none", "wdup"):
            for scheduling in ("layer-by-layer", "clsa-cim"):
                options = ScheduleOptions(mapping=mapping, scheduling=scheduling)
                result = compile_model(g, arch, options)
                latencies[options.paper_name] = result.latency_cycles
        # orderings the paper reports: everything beats the baseline,
        # and the combination is at least as good as each technique
        assert latencies["wdup"] <= latencies["layer-by-layer"]
        assert latencies["xinf"] <= latencies["layer-by-layer"]
        assert latencies["wdup+xinf"] <= latencies["wdup"]
        assert latencies["wdup+xinf"] <= latencies["xinf"]

    def test_wdup_fills_budget(self):
        g = tiny_sequential()
        arch = self.arch_for(g, extra=6)
        result = compile_model(g, arch, ScheduleOptions(mapping="wdup"))
        assert result.duplication is not None
        assert result.duplication.pes_used <= arch.num_pes
        assert result.duplication.duplicated_layers  # budget was spent

    def test_raw_model_preprocessed_automatically(self):
        g = tiny_csp()  # framework-style graph with BN and same-padding
        arch = self.arch_for(g)
        result = compile_model(g, arch, ScheduleOptions(mapping="none"))
        assert result.canonical is not g
        from repro.frontend import is_canonical

        assert is_canonical(result.canonical)

    def test_canonical_model_not_copied(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        arch = self.arch_for(g)
        result = compile_model(g, arch, ScheduleOptions(mapping="none"))
        assert result.canonical is g

    def test_latency_units(self):
        g = tiny_sequential()
        arch = self.arch_for(g)
        result = compile_model(g, arch, ScheduleOptions(mapping="none"))
        assert result.latency_ns == result.latency_cycles * 1400.0

    def test_origin_of_layer(self):
        g = tiny_sequential()
        arch = self.arch_for(g, extra=4)
        result = compile_model(g, arch, ScheduleOptions(mapping="wdup"))
        for layer in result.mapped.base_layers():
            origin = result.origin_of_layer(layer)
            assert origin in result.canonical.base_layers()

    def test_static_vs_dynamic_order(self):
        g = tiny_dual_head()
        arch = self.arch_for(g)
        dynamic = compile_model(g, arch, ScheduleOptions(order_mode="dynamic"))
        static = compile_model(g, arch, ScheduleOptions(order_mode="static"))
        # greedy list scheduling has no strict optimality guarantee;
        # dynamic must be at least competitive with the static order
        assert dynamic.latency_cycles <= 1.05 * static.latency_cycles

    def test_insufficient_pes_raises(self):
        from repro.mapping import DuplicationError

        g = tiny_sequential()
        with pytest.raises(DuplicationError):
            compile_model(g, paper_case_study(1), ScheduleOptions(mapping="wdup"))

    def test_busy_cycles_conserved_across_configs(self):
        """Total active PE-cycles are invariant (basis of Eq. 3)."""
        g = tiny_sequential()
        arch = self.arch_for(g)
        totals = []
        for mapping in ("none", "wdup"):
            for scheduling in ("layer-by-layer", "clsa-cim"):
                result = compile_model(
                    g, arch, ScheduleOptions(mapping=mapping, scheduling=scheduling)
                )
                busy = result.schedule.busy_cycles()
                tilings = result.placement.tilings
                totals.append(
                    sum(tilings[layer].num_pes * cycles for layer, cycles in busy.items())
                )
        assert len(set(totals)) == 1
