"""Tests for CSV/JSON sweep exports and bit-slicing PE accounting."""

import json

import pytest

from repro.analysis import CSV_HEADER, benchmark_sweep, sweep_to_csv, sweep_to_json
from repro.arch import CrossbarSpec
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import BenchmarkSpec, tiny_sequential


@pytest.fixture(scope="module")
def sweep_results():
    graph = tiny_sequential()
    canonical = preprocess(graph, quantization=None).graph
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    spec = BenchmarkSpec(
        "tiny_sequential",
        graph.shape_of(graph.input_names()[0]).hwc,
        base_layers=len(canonical.base_layers()),
        min_pes=min_pes,
    )
    return [benchmark_sweep(spec, xs=(2,), graph=canonical)]


class TestCsvExport:
    def test_header(self, sweep_results):
        lines = sweep_to_csv(sweep_results).splitlines()
        assert lines[0] == CSV_HEADER

    def test_row_count(self, sweep_results):
        lines = sweep_to_csv(sweep_results).splitlines()
        # header + baseline + xinf + wdup + wdup+xinf
        assert len(lines) == 5

    def test_baseline_row(self, sweep_results):
        lines = sweep_to_csv(sweep_results).splitlines()
        baseline = lines[1].split(",")
        assert baseline[1] == "layer-by-layer"
        assert float(baseline[6]) == 1.0

    def test_values_parse(self, sweep_results):
        for line in sweep_to_csv(sweep_results).splitlines()[1:]:
            parts = line.split(",")
            assert len(parts) == 17
            int(parts[4])       # latency cycles
            float(parts[6])     # speedup
            float(parts[7])     # utilization
            assert float(parts[9]) > 0  # energy (uJ)
            assert int(parts[13]) >= 1  # attempts
            assert parts[15] == "ok"    # status
            assert parts[16] == ""      # error (clean run)

    def test_energy_in_json(self, sweep_results):
        payload = json.loads(sweep_to_json(sweep_results))
        assert payload[0]["baseline"]["energy_uj"] > 0
        for point in payload[0]["points"]:
            assert point["energy_uj"] > 0


class TestJsonExport:
    def test_round_trip(self, sweep_results):
        payload = json.loads(sweep_to_json(sweep_results))
        assert len(payload) == 1
        entry = payload[0]
        assert entry["benchmark"] == "tiny_sequential"
        assert {p["config"] for p in entry["points"]} == {"xinf", "wdup", "wdup+xinf"}

    def test_speedups_consistent_with_points(self, sweep_results):
        payload = json.loads(sweep_to_json(sweep_results))
        for point, obj in zip(sweep_results[0].points, payload[0]["points"]):
            assert obj["speedup"] == pytest.approx(point.speedup)


class TestBitSlicing:
    def test_effective_cols(self):
        xbar = CrossbarSpec(rows=256, cols=256, cells_per_weight=2)
        assert xbar.effective_cols == 128
        assert xbar.weight_bits == 8  # 2 cells x 4 bits

    def test_pe_count_grows_with_slicing(self):
        single = CrossbarSpec(cells_per_weight=1)
        sliced = CrossbarSpec(cells_per_weight=2)
        assert sliced.pes_for_kernel_matrix(512, 255) >= single.pes_for_kernel_matrix(
            512, 255
        )
        # 255 outputs fit one 256-col PE unsliced but need 2 at 128
        assert single.pes_for_kernel_matrix(256, 255) == 1
        assert sliced.pes_for_kernel_matrix(256, 255) == 2

    def test_model_pe_minimum_with_slicing(self):
        graph = preprocess(tiny_sequential(), quantization=None).graph
        base = minimum_pe_requirement(graph, CrossbarSpec(cells_per_weight=1))
        sliced = minimum_pe_requirement(graph, CrossbarSpec(cells_per_weight=4))
        assert sliced >= base

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossbarSpec(cells_per_weight=0)
        with pytest.raises(ValueError):
            CrossbarSpec(cols=8, cells_per_weight=9)

    def test_paper_configuration_unchanged(self):
        """Default slicing of 1 keeps every Table I/II number intact."""
        xbar = CrossbarSpec()
        assert xbar.cells_per_weight == 1
        assert xbar.effective_cols == 256
        assert xbar.pes_for_kernel_matrix(2304, 512) == 18  # conv2d_16
