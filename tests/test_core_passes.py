"""Tests for the pass pipeline (repro.core.passes)."""

import pytest

from repro.arch import paper_case_study
from repro.core import ScheduleOptions, compile_model
from repro.core import pipeline as pipeline_mod
from repro.core.cache import CompilationCache
from repro.core.passes import (
    CompilationContext,
    PassError,
    PassManager,
    default_pass_manager,
    default_passes,
    mapping_names,
    register_mapping,
    register_scheduler,
    resolve_mapping,
    resolve_scheduler,
    scheduler_names,
    unregister_mapping,
    unregister_scheduler,
)
from repro.core.schedule import Schedule, SetTask
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import build


@pytest.fixture(scope="module")
def canonical():
    return preprocess(build("tiny_sequential"), quantization=None).graph


def _arch_with_extra(canonical, extra):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    return paper_case_study(min_pes + extra)


@pytest.fixture(scope="module")
def arch(canonical):
    return _arch_with_extra(canonical, 4)


class TestDefaultPasses:
    def test_standard_order(self):
        names = [p.name for p in default_passes()]
        assert names == [
            "preprocess", "tile", "mapping", "place", "sets", "deps", "schedule",
        ]

    def test_compile_records_timings(self, canonical, arch):
        compiled = default_pass_manager().compile(
            canonical, arch, ScheduleOptions(), assume_canonical=True
        )
        # No cache: the tile pass is skipped (later stages recompute),
        # everything else executed and was timed.
        assert set(compiled.timings) == {
            "preprocess", "mapping", "place", "sets", "deps", "schedule",
        }
        assert all(seconds >= 0.0 for seconds in compiled.timings.values())
        assert "skipped pass 'tile'" in compiled.diagnostics

    def test_deps_skipped_for_layer_by_layer(self, canonical, arch):
        compiled = default_pass_manager().compile(
            canonical,
            arch,
            ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
            assume_canonical=True,
        )
        assert compiled.dependencies is None
        assert "deps" not in compiled.timings
        assert "skipped pass 'deps'" in compiled.diagnostics

    def test_cached_run_executes_tile_pass(self, canonical, arch):
        cache = CompilationCache()
        compiled = default_pass_manager().compile(
            canonical, arch, ScheduleOptions(), assume_canonical=True, cache=cache
        )
        assert "tile" in compiled.timings
        # The mapping pass re-requests the tilings and must hit.
        assert cache.stats["tile"].hits >= 1

    def test_missing_schedule_is_an_error(self, canonical, arch):
        manager = PassManager(default_passes()[:-1])  # drop the schedule pass
        with pytest.raises(PassError):
            manager.compile(canonical, arch, assume_canonical=True)


class TestPassManagerSurgery:
    def test_insert_before_and_after(self, canonical, arch):
        seen = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def run(self, ctx):
                seen.append((self.name, ctx.schedule is not None))

        manager = default_pass_manager()
        manager.insert_before("schedule", Probe("pre-schedule"))
        manager.insert_after("schedule", Probe("post-schedule"))
        manager.compile(canonical, arch, assume_canonical=True)
        assert seen == [("pre-schedule", False), ("post-schedule", True)]

    def test_insert_unknown_name_raises(self):
        with pytest.raises(KeyError):
            default_pass_manager().insert_before("nope", object())


class TestRegistries:
    def test_builtins_registered(self):
        assert set(mapping_names()) >= {"none", "wdup"}
        assert set(scheduler_names()) >= {"layer-by-layer", "clsa-cim"}
        assert resolve_scheduler("layer-by-layer").needs_dependencies is False
        assert resolve_scheduler("clsa-cim").needs_dependencies is True

    def test_unknown_names_error_helpfully(self):
        with pytest.raises(KeyError, match="registered"):
            resolve_mapping("does-not-exist")
        with pytest.raises(KeyError, match="registered"):
            resolve_scheduler("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mapping("none", lambda ctx: None)
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("clsa-cim", lambda ctx: None)

    def test_builtin_unregistration_rejected(self):
        with pytest.raises(ValueError, match="builtin"):
            unregister_mapping("wdup")
        with pytest.raises(ValueError, match="builtin"):
            unregister_scheduler("layer-by-layer")

    def test_replace_flag_allows_override(self):
        original = resolve_mapping("none")
        register_mapping("none", original, replace=True)
        assert resolve_mapping("none") is original

    def test_options_validate_against_registry(self):
        with pytest.raises(ValueError, match="mapping"):
            ScheduleOptions(mapping="bogus")
        with pytest.raises(ValueError, match="scheduling"):
            ScheduleOptions(scheduling="bogus")

        def sched(ctx):  # pragma: no cover - never built
            raise AssertionError

        register_scheduler("registry-validated", sched, needs_dependencies=False)
        try:
            options = ScheduleOptions(scheduling="registry-validated")
            assert options.paper_name == "wdup+registry-validated"
        finally:
            unregister_scheduler("registry-validated")
        with pytest.raises(ValueError):
            ScheduleOptions(scheduling="registry-validated")


class TestCustomScheduler:
    """A third-party scheduler plugs in without touching core/pipeline.py."""

    @pytest.fixture()
    def reverse_scheduler(self):
        def build_reverse(ctx):
            # Schedule every set sequentially, layers in reverse
            # topological order — a deliberately naive policy that only
            # uses the public context artifacts.
            cursor = 0
            tasks = []
            for layer in reversed(list(ctx.sets)):
                for index, rect in enumerate(ctx.sets[layer]):
                    tasks.append(
                        SetTask(
                            layer=layer,
                            set_index=index,
                            rect=rect,
                            start=cursor,
                            end=cursor + rect.area,
                        )
                    )
                    cursor += rect.area
            return Schedule(policy="reverse-sequential", tasks=tasks)

        register_scheduler("reverse-sequential", build_reverse, needs_dependencies=False)
        yield "reverse-sequential"
        unregister_scheduler("reverse-sequential")

    def test_compiles_end_to_end(self, canonical, arch, reverse_scheduler):
        options = ScheduleOptions(mapping="none", scheduling=reverse_scheduler)
        compiled = default_pass_manager().compile(
            canonical, arch, options, assume_canonical=True
        )
        assert compiled.schedule.policy == "reverse-sequential"
        # Purely sequential: the makespan is the total set area, which
        # equals the layer-by-layer baseline's makespan.
        baseline = compile_model(
            canonical,
            arch,
            ScheduleOptions(mapping="none", scheduling="layer-by-layer"),
            assume_canonical=True,
        )
        assert compiled.schedule.makespan == baseline.schedule.makespan
        # The dependencies pass was skipped for this scheduler.
        assert compiled.dependencies is None
        assert compiled.options.paper_name == "reverse-sequential"
        compiled.schedule.validate_intra_layer_order()

    def test_shim_accepts_registered_scheduler(self, canonical, arch, reverse_scheduler):
        compiled = compile_model(
            canonical,
            arch,
            ScheduleOptions(mapping="none", scheduling=reverse_scheduler),
            assume_canonical=True,
        )
        assert compiled.schedule.policy == "reverse-sequential"

    def test_schedule_stage_rejects_non_builtin(self, canonical, arch, reverse_scheduler):
        options = ScheduleOptions(mapping="none", scheduling=reverse_scheduler)
        with pytest.raises(ValueError, match="PassManager"):
            pipeline_mod.schedule_stage(canonical, {}, None, options)


class TestCustomMapping:
    def test_custom_mapping_rule(self, canonical, arch):
        calls = []

        def identity_mapping(ctx):
            calls.append(ctx.options.mapping)
            ctx.mapped = ctx.canonical

        register_mapping("identity-test", identity_mapping)
        try:
            compiled = default_pass_manager().compile(
                canonical,
                arch,
                ScheduleOptions(mapping="identity-test", scheduling="layer-by-layer"),
                assume_canonical=True,
            )
        finally:
            unregister_mapping("identity-test")
        assert calls == ["identity-test"]
        assert compiled.mapped is compiled.canonical
        assert compiled.options.paper_name == "identity-test+layer-by-layer"

    def test_arch_dependent_mapping_safe_with_shared_cache(self, canonical):
        """The fallback mapped key includes the architecture: a cache
        shared across PE budgets must never serve a stale mapped graph."""
        from repro.core.cache import CompilationCache
        from repro.mapping.duplication import problem_from_tilings, solve
        from repro.mapping.rewrite import apply_duplication
        from repro.mapping.tiling import tile_graph

        def budget_mapping(ctx):
            # Reads ctx.arch (like wdup) but sets no mapped_key.
            tilings = tile_graph(ctx.canonical, ctx.arch.crossbar)
            problem = problem_from_tilings(tilings, budget=ctx.arch.num_pes)
            solution = solve(problem, "dp")
            ctx.mapped = apply_duplication(ctx.canonical, solution).graph

        register_mapping("budget-test", budget_mapping)
        try:
            options = ScheduleOptions(mapping="budget-test", scheduling="clsa-cim")
            min_arch = _arch_with_extra(canonical, 1)
            big_arch = _arch_with_extra(canonical, 16)
            shared = CompilationCache()
            cached_small = default_pass_manager().compile(
                canonical, min_arch, options, assume_canonical=True, cache=shared
            )
            cached_big = default_pass_manager().compile(
                canonical, big_arch, options, assume_canonical=True, cache=shared
            )
            fresh_big = default_pass_manager().compile(
                canonical, big_arch, options, assume_canonical=True
            )
        finally:
            unregister_mapping("budget-test")
        assert cached_big.schedule.makespan == fresh_big.schedule.makespan
        assert cached_big.schedule.tasks == fresh_big.schedule.tasks
        assert cached_small.schedule.makespan >= cached_big.schedule.makespan

    def test_mapping_rule_must_set_mapped(self, canonical, arch):
        register_mapping("broken-test", lambda ctx: None)
        try:
            with pytest.raises(PassError, match="ctx.mapped"):
                default_pass_manager().compile(
                    canonical,
                    arch,
                    ScheduleOptions(mapping="broken-test", scheduling="layer-by-layer"),
                    assume_canonical=True,
                )
        finally:
            unregister_mapping("broken-test")


class TestLazyCacheKeys:
    """Without a cache no graph fingerprint is ever computed (the old
    path planted a misleading ``("graph", "")`` placeholder key and the
    stage functions hashed graphs whose keys were never used)."""

    def test_uncached_compile_never_fingerprints(self, canonical, arch, monkeypatch):
        def boom(graph):
            raise AssertionError("graph_fingerprint called without a cache")

        monkeypatch.setattr(pipeline_mod, "graph_fingerprint", boom)
        monkeypatch.setattr(CompilationCache, "fingerprint", lambda self, graph: boom(graph))
        compiled = compile_model(
            canonical, arch, ScheduleOptions(), assume_canonical=True
        )
        assert compiled.schedule.makespan > 0

    def test_uncached_stage_functions_never_fingerprint(
        self, canonical, arch, monkeypatch
    ):
        def boom(graph):
            raise AssertionError("graph_fingerprint called without a cache")

        monkeypatch.setattr(pipeline_mod, "graph_fingerprint", boom)
        tilings = pipeline_mod.tile_stage(canonical, arch)
        assert tilings
        placement = pipeline_mod.placement_stage(canonical, arch)
        options = ScheduleOptions(mapping="none", scheduling="layer-by-layer")
        sets = pipeline_mod.sets_stage(canonical, options.granularity)
        deps = pipeline_mod.dependencies_stage(canonical, sets, options.granularity)
        schedule = pipeline_mod.schedule_stage(canonical, sets, deps, options)
        assert placement.pes_used > 0 and schedule.makespan > 0

    def test_cached_and_uncached_results_identical(self, canonical, arch):
        cache = CompilationCache()
        uncached = compile_model(canonical, arch, assume_canonical=True)
        cached = compile_model(canonical, arch, assume_canonical=True, cache=cache)
        assert uncached.schedule.tasks == cached.schedule.tasks
        assert uncached.placement.pe_ranges == cached.placement.pe_ranges


class TestContext:
    def test_context_cached_helper(self):
        cache = CompilationCache()
        ctx = CompilationContext(
            graph=build("tiny_sequential"),
            arch=paper_case_study(8),
            cache=cache,
        )
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert ctx.cached(("custom", "key"), compute) == 42
        assert ctx.cached(("custom", "key"), compute) == 42
        assert calls == [1]

        ctx_uncached = CompilationContext(
            graph=build("tiny_sequential"), arch=paper_case_study(8)
        )
        assert ctx_uncached.cached(("custom", "key"), compute) == 42
        assert calls == [1, 1]

    def test_note_collects_diagnostics(self):
        ctx = CompilationContext(graph=build("tiny_sequential"), arch=paper_case_study(8))
        ctx.note("hello")
        assert ctx.diagnostics == ["hello"]
