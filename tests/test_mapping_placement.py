"""Tests for static PE/tile placement."""

import pytest

from repro.arch import ArchitectureConfig, TileSpec, paper_case_study
from repro.ir import GraphBuilder
from repro.mapping import PlacementError, place_graph


def three_layer_net():
    b = GraphBuilder("net")
    x = b.input((32, 32, 3), name="in")
    c1 = b.conv2d(x, 64, kernel=3, padding="valid", use_bias=False, name="c1")   # 1 PE
    c2 = b.conv2d(c1, 512, kernel=3, padding="valid", use_bias=False, name="c2")  # 6 PEs
    b.conv2d(c2, 64, kernel=1, padding="valid", use_bias=False, name="c3")        # 2 PEs
    return b.graph


class TestPlacement:
    def test_consecutive_packing(self):
        placement = place_graph(three_layer_net(), paper_case_study(16))
        assert placement.pe_ranges["c1"] == (0, 1)
        assert placement.pe_ranges["c2"] == (1, 7)
        assert placement.pe_ranges["c3"] == (7, 9)
        assert placement.pes_used == 9

    def test_pes_of(self):
        placement = place_graph(three_layer_net(), paper_case_study(16))
        assert placement.pes_of("c2") == [1, 2, 3, 4, 5, 6]

    def test_tiles_one_pe_per_tile(self):
        placement = place_graph(three_layer_net(), paper_case_study(16))
        assert placement.tiles_of("c2") == [1, 2, 3, 4, 5, 6]

    def test_tiles_multi_pe_per_tile(self):
        arch = ArchitectureConfig(num_pes=16, tile=TileSpec(pes_per_tile=4))
        placement = place_graph(three_layer_net(), arch)
        assert placement.tiles_of("c2") == [0, 1]  # PEs 1..6 span tiles 0 and 1

    def test_layer_of_pe(self):
        placement = place_graph(three_layer_net(), paper_case_study(16))
        assert placement.layer_of_pe(0) == "c1"
        assert placement.layer_of_pe(3) == "c2"
        assert placement.layer_of_pe(8) == "c3"
        assert placement.layer_of_pe(12) is None  # idle PE

    def test_insufficient_pes_raises(self):
        with pytest.raises(PlacementError, match="needs 9 PEs"):
            place_graph(three_layer_net(), paper_case_study(8))

    def test_summary(self):
        placement = place_graph(three_layer_net(), paper_case_study(16))
        text = placement.summary()
        assert "9/16 PEs used" in text
        assert "c2" in text
