"""Shared pytest configuration.

Disables the hypothesis per-example deadline: several property tests
verify O(n^2) geometric invariants (e.g. pairwise disjointness of set
partitions) whose worst-case examples legitimately exceed the default
200 ms on slow CI machines.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
