"""Unit tests for weight quantization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend import (
    QuantizationConfig,
    QuantizationError,
    integer_levels,
    quantization_error_bound,
    quantize_graph,
    quantize_tensor,
)
from repro.ir import GraphBuilder


class TestConfig:
    def test_q_max(self):
        assert QuantizationConfig(weight_bits=4).q_max == 7
        assert QuantizationConfig(weight_bits=8).q_max == 127

    def test_rejects_bad_bits(self):
        with pytest.raises(QuantizationError):
            QuantizationConfig(weight_bits=1)
        with pytest.raises(QuantizationError):
            QuantizationConfig(weight_bits=17)


class TestQuantizeTensor:
    def test_values_on_grid(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(3, 3, 8, 16))
        config = QuantizationConfig(weight_bits=4, per_channel=True)
        quantized, scale = quantize_tensor(weights, config, channel_axis=3)
        levels = integer_levels(quantized, scale, channel_axis=3)
        assert levels.min() >= -config.q_max
        assert levels.max() <= config.q_max
        # dequantized values reconstruct exactly from levels * scale
        np.testing.assert_allclose(levels * scale.reshape(1, 1, 1, -1), quantized,
                                   atol=1e-12)

    def test_error_within_bound(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(3, 3, 4, 8))
        config = QuantizationConfig(weight_bits=4, per_channel=True)
        quantized, scale = quantize_tensor(weights, config, channel_axis=3)
        error = np.abs(quantized - weights).max()
        assert error <= quantization_error_bound(scale) + 1e-12

    def test_per_tensor_single_scale(self):
        weights = np.random.default_rng(2).normal(size=(3, 3, 4, 8))
        config = QuantizationConfig(weight_bits=4, per_channel=False)
        _, scale = quantize_tensor(weights, config)
        assert np.asarray(scale).ndim == 0

    def test_zero_channel_handled(self):
        weights = np.zeros((1, 1, 2, 3))
        weights[..., 0] = 0.0  # all-zero channel
        weights[..., 1] = 1.0
        config = QuantizationConfig(weight_bits=4, per_channel=True)
        quantized, scale = quantize_tensor(weights, config, channel_axis=3)
        np.testing.assert_array_equal(quantized[..., 0], 0.0)
        assert scale[0] == 1.0

    def test_extremes_exactly_representable(self):
        """The per-channel max |w| maps exactly onto the grid."""
        weights = np.array([[-2.0, 0.5, 2.0]]).reshape(1, 1, 1, 3).repeat(2, axis=2)
        config = QuantizationConfig(weight_bits=4, per_channel=True)
        quantized, _ = quantize_tensor(weights, config, channel_axis=3)
        np.testing.assert_allclose(quantized[0, 0, 0], [-2.0, 0.5, 2.0])

    def test_more_bits_reduce_error(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(3, 3, 8, 8))
        errors = []
        for bits in (2, 4, 8):
            config = QuantizationConfig(weight_bits=bits, per_channel=False)
            quantized, _ = quantize_tensor(weights, config)
            errors.append(np.abs(quantized - weights).max())
        assert errors[0] > errors[1] > errors[2]

    @given(bits=st.integers(2, 8), seed=st.integers(0, 1000))
    def test_property_idempotent(self, bits, seed):
        """Quantizing already-quantized weights is the identity."""
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(2, 2, 3, 4))
        config = QuantizationConfig(weight_bits=bits, per_channel=True)
        once, _ = quantize_tensor(weights, config, channel_axis=3)
        twice, _ = quantize_tensor(once, config, channel_axis=3)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestQuantizeGraph:
    def make_graph(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        c = b.conv2d(x, 4, kernel=3, padding="valid", use_bias=False, name="conv")
        f = b.flatten(b.global_avgpool(c))
        b.dense(f, 10, use_bias=False, name="fc")
        g = b.graph
        g.initialize_weights(seed=11)
        return g

    def test_all_base_layers_quantized(self):
        g = self.make_graph()
        report = quantize_graph(g, QuantizationConfig(weight_bits=4))
        assert [entry.layer for entry in report.layers] == ["conv", "fc"]
        assert report.max_abs_error > 0.0

    def test_geometry_only_layers_skipped(self):
        b = GraphBuilder("net")
        x = b.input((8, 8, 3), name="in")
        b.conv2d(x, 4, name="conv")
        report = quantize_graph(b.graph)
        assert report.layers == []

    def test_weights_on_grid_after_pass(self):
        g = self.make_graph()
        report = quantize_graph(g, QuantizationConfig(weight_bits=3))
        conv_entry = report.layers[0]
        levels = integer_levels(g["conv"].weights, conv_entry.scale, channel_axis=3)
        assert np.abs(levels).max() <= QuantizationConfig(weight_bits=3).q_max
