"""Two-tier cache integration and the incremental-invalidation contract."""

import pytest

from repro.arch import paper_case_study
from repro.core import ScheduleOptions
from repro.core.cache import (
    CompilationCache,
    graph_fingerprint,
    invalidate_fingerprint,
)
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import build, tiny_sequential
from repro.session import Session
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def canonical():
    return preprocess(tiny_sequential(), quantization=None).graph


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _compile(canonical, cache, options=None, extra_pes=8):
    min_pes = minimum_pe_requirement(canonical, paper_case_study(1).crossbar)
    session = Session(paper_case_study(min_pes + extra_pes), cache=cache)
    return session.compile(
        canonical, options or ScheduleOptions(), assume_canonical=True
    )


class TestTwoTier:
    def test_cold_compile_populates_both_tiers(self, canonical, store):
        cache = CompilationCache(store=store)
        _compile(canonical, cache)
        assert cache.misses > 0
        assert cache.store_hits == 0
        assert store.stats().entries >= 6  # tile..schedule published

    def test_fresh_cache_against_warm_store_zero_misses(self, canonical, store):
        warm = CompilationCache(store=store)
        first = _compile(canonical, warm)
        fresh = CompilationCache(store=ArtifactStore(store.root))
        second = _compile(canonical, fresh)
        assert fresh.misses == 0, fresh.summary()
        assert fresh.memory_hits == 0
        assert fresh.store_hits > 0
        for stage, (mem, disk, miss) in fresh.stats_snapshot().items():
            assert (mem, miss) == (0, 0), f"{stage} not disk-served"
            assert disk == 1
        m1, m2 = first.evaluate(), second.evaluate()
        assert m1.latency_cycles == m2.latency_cycles
        assert m1.utilization == m2.utilization

    def test_memory_tier_still_wins_when_warm(self, canonical, store):
        cache = CompilationCache(store=store)
        _compile(canonical, cache)
        before_store_hits = cache.store_hits
        _compile(canonical, cache)
        assert cache.store_hits == before_store_hits  # served from memory
        assert cache.memory_hits > 0

    def test_schedule_knob_change_reuses_prefix_stages(self, canonical, store):
        warm = CompilationCache(store=store)
        _compile(canonical, warm, ScheduleOptions())
        fresh = CompilationCache(store=ArtifactStore(store.root))
        _compile(canonical, fresh, ScheduleOptions(order_mode="static"))
        snapshot = fresh.stats_snapshot()
        # Only the schedule stage depends on order_mode.
        assert snapshot["schedule"] == (0, 0, 1)
        for stage in ("tile", "wdup", "place", "sets", "deps"):
            assert snapshot[stage] == (0, 1, 0), f"{stage} recomputed"

    def test_arch_change_recomputes_dependent_stages(self, canonical, store):
        warm = CompilationCache(store=store)
        _compile(canonical, warm, extra_pes=8)
        fresh = CompilationCache(store=ArtifactStore(store.root))
        _compile(canonical, fresh, extra_pes=9)
        snapshot = fresh.stats_snapshot()
        # Tiling depends only on the crossbar geometry, not the PE count.
        mem, disk, miss = snapshot["tile"]
        assert (disk, miss) == (1, 0)
        assert snapshot["wdup"][2] == 1  # num_pes is in the wdup key

    def test_summary_reports_store_share(self, canonical, store):
        warm = CompilationCache(store=store)
        _compile(canonical, warm)
        fresh = CompilationCache(store=ArtifactStore(store.root))
        _compile(canonical, fresh)
        assert "from store" in fresh.summary()

    def test_clear_keeps_store(self, canonical, store):
        cache = CompilationCache(store=store)
        _compile(canonical, cache)
        cache.clear()
        assert cache.store is store
        _compile(canonical, cache)
        assert cache.store_hits > 0

    def test_attach_store_rules(self, store, tmp_path):
        cache = CompilationCache()
        cache.attach_store(None)
        assert cache.store is None
        cache.attach_store(store)
        assert cache.store is store
        cache.attach_store(store)  # same store: no-op
        with pytest.raises(ValueError):
            cache.attach_store(ArtifactStore(str(tmp_path / "other")))


class TestSessionStore:
    def test_store_path_kwarg(self, canonical, tmp_path):
        path = str(tmp_path / "s")
        with Session(paper_case_study(40), store_path=path) as session:
            assert session.store is not None
            assert session.store.root.endswith("s")
            session.compile(canonical, assume_canonical=True)
        with Session(paper_case_study(40), store_path=path) as session:
            session.compile(canonical, assume_canonical=True)
            assert session.cache.misses == 0
            assert session.cache.store_hits > 0

    def test_store_instance_kwarg(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"))
        session = Session(paper_case_study(40), store=store)
        assert session.store is store
        assert session.cache.store is store

    def test_store_true_uses_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "env-store"))
        session = Session(paper_case_study(40), store=True)
        assert session.store.root == str(tmp_path / "env-store")

    def test_store_without_cache_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="requires caching"):
            Session(
                paper_case_study(40),
                cache=False,
                store_path=str(tmp_path / "s"),
            )

    def test_store_and_store_path_mutually_exclusive(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "a"))
        with pytest.raises(ValueError):
            Session(
                paper_case_study(40),
                store=store,
                store_path=str(tmp_path / "b"),
            )

    def test_shared_cache_gains_store(self, tmp_path):
        cache = CompilationCache()
        session = Session(
            paper_case_study(40), cache=cache, store_path=str(tmp_path / "s")
        )
        assert cache.store is session.store

    def test_job_result_reports_store_hits(self, canonical, tmp_path):
        from repro.exec import CompileJob

        path = str(tmp_path / "s")
        opts = ScheduleOptions()
        with Session(paper_case_study(40), store_path=path) as session:
            session.submit(
                CompileJob(canonical, opts, assume_canonical=True)
            ).result()
        with Session(paper_case_study(40), store_path=path) as session:
            result = session.submit(
                CompileJob(canonical, opts, assume_canonical=True)
            ).result()
        assert result.cache_misses == 0
        assert result.cache_store_hits > 0
        assert result.cache_hits == result.cache_store_hits
        assert result.cache_memory_hits == 0
        for stage, (mem, disk, miss) in result.cache_stages.items():
            assert (mem, miss) == (0, 0), f"{stage} not disk-served"
            assert disk >= 1

    def test_sweep_points_carry_cache_provenance(self, canonical, tmp_path):
        from repro.models import BenchmarkSpec

        min_pes = minimum_pe_requirement(
            canonical, paper_case_study(1).crossbar
        )
        spec = BenchmarkSpec(
            "tiny_sequential",
            canonical.shape_of(canonical.input_names()[0]).hwc,
            base_layers=len(canonical.base_layers()),
            min_pes=min_pes,
        )
        path = str(tmp_path / "s")
        with Session(paper_case_study(1), store_path=path) as session:
            session.sweep([spec], xs=(2,), graphs={spec.name: canonical})
        with Session(paper_case_study(1), store_path=path) as session:
            results = session.sweep(
                [spec], xs=(2,), graphs={spec.name: canonical}
            )
        result = results[0]
        assert result.baseline_cache is not None
        mem, disk, miss = result.baseline_cache
        assert miss == 0
        assert disk > 0
        for point in result.points:
            assert point.cache_misses == 0
            assert point.cache_store_hits + point.cache_memory_hits > 0


class TestAcceptanceTinyYolo:
    """The issue's acceptance bar, on the real tinyyolov3 benchmark."""

    def test_warm_store_recompile_executes_zero_stages(self, tmp_path):
        canonical = preprocess(build("tinyyolov3"), quantization=None).graph
        min_pes = minimum_pe_requirement(
            canonical, paper_case_study(1).crossbar
        )
        arch = paper_case_study(min_pes + 16)
        options = ScheduleOptions()
        path = str(tmp_path / "store")

        warm = CompilationCache(store=ArtifactStore(path))
        first = Session(arch, cache=warm).compile(
            canonical, options, assume_canonical=True
        )
        # A fresh cache + fresh store handle models a fresh process.
        fresh = CompilationCache(store=ArtifactStore(path))
        second = Session(arch, cache=fresh).compile(
            canonical, options, assume_canonical=True
        )
        assert fresh.misses == 0, fresh.summary()
        assert fresh.store_hits > 0
        m1, m2 = first.evaluate(), second.evaluate()
        assert m1.latency_cycles == m2.latency_cycles

        # Changing only a schedule knob reuses every earlier stage.
        knobbed = CompilationCache(store=ArtifactStore(path))
        Session(arch, cache=knobbed).compile(
            canonical,
            ScheduleOptions(order_mode="static"),
            assume_canonical=True,
        )
        snapshot = knobbed.stats_snapshot()
        assert snapshot["schedule"] == (0, 0, 1)
        for stage in ("tile", "wdup", "place", "sets", "deps"):
            assert snapshot[stage] == (0, 1, 0), f"{stage} recomputed"


class TestFingerprintModuleMemo:
    def test_memoized_per_object(self, canonical):
        import repro.core.cache as cache_module

        first = graph_fingerprint(canonical)
        calls = []
        original = cache_module._graph_fingerprint_uncached
        cache_module._graph_fingerprint_uncached = lambda g: calls.append(g) or "x"
        try:
            assert graph_fingerprint(canonical) == first
            assert calls == []  # memo hit, no recompute
        finally:
            cache_module._graph_fingerprint_uncached = original

    def test_invalidate_forces_recompute(self, canonical):
        first = graph_fingerprint(canonical)
        invalidate_fingerprint(canonical)
        assert graph_fingerprint(canonical) == first  # recomputed, equal

    def test_distinct_objects_distinct_slots(self):
        g1 = preprocess(tiny_sequential(), quantization=None).graph
        g2 = preprocess(tiny_sequential(), quantization=None).graph
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_dead_graph_slot_evicted(self):
        import gc

        from repro.core.cache import _FINGERPRINTS

        g = preprocess(tiny_sequential(), quantization=None).graph
        graph_fingerprint(g)
        key = id(g)
        assert key in _FINGERPRINTS
        del g
        gc.collect()
        assert key not in _FINGERPRINTS
