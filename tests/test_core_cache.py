"""Tests for the staged pipeline and its CompilationCache."""

import pytest

from repro.arch import CrossbarSpec, paper_case_study
from repro.core import (
    CompilationCache,
    ScheduleOptions,
    compile_model,
    graph_fingerprint,
)
from repro.frontend import preprocess
from repro.mapping import minimum_pe_requirement
from repro.models import tiny_dual_head, tiny_residual, tiny_sequential


def arch_for(canonical, extra=8):
    min_pes = minimum_pe_requirement(canonical, CrossbarSpec())
    return paper_case_study(min_pes + extra)


ALL_CONFIGS = [
    ("none", "layer-by-layer"),
    ("none", "clsa-cim"),
    ("wdup", "layer-by-layer"),
    ("wdup", "clsa-cim"),
]


class TestGraphFingerprint:
    def test_structurally_identical_graphs_agree(self):
        assert graph_fingerprint(tiny_sequential()) == graph_fingerprint(
            tiny_sequential()
        )

    def test_different_structures_differ(self):
        assert graph_fingerprint(tiny_sequential()) != graph_fingerprint(
            tiny_residual()
        )

    def test_different_weights_differ(self):
        """Same structure, different parameters: distinct fingerprints,
        so a shared cache never serves the wrong model's weights."""
        import numpy as np

        def with_weights(seed):
            g = tiny_sequential()
            conv = g[g.base_layers()[0]]
            rng = np.random.default_rng(seed)
            conv.weights = rng.normal(size=(*conv.kernel, 3, conv.out_channels))
            return g

        assert graph_fingerprint(with_weights(0)) != graph_fingerprint(with_weights(1))
        assert graph_fingerprint(with_weights(0)) == graph_fingerprint(with_weights(0))


class TestCompilationCache:
    def test_miss_then_hit(self):
        cache = CompilationCache()
        calls = []
        key = ("stage", "a")
        assert cache.get_or_compute(key, lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute(key, lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats["stage"].misses == 1
        assert cache.stats["stage"].hits == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = CompilationCache(max_entries=2)
        cache.get_or_compute(("s", 1), lambda: 1)
        cache.get_or_compute(("s", 2), lambda: 2)
        cache.get_or_compute(("s", 1), lambda: 1)  # refresh 1
        cache.get_or_compute(("s", 3), lambda: 3)  # evicts 2
        assert ("s", 1) in cache and ("s", 3) in cache
        assert ("s", 2) not in cache
        assert len(cache) == 2

    def test_clear_keeps_stats(self):
        cache = CompilationCache()
        cache.get_or_compute(("s", 1), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["s"].misses == 1

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            CompilationCache(max_entries=0)

    def test_summary_lists_stages(self):
        cache = CompilationCache()
        cache.get_or_compute(("tile", "x"), lambda: 1)
        assert "tile: 0/1 hits" in cache.summary()


class TestStagedEquivalence:
    """Cached/staged compilation must be bit-identical to monolithic."""

    @pytest.mark.parametrize("mapping,scheduling", ALL_CONFIGS)
    def test_same_makespan_per_config(self, mapping, scheduling):
        g = preprocess(tiny_dual_head(), quantization=None).graph
        arch = arch_for(g)
        options = ScheduleOptions(mapping=mapping, scheduling=scheduling)
        plain = compile_model(g, arch, options, assume_canonical=True)
        cache = CompilationCache()
        cold = compile_model(g, arch, options, assume_canonical=True, cache=cache)
        warm = compile_model(g, arch, options, assume_canonical=True, cache=cache)
        assert plain.latency_cycles == cold.latency_cycles == warm.latency_cycles
        assert plain.schedule.makespan == warm.schedule.makespan

    def test_sweep_grid_reuses_stages(self):
        """One cached grid: tile once, share wdup rewrites and sets."""
        g = preprocess(tiny_sequential(), quantization=None).graph
        min_pes = minimum_pe_requirement(g, CrossbarSpec())
        cache = CompilationCache()
        for extra in (4, 8):
            arch = paper_case_study(min_pes + extra)
            for mapping, scheduling in ALL_CONFIGS:
                compile_model(
                    g,
                    arch,
                    ScheduleOptions(mapping=mapping, scheduling=scheduling),
                    assume_canonical=True,
                    cache=cache,
                )
        # tiling depends only on the crossbar: 1 miss, the rest hits
        assert cache.stats["tile"].misses == 1
        # one wdup rewrite per budget (2 budgets), shared by lbl/clsa
        assert cache.stats["wdup"].misses == 2
        assert cache.stats["wdup"].hits == 2
        # sets: canonical graph + one per wdup budget = 3 unique
        assert cache.stats["sets"].misses == 3
        # deps likewise (clsa-cim configs only)
        assert cache.stats["deps"].misses == 3

    def test_cached_intermediates_shared_not_recomputed(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        arch = arch_for(g)
        options = ScheduleOptions(mapping="wdup", scheduling="clsa-cim")
        cache = CompilationCache()
        first = compile_model(g, arch, options, assume_canonical=True, cache=cache)
        second = compile_model(g, arch, options, assume_canonical=True, cache=cache)
        assert second.sets is first.sets
        assert second.dependencies is first.dependencies
        assert second.schedule is first.schedule

    def test_uncached_compile_unaffected(self):
        g = preprocess(tiny_sequential(), quantization=None).graph
        arch = arch_for(g)
        options = ScheduleOptions()
        a = compile_model(g, arch, options, assume_canonical=True)
        b = compile_model(g, arch, options, assume_canonical=True)
        assert a.latency_cycles == b.latency_cycles
        assert a.sets is not b.sets  # no hidden global state

    def test_preprocess_stage_cached_for_raw_graphs(self):
        cache = CompilationCache()
        raw = tiny_sequential()
        arch = arch_for(preprocess(raw, quantization=None).graph)
        compile_model(raw, arch, ScheduleOptions(), cache=cache)
        compile_model(tiny_sequential(), arch, ScheduleOptions(), cache=cache)
        assert cache.stats["preprocess"].misses == 1
        assert cache.stats["preprocess"].hits == 1


class TestFingerprintMemo:
    def test_fingerprint_memoized_per_object(self, monkeypatch):
        from repro.core import cache as cache_module

        calls = []
        real = cache_module.graph_fingerprint
        monkeypatch.setattr(
            cache_module, "graph_fingerprint",
            lambda g: calls.append(1) or real(g),
        )
        cache = CompilationCache()
        g = tiny_sequential()
        first = cache.fingerprint(g)
        second = cache.fingerprint(g)
        assert first == second == real(g)
        assert len(calls) == 1  # second lookup served from the memo

    def test_distinct_objects_fingerprint_independently(self):
        cache = CompilationCache()
        a, b = tiny_sequential(), tiny_sequential()
        assert cache.fingerprint(a) == cache.fingerprint(b)
