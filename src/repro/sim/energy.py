"""Inference energy estimation.

The paper motivates CIM with "faster data processing and reduced power
consumption" but evaluates latency/utilization only.  This module adds
a first-order energy model so configurations can also be compared on
energy:

* **MVM energy** — every active PE-cycle costs one crossbar MVM
  (dominated by DAC/ADC and array read energy);
* **NoC energy** — every set-level dependency edge between layers moves
  the producer set's payload between the layers' home tiles;
* **static energy** — leakage of the whole array over the makespan.

Defaults are order-of-magnitude values for 256x256 RRAM macros in the
literature (tens of nJ per full-array MVM, ~1 pJ/byte/hop on-chip,
tens of mW static); all are configurable.  The model's purpose is
*relative* comparison between schedules on the same architecture, not
absolute silicon numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import CompiledModel
from .metrics import active_pe_cycles


@dataclass(frozen=True)
class EnergyModelConfig:
    """Energy coefficients (configurable; defaults are literature-order)."""

    #: Energy of one PE performing one MVM cycle, in nanojoules.
    mvm_energy_nj: float = 40.0
    #: NoC transport energy per byte per hop, in nanojoules.
    noc_energy_nj_per_byte_hop: float = 0.001
    #: Static (leakage) power of the whole chip per PE, in milliwatts.
    static_power_mw_per_pe: float = 0.05
    #: Bytes per forwarded activation element.
    bytes_per_element: int = 1

    def __post_init__(self) -> None:
        if self.mvm_energy_nj < 0 or self.noc_energy_nj_per_byte_hop < 0:
            raise ValueError("energy coefficients must be non-negative")
        if self.static_power_mw_per_pe < 0:
            raise ValueError("static power must be non-negative")
        if self.bytes_per_element < 1:
            raise ValueError("bytes_per_element must be >= 1")


@dataclass
class EnergyReport:
    """Energy breakdown of one compiled configuration, in microjoules.

    Degenerate schedules (an empty model compiles to a zero-cycle
    schedule) produce an all-zero report; the derived quantities below
    guard their divisions so such reports never raise.
    """

    config_name: str
    mvm_uj: float
    noc_uj: float
    static_uj: float
    #: Schedule makespan in nanoseconds (0.0 for empty schedules).
    makespan_ns: float = 0.0
    details: dict[str, float] = field(default_factory=dict)

    @property
    def total_uj(self) -> float:
        """Total inference energy in microjoules."""
        return self.mvm_uj + self.noc_uj + self.static_uj

    @property
    def is_degenerate(self) -> bool:
        """Whether this report describes a zero-cycle schedule."""
        return self.makespan_ns == 0.0

    @property
    def average_power_mw(self) -> float:
        """Mean power over the inference, in milliwatts.

        Zero for degenerate (zero-cycle) schedules rather than a
        division by zero.
        """
        if self.makespan_ns == 0.0:
            return 0.0
        # uJ / ns = kW; convert to mW.
        return self.total_uj / self.makespan_ns * 1e6

    @property
    def energy_per_active_cycle_nj(self) -> float:
        """Mean energy per active PE-cycle, in nanojoules (0 if none)."""
        active = self.details.get("active_pe_cycles", 0.0)
        if active == 0.0:
            return 0.0
        return self.total_uj * 1e3 / active

    def summary(self) -> str:
        """One-line human-readable breakdown."""
        return (
            f"{self.config_name}: {self.total_uj:.1f} uJ "
            f"(MVM {self.mvm_uj:.1f}, NoC {self.noc_uj:.1f}, "
            f"static {self.static_uj:.1f})"
        )


def estimate_energy(
    compiled: CompiledModel, config: EnergyModelConfig = EnergyModelConfig()
) -> EnergyReport:
    """Estimate the inference energy of a compiled configuration.

    MVM energy is schedule-independent (total active PE-cycles are
    invariant); NoC energy depends on the placement and set structure;
    static energy scales with the makespan — so faster schedules save
    static energy, and duplication trades extra NoC traffic for it.

    A zero-cycle schedule (empty model) yields a well-defined all-zero
    report — every term of the model is proportional to activity or
    makespan, and the report's derived ratios guard their divisions.
    """
    if compiled.schedule.makespan == 0:
        return EnergyReport(
            config_name=compiled.options.paper_name,
            mvm_uj=0.0,
            noc_uj=0.0,
            static_uj=0.0,
            makespan_ns=0.0,
            details={"active_pe_cycles": 0.0},
        )

    active = active_pe_cycles(compiled.schedule, compiled.placement)
    mvm_nj = config.mvm_energy_nj * sum(active.values())

    noc_nj = 0.0
    if compiled.dependencies is not None:
        noc = compiled.arch.build_noc()
        sets = compiled.dependencies.sets
        shapes = compiled.mapped.infer_shapes()
        home_tile = {
            layer: compiled.placement.tiles_of(layer)[0]
            for layer in compiled.placement.pe_ranges
        }
        for (layer, _index), preds in compiled.dependencies.deps.items():
            dst = home_tile[layer]
            for pred_layer, pred_index in preds:
                rect = sets[pred_layer][pred_index]
                payload = (
                    rect.area
                    * shapes[pred_layer].channels
                    * config.bytes_per_element
                )
                hops = noc.hops(home_tile[pred_layer], dst)
                noc_nj += config.noc_energy_nj_per_byte_hop * payload * hops

    makespan_ns = compiled.latency_ns
    static_mw = config.static_power_mw_per_pe * compiled.arch.num_pes
    # mW * ns = pJ; convert to nJ.
    static_nj = static_mw * makespan_ns / 1e3

    return EnergyReport(
        config_name=compiled.options.paper_name,
        mvm_uj=mvm_nj / 1e3,
        noc_uj=noc_nj / 1e3,
        static_uj=static_nj / 1e3,
        makespan_ns=makespan_ns,
        details={"active_pe_cycles": float(sum(active.values()))},
    )
