"""Event-driven system-level simulator.

The analytical schedulers in :mod:`repro.core` compute start times in
one pass under the paper's cost-free forwarding assumption.  This
engine *executes* schedules as a discrete-event simulation, serving two
purposes:

1. **Validation** — replaying a schedule with zero transfer costs must
   reproduce the analytical makespan exactly (asserted in tests),
   confirming that the one-pass schedulers and the event-driven
   semantics agree.
2. **Cost-model ablation** — with a :class:`~repro.sim.noc_cost.NocCostModel`,
   dependency edges acquire transfer delays and the engine re-schedules
   dynamically, quantifying the paper's future-work concern that data
   movement may erode cross-layer gains.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..core.dependencies import DependencyGraph, SetRef
from ..core.kernels import csr_replay, set_graph_arrays
from ..core.pipeline import CompiledModel
from ..core.schedule import Schedule, SetTask


class EdgeCostModel(Protocol):
    """Anything that prices a dependency edge in cycles."""

    def edge_delay_cycles(
        self, producer: SetRef, consumer: SetRef, dependency_graph: DependencyGraph
    ) -> int: ...


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    schedule: Schedule
    finish_cycles: int
    events_processed: int
    #: Total edge delay charged, in cycle-edges (0 without a cost model).
    total_edge_delay_cycles: int = 0
    #: Per-layer idle cycles between that layer's first start and last end.
    per_layer_stall: dict[str, int] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return self.schedule.num_tasks


def simulate(
    compiled: CompiledModel,
    cost_model: Optional[EdgeCostModel] = None,
) -> SimulationResult:
    """Execute a compiled model's set graph as a discrete-event simulation.

    Requires a CLSA-CIM compilation (``dependencies`` present).  With no
    cost model the result's ``finish_cycles`` equals the analytical
    schedule's makespan; with a cost model the engine re-schedules with
    per-edge delays (data arrives ``delay`` cycles after the producer
    set completes).

    The zero-cost replay runs on the columnar CSR kernels when the
    compilation used ``engine='csr'`` (the default) — integer heaps
    over preallocated arrays, no per-event dict churn — and on the
    reference event loop below otherwise (or whenever a cost model
    makes per-edge pricing necessary).  Both paths produce the same
    schedule and stall profile.
    """
    if compiled.dependencies is None:
        raise ValueError(
            "simulate() needs set-level dependencies; compile with "
            "scheduling='clsa-cim' (the layer-by-layer baseline has no set graph)"
        )
    dependency_graph = compiled.dependencies

    if cost_model is None and getattr(compiled.options, "engine", "csr") == "csr":
        schedule, stalls, events_processed = csr_replay(
            set_graph_arrays(dependency_graph), compiled.schedule.policy
        )
        return SimulationResult(
            schedule=schedule,
            finish_cycles=schedule.makespan,
            events_processed=events_processed,
            total_edge_delay_cycles=0,
            per_layer_stall=stalls,
        )

    sets = dependency_graph.sets

    remaining: dict[SetRef, int] = {}
    consumers: dict[SetRef, list[SetRef]] = {}
    for ref, preds in dependency_graph.deps.items():
        remaining[ref] = len(preds)
        for pred in preds:
            consumers.setdefault(pred, []).append(ref)

    ready: dict[str, list[tuple[int, int]]] = {layer: [] for layer in sets}
    layer_free: dict[str, int] = {layer: 0 for layer in sets}
    layer_busy: dict[str, bool] = {layer: False for layer in sets}
    data_ready_at: dict[SetRef, int] = {ref: 0 for ref in remaining}
    events: list[tuple[int, str, int]] = []
    schedule = Schedule(policy=compiled.schedule.policy)
    total_edge_delay = 0
    events_processed = 0

    # Ready-queue policy: without a cost model, order by set index —
    # identical to the analytical dynamic scheduler, so the replay
    # reproduces its makespan exactly.  With a cost model, order by
    # data arrival (FIFO forwarding), tie-broken by set index.
    def ready_key(arrival: int, set_index: int) -> tuple[int, int]:
        if cost_model is None:
            return (set_index, arrival)
        return (arrival, set_index)

    def try_start(layer: str, now: int) -> None:
        if layer_busy[layer] or not ready[layer]:
            return
        key_a, key_b = heapq.heappop(ready[layer])
        arrival, set_index = (key_b, key_a) if cost_model is None else (key_a, key_b)
        rect = sets[layer][set_index]
        start = max(now, layer_free[layer], arrival)
        end = start + rect.area
        schedule.tasks.append(
            SetTask(layer=layer, set_index=set_index, rect=rect, start=start, end=end)
        )
        layer_busy[layer] = True
        layer_free[layer] = end
        heapq.heappush(events, (end, layer, set_index))

    for ref, count in remaining.items():
        if count == 0:
            heapq.heappush(ready[ref[0]], ready_key(0, ref[1]))
    for layer in sets:
        try_start(layer, 0)

    while events:
        now, layer, set_index = heapq.heappop(events)
        events_processed += 1
        layer_busy[layer] = False
        producer_ref = (layer, set_index)
        for consumer_ref in consumers.get(producer_ref, ()):  # deliver data
            delay = 0
            if cost_model is not None:
                delay = cost_model.edge_delay_cycles(
                    producer_ref, consumer_ref, dependency_graph
                )
                total_edge_delay += delay
            arrival = now + delay
            data_ready_at[consumer_ref] = max(data_ready_at[consumer_ref], arrival)
            remaining[consumer_ref] -= 1
            if remaining[consumer_ref] == 0:
                heapq.heappush(
                    ready[consumer_ref[0]],
                    ready_key(data_ready_at[consumer_ref], consumer_ref[1]),
                )
                try_start(consumer_ref[0], now)
        try_start(layer, now)

    if len(schedule.tasks) != dependency_graph.num_sets():  # pragma: no cover
        raise AssertionError(
            f"simulation completed {len(schedule.tasks)} of "
            f"{dependency_graph.num_sets()} sets"
        )

    stalls = {
        layer: (span_end - span_start) - busy
        for layer, (span_start, span_end, busy) in schedule.per_layer_stats().items()
    }

    return SimulationResult(
        schedule=schedule,
        finish_cycles=schedule.makespan,
        events_processed=events_processed,
        total_edge_delay_cycles=total_edge_delay,
        per_layer_stall=stalls,
    )
