"""Optional data-movement cost model (the paper's Sec. V-C future work).

The paper's headline results assume partial-result forwarding is free;
Section V-C acknowledges that "depending on the topology, forwarding
partial results may incur varying costs".  This module quantifies that
sensitivity: every set-level dependency edge is charged the NoC latency
of moving the producer set's payload from the producer's tile to the
consumer's tile (XY-routed mesh), optionally bouncing through global
DRAM when the payload exceeds the consumer's input buffer.  An optional
GPEU term charges the non-base operations between the two layers.

Used by :func:`repro.sim.engine.simulate` to re-schedule with edge
delays, and by the ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.noc import MeshNoc
from ..core.dependencies import DependencyGraph, SetRef
from ..ir.graph import Graph
from ..mapping.placement import Placement


@dataclass(frozen=True)
class CostModelConfig:
    """Knobs of the data-movement cost model."""

    #: Bytes per activation element (quantized activations).
    bytes_per_element: int = 1
    #: Charge DRAM round trips for payloads exceeding the input buffer.
    model_buffer_spills: bool = True
    #: Charge GPEU time for non-base ops (elements / throughput cycles).
    model_gpeu: bool = False

    def __post_init__(self) -> None:
        if self.bytes_per_element < 1:
            raise ValueError("bytes_per_element must be >= 1")


class NocCostModel:
    """Per-dependency-edge delay in cycles.

    The delay of edge ``(producer set) -> (consumer set)`` is the NoC
    transfer latency of the producer set's payload between the two
    layers' home tiles, converted to t_MVM cycles (rounded up).
    """

    def __init__(
        self,
        graph: Graph,
        placement: Placement,
        config: CostModelConfig = CostModelConfig(),
    ) -> None:
        self.graph = graph
        self.placement = placement
        self.config = config
        self.arch = placement.arch
        self.noc: MeshNoc = self.arch.build_noc()
        self._shapes = graph.infer_shapes()
        # Home tile of a layer: the tile hosting its first PE.
        self._home_tile = {
            layer: self.placement.tiles_of(layer)[0]
            for layer in self.placement.pe_ranges
        }
        self._channels = {
            layer: self._shapes[layer].channels for layer in self.placement.pe_ranges
        }

    def payload_bytes(self, producer: SetRef, sets: dict) -> int:
        """Bytes of one producer set's output (rect area x channels)."""
        layer, index = producer
        rect = sets[layer][index]
        return rect.area * self._channels[layer] * self.config.bytes_per_element

    def edge_delay_cycles(
        self, producer: SetRef, consumer: SetRef, dependency_graph: DependencyGraph
    ) -> int:
        """Delay in cycles charged on one dependency edge."""
        src = self._home_tile[producer[0]]
        dst = self._home_tile[consumer[0]]
        payload = self.payload_bytes(producer, dependency_graph.sets)
        latency_ns = self.noc.transfer_latency_ns(src, dst, payload)
        if (
            self.config.model_buffer_spills
            and payload > self.arch.tile.input_buffer_bytes
        ):
            latency_ns += self.noc.dram_round_trip_ns(payload)
        if self.config.model_gpeu:
            latency_ns += self._gpeu_ns(payload)
        return math.ceil(latency_ns / self.arch.t_mvm_ns)

    def _gpeu_ns(self, payload_bytes: int) -> float:
        """Crude GPEU occupancy: elements / throughput, in nanoseconds."""
        elements = payload_bytes / self.config.bytes_per_element
        cycles = elements / self.arch.tile.gpeu.throughput_per_cycle
        return cycles * self.arch.t_mvm_ns


class ZeroCostModel:
    """The paper's headline assumption: forwarding is free."""

    def edge_delay_cycles(
        self, producer: SetRef, consumer: SetRef, dependency_graph: DependencyGraph
    ) -> int:
        return 0
