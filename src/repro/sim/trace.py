"""Execution traces and Gantt-style exports (Fig. 6a/6b of the paper).

Figures 6(a) and 6(b) visualize PE activity over time for the
layer-by-layer and CLSA-CIM schedules.  This module converts schedules
into per-layer activity records, per-PE records, CSV rows, JSON, and a
terminal-friendly ASCII Gantt chart that the benchmarks print.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.pipeline import CompiledModel
from ..core.schedule import Schedule


@dataclass(frozen=True)
class ActivityRecord:
    """One contiguous busy interval of one layer (all its PEs)."""

    layer: str
    origin: str
    num_pes: int
    start: int
    end: int


def activity_records(compiled: CompiledModel) -> list[ActivityRecord]:
    """Merge each layer's back-to-back tasks into busy intervals."""
    records = []
    for layer in compiled.schedule.layers():
        tasks = sorted(compiled.schedule.tasks_of(layer), key=lambda t: t.start)
        num_pes = compiled.placement.tilings[layer].num_pes
        origin = compiled.origin_of_layer(layer)
        current_start, current_end = tasks[0].start, tasks[0].end
        for task in tasks[1:]:
            if task.start == current_end:
                current_end = task.end
            else:
                records.append(
                    ActivityRecord(layer, origin, num_pes, current_start, current_end)
                )
                current_start, current_end = task.start, task.end
        records.append(ActivityRecord(layer, origin, num_pes, current_start, current_end))
    return records


def to_csv_rows(compiled: CompiledModel) -> list[str]:
    """CSV lines (with header): layer, origin, num_pes, start, end."""
    lines = ["layer,origin,num_pes,start_cycles,end_cycles"]
    for record in activity_records(compiled):
        lines.append(
            f"{record.layer},{record.origin},{record.num_pes},"
            f"{record.start},{record.end}"
        )
    return lines


def ascii_gantt(compiled: CompiledModel, width: int = 72) -> str:
    """ASCII Gantt chart: one row per mapped base layer.

    ``#`` marks busy time, ``.`` idle time within the schedule span —
    the textual analogue of Fig. 6(a)/(b).
    """
    schedule: Schedule = compiled.schedule
    makespan = schedule.makespan
    if makespan == 0:
        return "(empty schedule)"
    lines = [
        f"{compiled.mapped.name} | {compiled.options.paper_name} | "
        f"{makespan} cycles | {compiled.arch.num_pes} PEs"
    ]
    scale = width / makespan
    for layer in schedule.layers():
        cells = ["."] * width
        for task in schedule.tasks_of(layer):
            lo = int(task.start * scale)
            hi = max(lo + 1, int(task.end * scale))
            for i in range(lo, min(hi, width)):
                cells[i] = "#"
        num_pes = compiled.placement.tilings[layer].num_pes
        lines.append(f"{layer[:28]:<28} {num_pes:>3} PE |{''.join(cells)}|")
    return "\n".join(lines)


def schedule_to_json(compiled: CompiledModel, indent: int | None = None) -> str:
    """Serialize a schedule for external tooling (e.g. trace viewers).

    The format is one task object per scheduled set, plus metadata
    identifying the model, configuration and architecture.
    """
    payload = {
        "model": compiled.mapped.name,
        "configuration": compiled.options.paper_name,
        "policy": compiled.schedule.policy,
        "num_pes": compiled.arch.num_pes,
        "t_mvm_ns": compiled.arch.t_mvm_ns,
        "makespan_cycles": compiled.schedule.makespan,
        "tasks": [
            {
                "layer": task.layer,
                "origin": compiled.origin_of_layer(task.layer),
                "set_index": task.set_index,
                "image": task.image,
                "rect": [task.rect.r0, task.rect.c0, task.rect.r1, task.rect.c1],
                "start": task.start,
                "end": task.end,
                "num_pes": compiled.placement.tilings[task.layer].num_pes,
            }
            for task in sorted(compiled.schedule.tasks, key=lambda t: t.start)
        ],
    }
    return json.dumps(payload, indent=indent)


@dataclass(frozen=True)
class PeActivity:
    """Busy intervals of one physical PE."""

    pe: int
    tile: int
    layer: str | None
    intervals: tuple[tuple[int, int], ...]

    @property
    def busy_cycles(self) -> int:
        return sum(end - start for start, end in self.intervals)


def per_pe_records(compiled: CompiledModel) -> list[PeActivity]:
    """Activity of every physical PE (the y-axis of Fig. 6a/6b).

    All PEs of a layer share its timeline (intra-layer scheduling keeps
    them in lockstep per MVM); unassigned PEs appear with ``layer=None``
    and no intervals, making idle silicon visible.
    """
    placement = compiled.placement
    per_layer_intervals: dict[str, tuple[tuple[int, int], ...]] = {}
    for record in activity_records(compiled):
        per_layer_intervals.setdefault(record.layer, ())
        per_layer_intervals[record.layer] += ((record.start, record.end),)
    pes_per_tile = placement.arch.tile.pes_per_tile
    records = []
    for pe in range(placement.arch.num_pes):
        layer = placement.layer_of_pe(pe)
        intervals = per_layer_intervals.get(layer, ()) if layer else ()
        records.append(
            PeActivity(pe=pe, tile=pe // pes_per_tile, layer=layer,
                       intervals=intervals)
        )
    return records


def utilization_timeline(compiled: CompiledModel, buckets: int = 50) -> list[float]:
    """Fraction of PEs active per time bucket (utilization over time)."""
    makespan = compiled.schedule.makespan
    if makespan == 0:
        return []
    total_pes = compiled.arch.num_pes
    bucket_cycles = makespan / buckets
    active = [0.0] * buckets
    for task in compiled.schedule.tasks:
        num_pes = compiled.placement.tilings[task.layer].num_pes
        first = int(task.start / bucket_cycles)
        last = min(int((task.end - 1e-9) / bucket_cycles), buckets - 1)
        for bucket in range(first, last + 1):
            bucket_start = bucket * bucket_cycles
            bucket_end = bucket_start + bucket_cycles
            overlap = min(task.end, bucket_end) - max(task.start, bucket_start)
            if overlap > 0:
                active[bucket] += num_pes * overlap
    return [a / (total_pes * bucket_cycles) for a in active]
