"""System-level simulator: metrics (Eqs. 2-3), engine, costs, traces."""

from .buffers import BufferReport, TileBufferStats, analyze_buffers
from .energy import EnergyModelConfig, EnergyReport, estimate_energy
from .engine import SimulationResult, simulate
from .metrics import (
    Metrics,
    active_pe_cycles,
    evaluate,
    speedup_eq3,
    utilization,
)
from .noc_cost import CostModelConfig, NocCostModel, ZeroCostModel
from .trace import (
    ActivityRecord,
    PeActivity,
    activity_records,
    ascii_gantt,
    per_pe_records,
    schedule_to_json,
    to_csv_rows,
    utilization_timeline,
)

__all__ = [
    "ActivityRecord",
    "BufferReport",
    "CostModelConfig",
    "EnergyModelConfig",
    "EnergyReport",
    "Metrics",
    "NocCostModel",
    "PeActivity",
    "SimulationResult",
    "TileBufferStats",
    "ZeroCostModel",
    "active_pe_cycles",
    "activity_records",
    "analyze_buffers",
    "ascii_gantt",
    "estimate_energy",
    "evaluate",
    "per_pe_records",
    "schedule_to_json",
    "simulate",
    "speedup_eq3",
    "to_csv_rows",
    "utilization",
    "utilization_timeline",
]
