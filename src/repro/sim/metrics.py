"""Utilization and speedup metrics (Eqs. 2 and 3 of the paper).

Utilization (Eq. 2) is the mean over all PEs of the ratio of that PE's
active cycles to the total inference time::

    Ut := (1 / #PE) * sum_p (t_p,active / t_NN)

Every PE of a base layer is active exactly while the layer computes a
set (intra-layer scheduling keeps all of a layer's PEs busy per MVM),
so a layer's ``c_i`` PEs each accumulate the layer's busy cycles.  PEs
not owned by any layer (unused budget) contribute zero.

Speedup (Eq. 3) relates two configurations through their utilizations::

    S_x,c ~= (Ut_x,c * (PE_min + x)) / (Ut_lbl * PE_min)

Under the paper's latency model, total active PE-cycles are invariant
across mapping/scheduling choices (duplication splits work, it does not
add any), which makes Eq. 3 exact — a property the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import CompiledModel
from ..core.schedule import Schedule
from ..mapping.placement import Placement


@dataclass
class Metrics:
    """Evaluation metrics of one compiled configuration.

    Attributes
    ----------
    config_name:
        The paper's configuration name (``wdup``, ``xinf``...).
    latency_cycles / latency_ns:
        Inference latency (schedule makespan).
    num_pes:
        Total PEs of the architecture (the ``#PE`` of Eq. 2).
    total_active_pe_cycles:
        ``sum_p t_p,active``; invariant across configurations.
    utilization:
        Eq. 2 value in [0, 1].
    per_layer_busy:
        Busy cycles per (mapped) base layer.
    """

    config_name: str
    latency_cycles: int
    latency_ns: float
    num_pes: int
    total_active_pe_cycles: int
    utilization: float
    per_layer_busy: dict[str, int] = field(default_factory=dict)

    def speedup_over(self, baseline: "Metrics") -> float:
        """Measured speedup: baseline latency / this latency."""
        if self.latency_cycles == 0:
            raise ZeroDivisionError("latency is zero; empty schedule?")
        return baseline.latency_cycles / self.latency_cycles

    def utilization_gain_over(self, baseline: "Metrics") -> float:
        """Utilization improvement factor (the paper's 'up to 17.9x')."""
        if baseline.utilization == 0:
            raise ZeroDivisionError("baseline utilization is zero")
        return self.utilization / baseline.utilization


def active_pe_cycles(schedule: Schedule, placement: Placement) -> dict[str, int]:
    """Active PE-cycles per layer: ``c_i * busy_i``."""
    busy = schedule.busy_cycles()
    return {
        layer: placement.tilings[layer].num_pes * cycles
        for layer, cycles in busy.items()
    }


def utilization(schedule: Schedule, placement: Placement) -> float:
    """Eq. 2: mean PE activity over the inference duration."""
    makespan = schedule.makespan
    if makespan == 0:
        return 0.0
    total_active = sum(active_pe_cycles(schedule, placement).values())
    return total_active / (placement.arch.num_pes * makespan)


def evaluate(compiled: CompiledModel) -> Metrics:
    """Compute the full metrics of one compiled configuration."""
    total_active = sum(active_pe_cycles(compiled.schedule, compiled.placement).values())
    return Metrics(
        config_name=compiled.options.paper_name,
        latency_cycles=compiled.latency_cycles,
        latency_ns=compiled.latency_ns,
        num_pes=compiled.arch.num_pes,
        total_active_pe_cycles=total_active,
        utilization=utilization(compiled.schedule, compiled.placement),
        per_layer_busy=compiled.schedule.busy_cycles(),
    )


def speedup_eq3(metrics: Metrics, baseline: Metrics) -> float:
    """Speedup predicted by Eq. 3 from utilizations and PE counts.

    Exact whenever total active PE-cycles are conserved between the two
    configurations (always true under the paper's latency model).
    """
    numerator = metrics.utilization * metrics.num_pes
    denominator = baseline.utilization * baseline.num_pes
    if denominator == 0:
        raise ZeroDivisionError("baseline utilization * PEs is zero")
    return numerator / denominator
