"""Tile buffer occupancy analysis.

Section II-A requires tiles to hold "parts of the input and output
data" in local buffers, spilling to global DRAM when they overflow.
The scheduling model itself never blocks on buffers (matching the
paper), but this analysis quantifies the pressure a schedule creates:
a producer set's output is *live* at the consumer layer's tile from the
producer's completion until the last consumer set needing it finishes.
The peak liveness per tile, compared against the configured buffer
capacity, shows how much DRAM spill traffic the Sec. II-A fallback
would absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import CompiledModel


@dataclass
class TileBufferStats:
    """Peak input-buffer occupancy of one tile."""

    tile: int
    peak_bytes: int
    capacity_bytes: int

    @property
    def overflows(self) -> bool:
        return self.peak_bytes > self.capacity_bytes


@dataclass
class BufferReport:
    """Whole-chip buffer pressure of one schedule."""

    tiles: dict[int, TileBufferStats] = field(default_factory=dict)

    @property
    def peak_bytes(self) -> int:
        """Largest per-tile peak."""
        return max((stats.peak_bytes for stats in self.tiles.values()), default=0)

    @property
    def overflowing_tiles(self) -> list[int]:
        """Tiles whose peak exceeds their input buffer."""
        return sorted(t for t, stats in self.tiles.items() if stats.overflows)

    def summary(self) -> str:
        overflow_count = len(self.overflowing_tiles)
        return (
            f"peak buffer occupancy {self.peak_bytes} B across "
            f"{len(self.tiles)} tiles; {overflow_count} tile(s) would spill "
            "to DRAM"
        )


def analyze_buffers(compiled: CompiledModel, bytes_per_element: int = 1) -> BufferReport:
    """Sweep-line peak liveness of forwarded set data per consumer tile.

    Each dependency edge contributes ``payload`` bytes to the consumer
    layer's home tile over ``[producer end, consumer end)``.  Within a
    tile, contributions are accumulated and the maximum over time
    reported.
    """
    if compiled.dependencies is None:
        raise ValueError("analyze_buffers needs a CLSA-CIM compilation")
    if bytes_per_element < 1:
        raise ValueError("bytes_per_element must be >= 1")
    shapes = compiled.mapped.infer_shapes()
    sets = compiled.dependencies.sets
    end_of = {
        (task.layer, task.set_index): task.end for task in compiled.schedule.tasks
    }
    home_tile = {
        layer: compiled.placement.tiles_of(layer)[0]
        for layer in compiled.placement.pe_ranges
    }

    # (tile, time, delta) events for a sweep per tile.
    events: dict[int, list[tuple[int, int]]] = {}
    for (layer, index), preds in compiled.dependencies.deps.items():
        consumer_end = end_of[(layer, index)]
        tile = home_tile[layer]
        for pred_layer, pred_index in preds:
            rect = sets[pred_layer][pred_index]
            payload = rect.area * shapes[pred_layer].channels * bytes_per_element
            start = end_of[(pred_layer, pred_index)]
            if consumer_end <= start:
                continue  # producer not earlier; nothing buffered
            events.setdefault(tile, []).append((start, payload))
            events.setdefault(tile, []).append((consumer_end, -payload))

    capacity = compiled.arch.tile.input_buffer_bytes
    report = BufferReport()
    for tile in range(compiled.arch.num_tiles):
        timeline = sorted(events.get(tile, ()))
        level = 0
        peak = 0
        for _, delta in timeline:
            level += delta
            peak = max(peak, level)
        report.tiles[tile] = TileBufferStats(
            tile=tile, peak_bytes=peak, capacity_bytes=capacity
        )
    return report
