"""Shared helpers for the model zoo.

All zoo models are *geometry-faithful*: layer kinds, kernel shapes,
strides, channel counts and graph topology match the published
architectures, while numeric weights are synthetic (seeded) because
scheduling results depend only on geometry (see DESIGN.md).
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph


def validate_input_shape(shape: tuple[int, int, int], name: str) -> tuple[int, int, int]:
    """Sanity-check an (H, W, C) model input shape."""
    if len(shape) != 3:
        raise ValueError(f"{name}: input shape must be (H, W, C), got {shape!r}")
    if any(int(dim) < 1 for dim in shape):
        raise ValueError(f"{name}: input dimensions must be positive, got {shape!r}")
    return (int(shape[0]), int(shape[1]), int(shape[2]))


def finish(builder: GraphBuilder) -> Graph:
    """Validate and return a finished zoo graph."""
    graph = builder.graph
    graph.topological_order()  # raises on wiring mistakes
    return graph
