"""Model zoo: the paper's benchmarks plus synthetic test models."""

from .darknet import (
    DarknetError,
    build_graph as build_darknet_graph,
    load_cfg,
    packaged_cfgs,
    parse_cfg,
    tiny_yolo_v3_from_cfg,
    tiny_yolo_v4_from_cfg,
)
from .resnet import resnet50, resnet101, resnet152
from .synthetic import tiny_csp, tiny_dual_head, tiny_residual, tiny_sequential
from .tinyyolo import tiny_yolo_v3, tiny_yolo_v4
from .vgg import vgg16, vgg19
from .zoo import (
    CASE_STUDY,
    MODELS,
    PAPER_BENCHMARKS,
    BenchmarkSpec,
    benchmark_by_name,
    build,
)

__all__ = [
    "BenchmarkSpec",
    "CASE_STUDY",
    "DarknetError",
    "MODELS",
    "PAPER_BENCHMARKS",
    "benchmark_by_name",
    "build",
    "build_darknet_graph",
    "load_cfg",
    "packaged_cfgs",
    "parse_cfg",
    "resnet101",
    "resnet152",
    "resnet50",
    "tiny_csp",
    "tiny_dual_head",
    "tiny_residual",
    "tiny_sequential",
    "tiny_yolo_v3",
    "tiny_yolo_v3_from_cfg",
    "tiny_yolo_v4",
    "tiny_yolo_v4_from_cfg",
    "vgg16",
    "vgg19",
]
