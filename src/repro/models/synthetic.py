"""Small synthetic models for tests, examples and micro-benchmarks.

These networks are structurally representative (sequential chains,
residual branches, CSP-style splits, dual heads) but small enough that
full schedules and functional executions run in milliseconds.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import finish, validate_input_shape


def tiny_sequential(
    input_shape: tuple[int, int, int] = (32, 32, 3), width: int = 16
) -> Graph:
    """Three conv stages with pooling — the smallest realistic pipeline."""
    b = GraphBuilder("tiny_sequential")
    x = b.input(validate_input_shape(input_shape, "tiny_sequential"), name="input")
    x = b.conv_bn_act(x, width, kernel=3, strides=1, activation="relu")
    x = b.maxpool(x, 2)
    x = b.conv_bn_act(x, width * 2, kernel=3, strides=1, activation="relu")
    x = b.maxpool(x, 2)
    b.conv_bn_act(x, width * 4, kernel=3, strides=1, activation="relu")
    return finish(b)


def tiny_residual(
    input_shape: tuple[int, int, int] = (32, 32, 8), width: int = 8
) -> Graph:
    """One residual block with a projection shortcut (ResNet-style)."""
    b = GraphBuilder("tiny_residual")
    x = b.input(validate_input_shape(input_shape, "tiny_residual"), name="input")
    shortcut = b.conv2d(x, width * 2, kernel=1, strides=2, padding="same",
                        use_bias=True)
    out = b.conv2d(x, width, kernel=3, strides=2, padding="same", use_bias=True)
    out = b.relu(out)
    out = b.conv2d(out, width * 2, kernel=3, strides=1, padding="same", use_bias=True)
    out = b.add([out, shortcut])
    b.relu(out)
    return finish(b)


def tiny_csp(input_shape: tuple[int, int, int] = (32, 32, 8)) -> Graph:
    """A CSP-style channel-split block (TinyYOLOv4 backbone motif)."""
    b = GraphBuilder("tiny_csp")
    x = b.input(validate_input_shape(input_shape, "tiny_csp"), name="input")
    x = b.conv_bn_act(x, 16, kernel=3, activation="leaky_relu")
    group = b.channel_slice(x, 8, 8)
    inner1 = b.conv_bn_act(group, 8, kernel=3, activation="leaky_relu")
    inner2 = b.conv_bn_act(inner1, 8, kernel=3, activation="leaky_relu")
    merged = b.concat([inner2, inner1])
    route = b.conv_bn_act(merged, 16, kernel=1, activation="leaky_relu")
    out = b.concat([x, route])
    b.maxpool(out, 2)
    return finish(b)


def tiny_dual_head(input_shape: tuple[int, int, int] = (64, 64, 3)) -> Graph:
    """A two-headed detector-style net with an upsampling FPN path."""
    b = GraphBuilder("tiny_dual_head")
    x = b.input(validate_input_shape(input_shape, "tiny_dual_head"), name="input")
    x = b.conv_bn_act(x, 8, kernel=3, strides=2, activation="leaky_relu")
    route = b.conv_bn_act(x, 16, kernel=3, strides=1, activation="leaky_relu")
    x = b.maxpool(route, 2)
    neck = b.conv_bn_act(x, 16, kernel=3, strides=1, activation="leaky_relu")
    # Head 1 (coarse).
    b.conv2d(neck, 18, kernel=1, use_bias=True)
    # Head 2 (fine) via upsample + concat.
    y = b.conv_bn_act(neck, 8, kernel=1, activation="leaky_relu")
    y = b.upsample(y, 2)
    y = b.concat([y, route])
    y = b.conv_bn_act(y, 16, kernel=3, activation="leaky_relu")
    b.conv2d(y, 18, kernel=1, use_bias=True)
    return finish(b)
