"""ResNet-50/101/152 (He et al., 2015), bottleneck variants.

Base-layer counts match Table II: 53 / 104 / 155 convolutions
(1 stem + 3 per bottleneck block + 4 projection shortcuts), and the
256x256-crossbar PE minima reproduce exactly: 390 / 679 / 936.
The classifier head (GlobalAvgPool + Dense) is omitted by default so
the base-layer count matches the paper's; pass ``include_top=True``
for the full ImageNet classifier.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import finish, validate_input_shape

#: Bottleneck blocks per stage for each variant.
_RESNET_STAGES = {
    "resnet50": (3, 4, 6, 3),
    "resnet101": (3, 4, 23, 3),
    "resnet152": (3, 8, 36, 3),
}

#: Bottleneck "planes" (the 1x1/3x3 width) per stage.
_STAGE_PLANES = (64, 128, 256, 512)

#: Bottleneck expansion: output channels = 4 * planes.
_EXPANSION = 4


def _bottleneck(b: GraphBuilder, x: str, planes: int, stride: int, project: bool) -> str:
    """One bottleneck residual block: 1x1 -> 3x3 -> 1x1 + shortcut."""
    shortcut = x
    if project:
        shortcut = b.conv2d(
            x, planes * _EXPANSION, kernel=1, strides=stride, padding="same",
            use_bias=False,
        )
        shortcut = b.batch_norm(shortcut)
    out = b.conv2d(x, planes, kernel=1, strides=stride, padding="same", use_bias=False)
    out = b.batch_norm(out)
    out = b.relu(out)
    out = b.conv2d(out, planes, kernel=3, strides=1, padding="same", use_bias=False)
    out = b.batch_norm(out)
    out = b.relu(out)
    out = b.conv2d(out, planes * _EXPANSION, kernel=1, strides=1, padding="same",
                   use_bias=False)
    out = b.batch_norm(out)
    out = b.add([out, shortcut])
    return b.relu(out)


def _resnet(
    variant: str,
    input_shape: tuple[int, int, int],
    include_top: bool,
    num_classes: int,
) -> Graph:
    stages = _RESNET_STAGES[variant]
    b = GraphBuilder(variant)
    x = b.input(validate_input_shape(input_shape, variant), name="input")
    # Stem: 7x7/2 conv + 3x3/2 max pool.
    x = b.conv2d(x, 64, kernel=7, strides=2, padding="same", use_bias=False)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.maxpool(x, 3, strides=2, padding="same")
    for stage_index, (num_blocks, planes) in enumerate(zip(stages, _STAGE_PLANES)):
        for block_index in range(num_blocks):
            first = block_index == 0
            stride = 2 if (first and stage_index > 0) else 1
            x = _bottleneck(b, x, planes, stride=stride, project=first)
    if include_top:
        x = b.global_avgpool(x)
        x = b.flatten(x)
        b.dense(x, num_classes, use_bias=True)
    return finish(b)


def resnet50(
    input_shape: tuple[int, int, int] = (224, 224, 3),
    include_top: bool = False,
    num_classes: int = 1000,
) -> Graph:
    """ResNet-50: 53 conv base layers; 390 min PEs (Table II)."""
    return _resnet("resnet50", input_shape, include_top, num_classes)


def resnet101(
    input_shape: tuple[int, int, int] = (224, 224, 3),
    include_top: bool = False,
    num_classes: int = 1000,
) -> Graph:
    """ResNet-101: 104 conv base layers; 679 min PEs (Table II)."""
    return _resnet("resnet101", input_shape, include_top, num_classes)


def resnet152(
    input_shape: tuple[int, int, int] = (224, 224, 3),
    include_top: bool = False,
    num_classes: int = 1000,
) -> Graph:
    """ResNet-152: 155 conv base layers; 936 min PEs (Table II)."""
    return _resnet("resnet152", input_shape, include_top, num_classes)
