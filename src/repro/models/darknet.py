"""Darknet ``.cfg`` importer.

The TinyYOLO family is distributed as darknet configuration files; the
paper's TensorFlow models are conversions of those.  This module parses
the ``.cfg`` format directly into the IR, supporting every section the
tiny models use:

* ``[net]`` — input geometry;
* ``[convolutional]`` — conv (+ optional BN + activation);
* ``[maxpool]`` — max pooling;
* ``[route]`` — skip connections: concat of earlier layers, or a
  channel group slice (``groups``/``group_id``, the CSP split);
* ``[upsample]`` — nearest-neighbour upsampling;
* ``[yolo]`` — detection decode; modeled as an Identity passthrough
  (it runs on the host, not the accelerator).

Padding note: darknet's ``pad=1`` pads ``size // 2`` on *both* sides;
TensorFlow's SAME pads asymmetrically.  Output shapes are identical for
the strides used here, and the paper's Table I reports the TF
conversion's shapes (padded IFM ``(417, 417, 3)``), so this importer
maps ``pad=1`` to ``padding='same'`` — parsed models are geometrically
identical to the hand-built zoo models (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import resources
from typing import Optional

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph


class DarknetError(ValueError):
    """Raised for malformed or unsupported .cfg content."""


@dataclass
class CfgSection:
    """One ``[name]`` section with its key=value options."""

    name: str
    options: dict[str, str] = field(default_factory=dict)

    def get_int(self, key: str, default: Optional[int] = None) -> int:
        if key not in self.options:
            if default is None:
                raise DarknetError(f"[{self.name}] missing required key '{key}'")
            return default
        return int(self.options[key])

    def get_str(self, key: str, default: str = "") -> str:
        return self.options.get(key, default)

    def get_int_list(self, key: str) -> list[int]:
        raw = self.options.get(key, "")
        if not raw:
            raise DarknetError(f"[{self.name}] missing required key '{key}'")
        return [int(part.strip()) for part in raw.split(",") if part.strip()]


def parse_cfg(text: str) -> list[CfgSection]:
    """Parse .cfg text into an ordered section list."""
    sections: list[CfgSection] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#")[0].split(";")[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            sections.append(CfgSection(name=line[1:-1].strip().lower()))
            continue
        if "=" not in line:
            raise DarknetError(f"cannot parse cfg line: {raw_line!r}")
        if not sections:
            raise DarknetError("cfg options found before any [section]")
        key, _, value = line.partition("=")
        sections[-1].options[key.strip()] = value.strip()
    if not sections:
        raise DarknetError("empty cfg")
    if sections[0].name != "net":
        raise DarknetError(f"cfg must start with [net], got [{sections[0].name}]")
    return sections


#: Darknet activation name -> (IR activation kind or None for linear).
_ACTIVATIONS = {
    "leaky": "leaky_relu",
    "relu": "relu",
    "linear": None,
    "logistic": "sigmoid",
}


def build_graph(sections: list[CfgSection], name: str = "darknet") -> Graph:
    """Build an IR graph from parsed cfg sections."""
    net = sections[0]
    height = net.get_int("height")
    width = net.get_int("width")
    channels = net.get_int("channels")
    b = GraphBuilder(name)
    x = b.input((height, width, channels), name="input")

    #: Per darknet layer index, the IR node holding that layer's output.
    outputs: list[str] = []

    def resolve(index: int, current: int) -> str:
        absolute = index if index >= 0 else current + index
        if not 0 <= absolute < len(outputs):
            raise DarknetError(
                f"route references layer {index} (resolved {absolute}) "
                f"but only {len(outputs)} layers exist"
            )
        return outputs[absolute]

    for section in sections[1:]:
        current = len(outputs)
        if section.name == "convolutional":
            size = section.get_int("size", 1)
            stride = section.get_int("stride", 1)
            pad = section.get_int("pad", 0)
            filters = section.get_int("filters")
            use_bn = section.get_int("batch_normalize", 0) == 1
            activation = section.get_str("activation", "linear")
            if activation not in _ACTIVATIONS:
                raise DarknetError(f"unsupported activation '{activation}'")
            if pad not in (0, 1):
                raise DarknetError(f"unsupported pad value {pad}")
            padding = "same" if pad == 1 else "valid"
            # darknet layers implicitly consume the previous layer's
            # output (the graph input for the first layer)
            producer = outputs[-1] if outputs else x
            node = b.conv2d(
                producer,
                filters,
                kernel=size,
                strides=stride,
                padding=padding,
                use_bias=not use_bn,
            )
            if use_bn:
                node = b.batch_norm(node)
            kind = _ACTIVATIONS[activation]
            if kind is not None:
                node = b.activation(node, kind, alpha=0.1)
            outputs.append(node)
        elif section.name == "maxpool":
            size = section.get_int("size", 2)
            stride = section.get_int("stride", size)
            producer = outputs[-1] if outputs else x
            outputs.append(b.maxpool(producer, size, strides=stride, padding="same"))
        elif section.name == "upsample":
            factor = section.get_int("stride", 2)
            producer = outputs[-1] if outputs else x
            outputs.append(b.upsample(producer, factor))
        elif section.name == "route":
            indices = section.get_int_list("layers")
            groups = section.get_int("groups", 1)
            if groups > 1:
                if len(indices) != 1:
                    raise DarknetError("grouped route must reference one layer")
                group_id = section.get_int("group_id", 0)
                if not 0 <= group_id < groups:
                    raise DarknetError(
                        f"group_id {group_id} out of range for groups={groups}"
                    )
                source = resolve(indices[0], current)
                source_channels = b.graph.shape_of(source).channels
                if source_channels % groups != 0:
                    raise DarknetError(
                        f"cannot split {source_channels} channels into "
                        f"{groups} groups"
                    )
                group_size = source_channels // groups
                outputs.append(
                    b.channel_slice(source, group_id * group_size, group_size)
                )
            elif len(indices) == 1:
                # single-layer route: an alias of an earlier output
                outputs.append(b.identity(resolve(indices[0], current)))
            else:
                sources = [resolve(i, current) for i in indices]
                outputs.append(b.concat(sources))
        elif section.name == "yolo":
            # detection decode runs on the host; passthrough for indexing
            producer = outputs[-1] if outputs else x
            outputs.append(b.identity(producer))
        else:
            raise DarknetError(f"unsupported section [{section.name}]")

    return b.graph


def load_cfg(text: str, name: str = "darknet") -> Graph:
    """Parse cfg text and build the IR graph."""
    return build_graph(parse_cfg(text), name=name)


def packaged_cfgs() -> list[str]:
    """Names of the darknet cfgs shipped inside the package."""
    cfg_dir = resources.files("repro.models").joinpath("cfgs")
    try:
        entries = list(cfg_dir.iterdir())
    except (FileNotFoundError, NotADirectoryError):
        return []
    return sorted(e.name for e in entries if e.name.endswith(".cfg"))


def _packaged_cfg(filename: str) -> str:
    path = resources.files("repro.models").joinpath("cfgs").joinpath(filename)
    try:
        return path.read_text(encoding="utf-8")
    except FileNotFoundError:
        available = packaged_cfgs()
        listing = ", ".join(available) if available else "none"
        raise DarknetError(
            f"packaged darknet cfg '{filename}' not found "
            f"(available: {listing}); the 'cfgs/' directory is shipped "
            f"as package data — reinstall the package if it is missing"
        ) from None


def tiny_yolo_v3_from_cfg() -> Graph:
    """TinyYOLOv3 parsed from the packaged darknet cfg."""
    return load_cfg(_packaged_cfg("yolov3-tiny.cfg"), name="tinyyolov3-cfg")


def tiny_yolo_v4_from_cfg() -> Graph:
    """TinyYOLOv4 parsed from the packaged darknet cfg."""
    return load_cfg(_packaged_cfg("yolov4-tiny.cfg"), name="tinyyolov4-cfg")
