"""VGG16 / VGG19 (Simonyan & Zisserman, 2014).

The paper's Table II counts only the convolutional layers as base
layers (13 for VGG16, 16 for VGG19) and reports minimum PE requirements
of 233 and 314 on 256x256 crossbars — both reproduced exactly by these
definitions.  The fully connected head is therefore omitted by default
(``include_top=False``); pass ``include_top=True`` for the 3-FC
classifier variant.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import finish, validate_input_shape

#: Convs per block for each variant.
_VGG_BLOCKS = {
    "vgg16": (2, 2, 3, 3, 3),
    "vgg19": (2, 2, 4, 4, 4),
}

#: Output channels per block (both variants).
_VGG_CHANNELS = (64, 128, 256, 512, 512)


def _vgg(
    variant: str,
    input_shape: tuple[int, int, int],
    include_top: bool,
    num_classes: int,
) -> Graph:
    blocks = _VGG_BLOCKS[variant]
    b = GraphBuilder(variant)
    x = b.input(validate_input_shape(input_shape, variant), name="input")
    for convs, channels in zip(blocks, _VGG_CHANNELS):
        for _ in range(convs):
            x = b.conv2d(x, channels, kernel=3, padding="same", use_bias=True)
            x = b.relu(x)
        x = b.maxpool(x, 2)
    if include_top:
        x = b.flatten(x)
        x = b.dense(x, 4096, use_bias=True)
        x = b.relu(x)
        x = b.dense(x, 4096, use_bias=True)
        x = b.relu(x)
        b.dense(x, num_classes, use_bias=True)
    return finish(b)


def vgg16(
    input_shape: tuple[int, int, int] = (224, 224, 3),
    include_top: bool = False,
    num_classes: int = 1000,
) -> Graph:
    """VGG16: 13 conv base layers; 233 min PEs at 256x256 (Table II)."""
    return _vgg("vgg16", input_shape, include_top, num_classes)


def vgg19(
    input_shape: tuple[int, int, int] = (224, 224, 3),
    include_top: bool = False,
    num_classes: int = 1000,
) -> Graph:
    """VGG19: 16 conv base layers; 314 min PEs at 256x256 (Table II)."""
    return _vgg("vgg19", input_shape, include_top, num_classes)
