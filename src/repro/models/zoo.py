"""Model registry and the paper's benchmark list (Table II).

``PAPER_BENCHMARKS`` carries the expected structural numbers from the
paper so tests and benchmarks can assert exact reproduction:
base-layer counts and minimum 256x256-crossbar PE requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.graph import Graph
from .resnet import resnet50, resnet101, resnet152
from .synthetic import tiny_csp, tiny_dual_head, tiny_residual, tiny_sequential
from .tinyyolo import tiny_yolo_v3, tiny_yolo_v4
from .vgg import vgg16, vgg19

#: All zoo constructors, keyed by canonical model name.
MODELS: dict[str, Callable[[], Graph]] = {
    "tinyyolov3": tiny_yolo_v3,
    "tinyyolov4": tiny_yolo_v4,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet50": resnet50,
    "resnet101": resnet101,
    "resnet152": resnet152,
    "tiny_sequential": tiny_sequential,
    "tiny_residual": tiny_residual,
    "tiny_csp": tiny_csp,
    "tiny_dual_head": tiny_dual_head,
}


def build(name: str) -> Graph:
    """Instantiate a zoo model by name."""
    if name not in MODELS:
        raise KeyError(f"unknown model '{name}'; available: {sorted(MODELS)}")
    return MODELS[name]()


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the paper's Table II (plus the Table I case study)."""

    name: str
    input_shape: tuple[int, int, int]
    #: Expected base-layer (conv) count from Table I/II.
    base_layers: int
    #: Expected minimum 256x256 PE requirement from Table I/II.
    min_pes: int

    def build(self) -> Graph:
        """Instantiate the model."""
        return build(self.name)


#: Table II rows, in the paper's order, plus the TinyYOLOv4 case study
#: (Table I / Sec. V-A: 21 named convs, 117 minimum PEs).
PAPER_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("tinyyolov3", (416, 416, 3), base_layers=13, min_pes=142),
    BenchmarkSpec("vgg16", (224, 224, 3), base_layers=13, min_pes=233),
    BenchmarkSpec("vgg19", (224, 224, 3), base_layers=16, min_pes=314),
    BenchmarkSpec("resnet50", (224, 224, 3), base_layers=53, min_pes=390),
    BenchmarkSpec("resnet101", (224, 224, 3), base_layers=104, min_pes=679),
    BenchmarkSpec("resnet152", (224, 224, 3), base_layers=155, min_pes=936),
)

#: The Section V-A case-study model (Table I).
CASE_STUDY = BenchmarkSpec("tinyyolov4", (416, 416, 3), base_layers=21, min_pes=117)


def benchmark_by_name(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec (Table II rows or the case study)."""
    for spec in PAPER_BENCHMARKS + (CASE_STUDY,):
        if spec.name == name:
            return spec
    raise KeyError(f"no paper benchmark named '{name}'")
