"""TinyYOLOv3 and TinyYOLOv4 object detectors.

These are the paper's showcase models: non-sequential detection
networks with two output heads.  Geometry is faithful to the darknet
configurations:

* **TinyYOLOv3** — 13 convolutions, 416x416x3 input, minimum PE
  requirement 142 at 256x256 crossbars (Table II row 1).
* **TinyYOLOv4** — CSPDarknet53-tiny backbone with route-group channel
  splits, 21 convolutions named ``conv2d`` ... ``conv2d_20`` exactly as
  in the paper's Table I, minimum PE requirement 117.

Note on the conv count: the paper's prose says "TinyYOLOv4 has 18
Conv2D layers", but its own Table I names layers up to ``conv2d_20``
(21 convolutions) and the stated PE minimum of 117 is reached exactly
by the full 21-conv topology implemented here (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import finish, validate_input_shape

#: LeakyReLU slope used by darknet.
_LEAKY_ALPHA = 0.1


def _conv_block(b: GraphBuilder, x: str, channels: int, kernel: int, stride: int = 1) -> str:
    """Darknet convolutional block: conv (no bias) + BN + LeakyReLU."""
    return b.conv_bn_act(
        x, channels, kernel=kernel, strides=stride, padding="same",
        activation="leaky_relu", alpha=_LEAKY_ALPHA,
    )


def _head_conv(b: GraphBuilder, x: str, channels: int) -> str:
    """YOLO detection head: linear 1x1 conv with bias, no BN."""
    return b.conv2d(x, channels, kernel=1, strides=1, padding="same", use_bias=True)


def tiny_yolo_v3(
    input_shape: tuple[int, int, int] = (416, 416, 3),
    num_classes: int = 80,
) -> Graph:
    """TinyYOLOv3: 13 convs, heads at 13x13 and 26x26.

    Head channels are ``3 * (num_classes + 5)`` = 255 for COCO.
    """
    head_channels = 3 * (num_classes + 5)
    b = GraphBuilder("tinyyolov3")
    x = b.input(validate_input_shape(input_shape, "tinyyolov3"), name="input")

    x = _conv_block(b, x, 16, 3)            # conv2d
    x = b.maxpool(x, 2, padding="same")     # -> 208
    x = _conv_block(b, x, 32, 3)            # conv2d_1
    x = b.maxpool(x, 2, padding="same")     # -> 104
    x = _conv_block(b, x, 64, 3)            # conv2d_2
    x = b.maxpool(x, 2, padding="same")     # -> 52
    x = _conv_block(b, x, 128, 3)           # conv2d_3
    x = b.maxpool(x, 2, padding="same")     # -> 26
    route = _conv_block(b, x, 256, 3)       # conv2d_4 (route to FPN)
    x = b.maxpool(route, 2, padding="same")  # -> 13
    x = _conv_block(b, x, 512, 3)           # conv2d_5
    x = b.maxpool(x, 2, strides=1, padding="same")  # stride-1 pool keeps 13
    x = _conv_block(b, x, 1024, 3)          # conv2d_6
    neck = _conv_block(b, x, 256, 1)        # conv2d_7 (route to both heads)

    # Head 1 at 13x13.
    y1 = _conv_block(b, neck, 512, 3)       # conv2d_8
    _head_conv(b, y1, head_channels)        # conv2d_9

    # Head 2 at 26x26 via upsampled FPN path.
    y2 = _conv_block(b, neck, 128, 1)       # conv2d_10
    y2 = b.upsample(y2, 2)                  # -> 26
    y2 = b.concat([y2, route])              # 128 + 256 = 384 channels
    y2 = _conv_block(b, y2, 256, 3)         # conv2d_11
    _head_conv(b, y2, head_channels)        # conv2d_12

    return finish(b)


def _csp_block(b: GraphBuilder, x: str, channels: int) -> tuple[str, str]:
    """CSPDarknet53-tiny block (darknet route groups=2, group_id=1).

    ``x`` has ``channels`` channels.  Returns ``(output, route)`` where
    ``output`` has ``2 * channels`` channels (pre-pooling) and ``route``
    is the inner 1x1 conv output used by the FPN in the last block.
    """
    half = channels // 2
    # Second half of the channels (group_id=1).
    group = b.channel_slice(x, half, half)
    inner1 = _conv_block(b, group, half, 3)
    inner2 = _conv_block(b, inner1, half, 3)
    merged = b.concat([inner2, inner1])
    route = _conv_block(b, merged, channels, 1)
    output = b.concat([x, route])
    return output, route


def tiny_yolo_v4(
    input_shape: tuple[int, int, int] = (416, 416, 3),
    num_classes: int = 80,
) -> Graph:
    """TinyYOLOv4: CSPDarknet53-tiny backbone, 21 convs, 117 min PEs.

    Convolution names follow the paper's Table I (``conv2d`` ...
    ``conv2d_20``); the builder's TensorFlow-style auto-naming produces
    them in construction order.
    """
    head_channels = 3 * (num_classes + 5)
    b = GraphBuilder("tinyyolov4")
    x = b.input(validate_input_shape(input_shape, "tinyyolov4"), name="input")

    x = _conv_block(b, x, 32, 3, stride=2)   # conv2d      -> 208
    x = _conv_block(b, x, 64, 3, stride=2)   # conv2d_1    -> 104
    x = _conv_block(b, x, 64, 3)             # conv2d_2

    x, _ = _csp_block(b, x, 64)              # conv2d_3..5, out 128 ch
    x = b.maxpool(x, 2, padding="same")      # -> 52
    x = _conv_block(b, x, 128, 3)            # conv2d_6

    x, _ = _csp_block(b, x, 128)             # conv2d_7..9, out 256 ch
    x = b.maxpool(x, 2, padding="same")      # -> 26
    x = _conv_block(b, x, 256, 3)            # conv2d_10

    x, fpn_route = _csp_block(b, x, 256)     # conv2d_11..13, out 512 ch
    x = b.maxpool(x, 2, padding="same")      # -> 13
    x = _conv_block(b, x, 512, 3)            # conv2d_14

    neck = _conv_block(b, x, 256, 1)         # conv2d_15

    # Head 1 at 13x13.
    y1 = _conv_block(b, neck, 512, 3)        # conv2d_16 (Table I row)
    _head_conv(b, y1, head_channels)         # conv2d_17 (Table I row)

    # Head 2 at 26x26 via upsampled FPN path.
    y2 = _conv_block(b, neck, 128, 1)        # conv2d_18
    y2 = b.upsample(y2, 2)                   # -> 26
    y2 = b.concat([y2, fpn_route])           # 128 + 256 = 384 channels
    y2 = _conv_block(b, y2, 256, 3)          # conv2d_19
    _head_conv(b, y2, head_channels)         # conv2d_20 (Table I row)

    return finish(b)
