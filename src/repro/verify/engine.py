"""The verification engine: contexts, rule execution, and entry points.

A :class:`VerifyContext` bundles whatever compilation artifacts a
caller has — anywhere from a bare :class:`~repro.ir.graph.Graph` to a
full :class:`~repro.core.pipeline.CompiledModel` — and memoizes the
derived structures the rules share (dependency graph, CSR lowering,
hazard table, shapes).  :func:`verify_context` runs every registered
rule whose requirements the context satisfies and returns a
:class:`VerifyReport`.

Loaded artifacts verify identically to fresh compiles: the default
artifact format omits the dependency graph, so :meth:`VerifyContext.dep_graph`
recomputes it from the mapped graph and the Stage I sets on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

from .diagnostics import Diagnostic, Severity, VerifyReport
from .registry import RULE_FIELDS, resolve_rule, rule_names, rules_for

# Rule packs register their built-in rules at import time.
from . import hazards, rules_arch, rules_ir  # noqa: F401  (registration side effect)

if TYPE_CHECKING:
    from ..arch.config import ArchitectureConfig
    from ..core.dependencies import DependencyGraph
    from ..core.kernels import SetGraphArrays
    from ..core.pipeline import CompiledModel
    from ..core.schedule import Schedule, ScheduleColumns
    from ..ir.graph import Graph
    from ..ir.tensor import Rect, Shape
    from ..mapping.placement import Placement
    from ..mapping.rewrite import RewriteReport
    from .hazards import HazardTable


@dataclass
class VerifyContext:
    """Everything a verification run may look at, mostly optional."""

    graph: Optional["Graph"] = None
    arch: Optional["ArchitectureConfig"] = None
    mapped: Optional["Graph"] = None
    placement: Optional["Placement"] = None
    rewrite: Optional["RewriteReport"] = None
    sets: Optional[dict[str, list["Rect"]]] = None
    dependencies: Optional["DependencyGraph"] = None
    schedule: Optional["Schedule"] = None
    target: str = ""
    _memo: dict[str, Any] = field(default_factory=dict, repr=False)

    def available(self) -> frozenset[str]:
        """Context fields rules may require.

        ``dependencies`` counts as available when the graph is either
        present or recomputable from the mapped graph + Stage I sets
        (the save/load path drops it by default).
        """
        have = {
            name
            for name in RULE_FIELDS
            if name != "dependencies" and getattr(self, name) is not None
        }
        if self.dependencies is not None or (
            self.mapped is not None and self.sets
        ):
            have.add("dependencies")
        return frozenset(have)

    # -- memoized derived structures ----------------------------------

    def _memoized(self, key: str, compute: Any) -> Any:
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]

    def dep_graph(self) -> "DependencyGraph":
        """The dependency graph, recomputed from mapped+sets if absent."""

        def compute() -> "DependencyGraph":
            if self.dependencies is not None:
                return self.dependencies
            from ..core.dependencies import determine_dependencies

            return determine_dependencies(self.mapped, self.sets)

        return self._memoized("dep_graph", compute)

    def arrays(self) -> "SetGraphArrays":
        """The CSR lowering of :meth:`dep_graph` (memoized)."""

        def compute() -> "SetGraphArrays":
            from ..core.kernels import set_graph_arrays

            return set_graph_arrays(self.dep_graph())

        return self._memoized("arrays", compute)

    def columns(self) -> Optional["ScheduleColumns"]:
        """The schedule in columnar form, or ``None`` without a schedule."""

        def compute() -> Optional["ScheduleColumns"]:
            if self.schedule is None:
                return None
            return self.schedule.columns()

        return self._memoized("columns", compute)

    def hazard_table(self) -> tuple[Optional["HazardTable"], list[Diagnostic]]:
        """Schedule rows scattered onto the gid space (memoized)."""

        def compute() -> tuple[Optional["HazardTable"], list[Diagnostic]]:
            from .hazards import build_table

            return build_table(self.arrays(), self.columns())

        return self._memoized("hazard_table", compute)

    def shapes(self) -> Optional[dict[str, "Shape"]]:
        """Inferred shapes of the mapped graph, or ``None`` on failure."""

        def compute() -> Optional[dict[str, "Shape"]]:
            if self.mapped is None:
                return None
            try:
                return self.mapped.infer_shapes()
            except Exception:  # noqa: BLE001 - ir.structure reports this
                return None

        return self._memoized("shapes", compute)

    def topo_order(self) -> Optional[list[str]]:
        """Topological order of ``graph``, or ``None`` when cyclic/broken."""

        def compute() -> Optional[list[str]]:
            try:
                return self.graph.topological_order()
            except Exception:  # noqa: BLE001 - ir.structure reports this
                return None

        return self._memoized("topo_order", compute)

    def graph_shapes(self) -> Optional[dict[str, "Shape"]]:
        """Inferred shapes of ``graph``, or ``None`` when inference fails."""

        def compute() -> Optional[dict[str, "Shape"]]:
            try:
                return self.graph.infer_shapes()
            except Exception:  # noqa: BLE001 - ir.structure reports this
                return None

        return self._memoized("graph_shapes", compute)


def verify_context(
    ctx: VerifyContext,
    *,
    rules: Optional[Iterable[str]] = None,
    cost: Optional[str] = None,
) -> VerifyReport:
    """Run all applicable rules over ``ctx`` and collect a report.

    ``rules`` restricts to an explicit selection; ``cost="cheap"``
    drops the expensive rules (used by the ``each_pass`` verify mode
    and the scheduler fast paths).  A rule that raises is itself
    reported as an error diagnostic instead of aborting the run.
    """
    available = ctx.available()
    selected = rules_for(available, names=rules, cost=cost)
    if rules is not None:
        requested = [resolve_rule(name).name for name in rules]
        skipped = tuple(
            name for name in requested if name not in {r.name for r in selected}
        )
    else:
        skipped = tuple(
            name
            for name in rule_names()
            if name not in {r.name for r in selected}
        )
    report = VerifyReport(
        target=ctx.target,
        rules_run=tuple(rule.name for rule in selected),
        rules_skipped=skipped,
    )
    for rule in selected:
        try:
            found = list(rule.check(ctx))
        except Exception as exc:  # noqa: BLE001 - rule crashes become findings
            found = [
                Diagnostic(
                    rule=rule.name,
                    severity=Severity.ERROR,
                    message=f"rule crashed: {exc!r}",
                    hint="fix or unregister the offending rule",
                )
            ]
        report.extend(found)
    report.diagnostics.sort(key=lambda d: (-int(d.severity), d.rule, d.message))
    return report


def verify_graph(
    graph: "Graph",
    arch: Optional["ArchitectureConfig"] = None,
    *,
    rules: Optional[Iterable[str]] = None,
) -> VerifyReport:
    """Verify a bare graph (IR rules; arch rules too when ``arch`` given)."""
    ctx = VerifyContext(graph=graph, arch=arch, target=graph.name)
    return verify_context(ctx, rules=rules)


def verify_compiled(
    compiled: "CompiledModel",
    *,
    rules: Optional[Iterable[str]] = None,
    cost: Optional[str] = None,
) -> VerifyReport:
    """Verify a compilation end to end — fresh or loaded from disk."""
    ctx = context_for(compiled)
    return verify_context(ctx, rules=rules, cost=cost)


def verify_artifact(
    path: Any,
    *,
    rules: Optional[Iterable[str]] = None,
    cost: Optional[str] = None,
) -> VerifyReport:
    """Load a saved ``CompiledModel`` artifact and verify it."""
    from ..ir.serialize import load_compiled

    return verify_compiled(load_compiled(path), rules=rules, cost=cost)


def context_for(compiled: "CompiledModel", target: str = "") -> VerifyContext:
    """Build a :class:`VerifyContext` from a ``CompiledModel``."""
    return VerifyContext(
        graph=compiled.canonical,
        arch=compiled.arch,
        mapped=compiled.mapped,
        placement=compiled.placement,
        rewrite=compiled.rewrite,
        sets=compiled.sets or None,
        dependencies=compiled.dependencies,
        schedule=compiled.schedule,
        target=target or compiled.canonical.name,
    )


# ---------------------------------------------------------------------------
# strict graph checking (the pipeline's non-deprecated fast path)
# ---------------------------------------------------------------------------


def graph_issues(graph: "Graph") -> list[str]:
    """Error-severity IR findings as plain strings.

    Drop-in replacement for the deprecated
    ``repro.ir.validate.validate_graph`` (same messages; advisory
    warnings such as unconsumed inputs are excluded to keep parity).
    """
    report = verify_graph(graph)
    ordered = sorted(
        report.errors, key=lambda d: _IR_RULE_ORDER.get(d.rule, 99)
    )
    return [diag.message for diag in ordered]


#: Historical ``validate_graph`` reporting order, kept for shim parity.
_IR_RULE_ORDER = {
    "ir.inputs": 0,
    "ir.structure": 1,
    "ir.producers": 2,
    "ir.regions": 3,
    "ir.dead-layer": 4,
}


def assert_graph(graph: "Graph") -> None:
    """Raise :class:`~repro.ir.graph.GraphError` on any structural issue.

    Drop-in replacement for the deprecated
    ``repro.ir.validate.check_graph`` with the identical error format.
    """
    issues = graph_issues(graph)
    if issues:
        from ..ir.graph import GraphError

        raise GraphError(
            f"graph '{graph.name}' failed validation:\n  - " + "\n  - ".join(issues)
        )
