"""Rule registry for the static verifier.

Mirrors the mapping/scheduler/objective registries in
:mod:`repro.core.passes` and :mod:`repro.analysis`: built-in rules are
registered at import time and protected from removal; third-party
plugins add their own via :func:`register_rule` and the engine picks
them up automatically.

A :class:`Rule` declares which compilation artifacts it ``requires``
(``"graph"``, ``"arch"``, ``"mapped"``, ``"placement"``, ``"rewrite"``,
``"sets"``, ``"dependencies"``, ``"schedule"``) so the engine can skip
rules whose inputs are absent from a partial target (e.g. verifying a
bare :class:`~repro.ir.graph.Graph` runs only the IR rules), and a
``cost`` tier so hot paths (kernel self-validation, ``each_pass``
verify mode) can restrict themselves to the cheap rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:
    from .diagnostics import Diagnostic
    from .engine import VerifyContext

RULE_FIELDS = (
    "graph",
    "arch",
    "mapped",
    "placement",
    "rewrite",
    "sets",
    "dependencies",
    "schedule",
)

RULE_COSTS = ("cheap", "full")


@dataclass(frozen=True)
class Rule:
    """One named static check.

    ``check`` receives a :class:`~repro.verify.engine.VerifyContext`
    and yields :class:`~repro.verify.diagnostics.Diagnostic` values
    (an empty iterable means the rule is satisfied).
    """

    name: str
    check: Callable[["VerifyContext"], Iterable["Diagnostic"]]
    requires: tuple[str, ...] = ()
    cost: str = "cheap"
    description: str = ""
    builtin: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if self.cost not in RULE_COSTS:
            raise ValueError(
                f"unknown rule cost {self.cost!r}; expected one of {RULE_COSTS}"
            )
        for req in self.requires:
            if req not in RULE_FIELDS:
                raise ValueError(
                    f"rule '{self.name}' requires unknown field {req!r}; "
                    f"expected a subset of {RULE_FIELDS}"
                )


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule, *, replace: bool = False) -> Rule:
    """Register ``rule`` under its name.

    Refuses to overwrite an existing registration unless
    ``replace=True``, matching the mapping/scheduler registries.
    """
    if not replace and rule.name in _RULES:
        raise ValueError(
            f"rule '{rule.name}' is already registered; "
            "pass replace=True to override"
        )
    _RULES[rule.name] = rule
    return rule


def unregister_rule(name: str) -> None:
    """Remove a third-party rule; built-in rules cannot be removed."""
    rule = _RULES.get(name)
    if rule is None:
        raise KeyError(f"rule '{name}' is not registered")
    if rule.builtin:
        raise ValueError(f"cannot unregister built-in rule '{name}'")
    del _RULES[name]


def rule_names() -> tuple[str, ...]:
    """All registered rule names, sorted."""
    return tuple(sorted(_RULES))


def resolve_rule(name: str) -> Rule:
    """Look up one rule by name."""
    try:
        return _RULES[name]
    except KeyError:
        raise KeyError(
            f"unknown rule '{name}'; registered rules: {', '.join(sorted(_RULES))}"
        ) from None


def rules_for(
    available: Iterable[str],
    *,
    names: Optional[Iterable[str]] = None,
    cost: Optional[str] = None,
) -> tuple[Rule, ...]:
    """Rules runnable given the ``available`` context fields.

    ``names`` restricts to an explicit selection (unknown names raise),
    ``cost="cheap"`` drops the full-cost rules.  Returns rules in
    sorted-name order so reports are deterministic.
    """
    have = frozenset(available)
    if names is not None:
        selected = [resolve_rule(name) for name in names]
    else:
        selected = [_RULES[name] for name in sorted(_RULES)]
    if cost is not None:
        if cost not in RULE_COSTS:
            raise ValueError(
                f"unknown rule cost {cost!r}; expected one of {RULE_COSTS}"
            )
        if cost == "cheap":
            selected = [rule for rule in selected if rule.cost == "cheap"]
    return tuple(
        rule for rule in selected if frozenset(rule.requires) <= have
    )


def builtin(
    name: str,
    *,
    requires: tuple[str, ...] = (),
    cost: str = "cheap",
    description: str = "",
) -> Callable[
    [Callable[["VerifyContext"], Iterable["Diagnostic"]]],
    Callable[["VerifyContext"], Iterable["Diagnostic"]],
]:
    """Decorator registering a built-in rule in the defining module."""

    def wrap(
        check: Callable[["VerifyContext"], Iterable["Diagnostic"]]
    ) -> Callable[["VerifyContext"], Iterable["Diagnostic"]]:
        register_rule(
            Rule(
                name=name,
                check=check,
                requires=requires,
                cost=cost,
                description=description or (check.__doc__ or "").strip(),
                builtin=True,
            )
        )
        return check

    return wrap
