"""Structured diagnostics: the output vocabulary of the static verifier.

Every rule in :mod:`repro.verify` reports findings as
:class:`Diagnostic` values — a rule id, a :class:`Severity`, a
human-readable message, an optional :class:`Location` span (layer /
set / PE / cycle / image) and a fix-hint — instead of raising on the
first problem the way the historical ad-hoc validators did.  A
:class:`VerifyReport` aggregates the diagnostics of one verification
run and answers the common questions (``ok``, ``errors``,
``by_rule``) plus text/JSON rendering for the CLI.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally.

    ``ERROR`` marks a schedule/model/architecture that is *incorrect*
    (a hazard, a broken invariant); ``WARNING`` marks something legal
    but suspicious or costly (e.g. buffer pressure the Sec. II-A DRAM
    spill would absorb); ``INFO`` is advisory.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, value: "str | int | Severity") -> "Severity":
        """Coerce a name (``"error"``) or numeric level to a Severity."""
        if isinstance(value, Severity):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {value!r}; expected one of "
                f"{[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: any subset of layer/set/PE/cycle/image."""

    layer: Optional[str] = None
    set_index: Optional[int] = None
    pe: Optional[int] = None
    cycle: Optional[int] = None
    image: Optional[int] = None

    def __bool__(self) -> bool:
        return any(
            value is not None
            for value in (self.layer, self.set_index, self.pe, self.cycle, self.image)
        )

    def __str__(self) -> str:
        parts = []
        if self.layer is not None:
            parts.append(f"layer={self.layer}")
        if self.set_index is not None:
            parts.append(f"set={self.set_index}")
        if self.pe is not None:
            parts.append(f"pe={self.pe}")
        if self.cycle is not None:
            parts.append(f"cycle={self.cycle}")
        if self.image is not None:
            parts.append(f"image={self.image}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form with unset fields omitted."""
        record: dict[str, Any] = {}
        for key in ("layer", "set_index", "pe", "cycle", "image"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        return record


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes
    ----------
    rule:
        Registered rule id, e.g. ``"schedule.raw-race"``.
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of the problem.
    location:
        Optional :class:`Location` span the finding points at.
    hint:
        Optional fix-hint shown after the message.
    """

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    hint: Optional[str] = None

    def format(self) -> str:
        """One-line text rendering: ``error[rule] message (at ...) hint``."""
        text = f"{self.severity}[{self.rule}] {self.message}"
        if self.location:
            text += f" (at {self.location})"
        if self.hint:
            text += f" — hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of this diagnostic."""
        record: dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.location:
            record["location"] = self.location.to_dict()
        if self.hint:
            record["hint"] = self.hint
        return record


class VerificationError(AssertionError):
    """Raised by :meth:`VerifyReport.raise_if_errors` on error findings.

    Subclasses :class:`AssertionError` so callers of the historical
    raising validators keep catching the same exception class.
    """

    def __init__(self, report: "VerifyReport") -> None:
        lines = [diag.format() for diag in report.errors]
        super().__init__(
            f"verification failed with {len(lines)} error(s):\n  "
            + "\n  ".join(lines)
        )
        self.report = report


@dataclass
class VerifyReport:
    """All diagnostics of one verification run.

    ``target`` describes what was verified (model/architecture names),
    ``rules_run`` / ``rules_skipped`` record coverage: a skipped rule
    is one whose required artifacts were absent from the target.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    target: str = ""
    rules_run: tuple[str, ...] = ()
    rules_skipped: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Any:
        return iter(self.diagnostics)

    @property
    def ok(self) -> bool:
        """Whether no diagnostic reaches ``Severity.ERROR``."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Whether the run produced no diagnostics at all."""
        return not self.diagnostics

    @property
    def errors(self) -> list[Diagnostic]:
        """Diagnostics at ``Severity.ERROR``."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics at ``Severity.WARNING``."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def max_severity(self) -> Optional[Severity]:
        """The highest severity present, or ``None`` when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        """Diagnostics reported under one rule id."""
        return [d for d in self.diagnostics if d.rule == rule]

    def fired_rules(self) -> tuple[str, ...]:
        """Rule ids that reported at least one diagnostic (sorted)."""
        return tuple(sorted({d.rule for d in self.diagnostics}))

    def at_least(self, severity: "Severity | str") -> list[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        floor = Severity.parse(severity)
        return [d for d in self.diagnostics if d.severity >= floor]

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append diagnostics, dropping exact duplicates."""
        seen = {
            (d.rule, d.message, d.location, d.severity) for d in self.diagnostics
        }
        for diag in diagnostics:
            key = (diag.rule, diag.message, diag.location, diag.severity)
            if key not in seen:
                seen.add(key)
                self.diagnostics.append(diag)

    def merged(self, other: "VerifyReport") -> "VerifyReport":
        """A new report combining this one with ``other`` (deduplicated)."""
        report = replace(
            self,
            diagnostics=list(self.diagnostics),
            rules_run=tuple(dict.fromkeys(self.rules_run + other.rules_run)),
            rules_skipped=tuple(
                dict.fromkeys(self.rules_skipped + other.rules_skipped)
            ),
        )
        report.extend(other.diagnostics)
        return report

    def summary(self) -> str:
        """One-line outcome summary."""
        prefix = f"{self.target}: " if self.target else ""
        if not self.diagnostics:
            return (
                f"{prefix}clean — {len(self.rules_run)} rule(s) run, "
                "no diagnostics"
            )
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.diagnostics) - n_err - n_warn
        parts = []
        if n_err:
            parts.append(f"{n_err} error(s)")
        if n_warn:
            parts.append(f"{n_warn} warning(s)")
        if n_info:
            parts.append(f"{n_info} note(s)")
        return f"{prefix}{', '.join(parts)} from {len(self.rules_run)} rule(s)"

    def format(self) -> str:
        """Multi-line text rendering: summary plus one line per finding."""
        lines = [self.summary()]
        for diag in sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.rule)
        ):
            lines.append(f"  {diag.format()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole report."""
        return {
            "target": self.target,
            "ok": self.ok,
            "clean": self.clean,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.diagnostics)
                - len(self.errors)
                - len(self.warnings),
            },
            "rules_run": list(self.rules_run),
            "rules_skipped": list(self.rules_skipped),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def raise_if_errors(self) -> None:
        """Raise :class:`VerificationError` when any error is present."""
        if not self.ok:
            raise VerificationError(self)
