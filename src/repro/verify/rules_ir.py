"""IR rule pack: structural checks on canonical graphs.

Absorbs the checks of the historical ``repro.ir.validate`` module (now
a deprecated shim) with identical error messages, split into
independently selectable rules, plus new advisory checks the monolith
never had (unconsumed inputs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..ir.graph import GraphError
from ..ir.ops import Conv2D, Dense, Input
from ..ir.tensor import Rect
from .diagnostics import Diagnostic, Location, Severity
from .registry import builtin

if TYPE_CHECKING:
    from .engine import VerifyContext


def _error(rule: str, message: str, layer: str | None = None) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        location=Location(layer=layer),
    )


@builtin(
    "ir.inputs",
    requires=("graph",),
    description="The graph declares at least one Input node.",
)
def check_inputs(ctx: "VerifyContext") -> list[Diagnostic]:
    if not ctx.graph.input_names():
        return [_error("ir.inputs", "graph has no Input nodes")]
    return []


@builtin(
    "ir.structure",
    requires=("graph",),
    description="The graph is acyclic with resolvable edges and inferable shapes.",
)
def check_structure(ctx: "VerifyContext") -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    try:
        ctx.graph.topological_order()
    except GraphError as exc:
        return [_error("ir.structure", str(exc))]
    try:
        ctx.graph.infer_shapes()
    except Exception as exc:  # noqa: BLE001 - any inference failure is structural
        diags.append(_error("ir.structure", str(exc)))
    return diags


@builtin(
    "ir.producers",
    requires=("graph",),
    description="Every non-input node has at least one producer.",
)
def check_producers(ctx: "VerifyContext") -> list[Diagnostic]:
    order = ctx.topo_order()
    if order is None:
        return []
    diags = []
    for name in order:
        op = ctx.graph[name]
        if not isinstance(op, Input) and not op.inputs:
            diags.append(
                _error(
                    "ir.producers",
                    f"non-input node '{name}' has no producers",
                    layer=name,
                )
            )
    return diags


@builtin(
    "ir.regions",
    requires=("graph",),
    description="Backward region propagation maps every output into input bounds.",
)
def check_regions(ctx: "VerifyContext") -> list[Diagnostic]:
    order = ctx.topo_order()
    shapes = ctx.graph_shapes()
    if order is None or shapes is None:
        return []
    diags: list[Diagnostic] = []
    for name in order:
        op = ctx.graph[name]
        if isinstance(op, Input) or not op.inputs:
            continue
        input_shapes = [shapes[p] for p in op.inputs]
        out_shape = shapes[name]
        try:
            rects = op.input_regions(out_shape.full_rect(), input_shapes, out_shape)
        except Exception as exc:  # noqa: BLE001 - report as a finding
            diags.append(
                _error(
                    "ir.regions",
                    f"region propagation failed at '{name}': {exc}",
                    layer=name,
                )
            )
            continue
        if len(rects) != len(op.inputs):
            diags.append(
                _error(
                    "ir.regions",
                    f"'{name}' returned {len(rects)} input regions for "
                    f"{len(op.inputs)} inputs",
                    layer=name,
                )
            )
            continue
        for producer, rect, in_shape in zip(op.inputs, rects, input_shapes):
            bounds = Rect(0, 0, in_shape.height, in_shape.width)
            if not bounds.contains(rect):
                diags.append(
                    _error(
                        "ir.regions",
                        f"'{name}': required region {rect} of input "
                        f"'{producer}' exceeds bounds {bounds}",
                        layer=name,
                    )
                )
    return diags


@builtin(
    "ir.dead-layer",
    requires=("graph",),
    description="No base layer produces an empty output.",
)
def check_dead_layers(ctx: "VerifyContext") -> list[Diagnostic]:
    order = ctx.topo_order()
    shapes = ctx.graph_shapes()
    if order is None or shapes is None:
        return []
    return [
        _error(
            "ir.dead-layer",
            f"base layer '{name}' has an empty output",
            layer=name,
        )
        for name in order
        if isinstance(ctx.graph[name], (Conv2D, Dense))
        and shapes[name].num_elements == 0
    ]


@builtin(
    "ir.unconsumed",
    requires=("graph",),
    description="Every Input node feeds at least one consumer.",
)
def check_unconsumed(ctx: "VerifyContext") -> list[Diagnostic]:
    order = ctx.topo_order()
    if order is None:
        return []
    consumed = {
        producer for name in order for producer in ctx.graph[name].inputs
    }
    return [
        Diagnostic(
            rule="ir.unconsumed",
            severity=Severity.WARNING,
            message=f"input '{name}' is never consumed",
            location=Location(layer=name),
            hint="remove the input or wire it into the graph",
        )
        for name in ctx.graph.input_names()
        if name not in consumed
    ]
