"""Unified static verifier.

One rule-based analyzer for everything the compiler produces: IR
graphs, architecture configs, placements, Stage I set partitions, and
— via a vectorized hazard detector over the columnar schedule form —
Stage IV schedules, fresh or loaded from disk.

Entry points::

    from repro.verify import verify_compiled, verify_graph, verify_artifact

    report = verify_compiled(session.compile(graph))
    report.ok            # no error-severity findings
    print(report.format())

Third-party checks plug in through :func:`register_rule`, mirroring
the mapping/scheduler/objective registries.
"""

from .diagnostics import (
    Diagnostic,
    Location,
    Severity,
    VerificationError,
    VerifyReport,
)
from .engine import (
    VerifyContext,
    assert_graph,
    context_for,
    graph_issues,
    verify_artifact,
    verify_compiled,
    verify_context,
    verify_graph,
)
from .hazards import (
    HazardTable,
    assert_arrays_schedule,
    assert_batch_arrays_schedule,
    assert_batch_schedule,
    assert_schedule,
    build_table,
)
from .registry import (
    Rule,
    register_rule,
    resolve_rule,
    rule_names,
    rules_for,
    unregister_rule,
)

__all__ = [
    "Diagnostic",
    "HazardTable",
    "Location",
    "Rule",
    "Severity",
    "VerificationError",
    "VerifyContext",
    "VerifyReport",
    "assert_arrays_schedule",
    "assert_batch_arrays_schedule",
    "assert_batch_schedule",
    "assert_graph",
    "assert_schedule",
    "build_table",
    "context_for",
    "graph_issues",
    "register_rule",
    "resolve_rule",
    "rule_names",
    "rules_for",
    "unregister_rule",
    "verify_artifact",
    "verify_compiled",
    "verify_context",
    "verify_graph",
]
