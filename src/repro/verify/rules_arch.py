"""Architecture, placement, set-partition and duplication rule packs.

Absorbs the Section II-A requirement checks of the historical
``repro.arch.validate`` module (now a deprecated shim) with identical
messages, and adds the mapping-layer invariants that previously went
unchecked: PE range sanity and oversubscription, crossbar-capacity
consistency of the placement, Stage I set partitions, and weight
duplication bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .diagnostics import Diagnostic, Location, Severity
from .registry import builtin

if TYPE_CHECKING:
    from ..arch.config import ArchitectureConfig
    from .engine import VerifyContext

#: Cap on itemized diagnostics per rule (shared with the hazard rules).
from .hazards import MAX_DETAIL, _summarize


def _error(rule: str, message: str, **location: object) -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        location=Location(**location),  # type: ignore[arg-type]
    )


def pe_capacity_issues(pe_demand: int, arch: "ArchitectureConfig") -> list[str]:
    """The Eq. 1 weight-capacity check, shared with the legacy shim."""
    if pe_demand > arch.num_pes:
        return [
            f"model needs {pe_demand} PEs but architecture has only "
            f"{arch.num_pes} (weights must be storable at least once)"
        ]
    return []


@builtin(
    "arch.pe-capacity",
    requires=("graph", "arch"),
    description="Enough PEs to store all weights at least once (Eq. 1).",
)
def check_pe_capacity(ctx: "VerifyContext") -> list[Diagnostic]:
    from ..mapping.tiling import minimum_pe_requirement

    if ctx.graph_shapes() is None:
        return []
    demand = minimum_pe_requirement(ctx.graph, ctx.arch.crossbar)
    return [
        _error("arch.pe-capacity", message)
        for message in pe_capacity_issues(demand, ctx.arch)
    ]


@builtin(
    "arch.noc-connected",
    requires=("arch",),
    description="The NoC mesh is connected.",
)
def check_noc(ctx: "VerifyContext") -> list[Diagnostic]:
    if not ctx.arch.build_noc().is_connected():  # pragma: no cover - meshes connect
        return [_error("arch.noc-connected", "NoC mesh is not connected")]
    return []


@builtin(
    "arch.buffers",
    requires=("arch",),
    description="Tiles have buffers for partial IFM/OFM data.",
)
def check_buffers(ctx: "VerifyContext") -> list[Diagnostic]:
    tile = ctx.arch.tile
    if tile.input_buffer_bytes == 0 and tile.output_buffer_bytes == 0:
        return [
            _error("arch.buffers", "tiles have no buffers for partial IFM/OFM data")
        ]
    return []


@builtin(
    "arch.gpeu-support",
    requires=("graph", "arch"),
    description="The GPEU supports every non-base op the model uses.",
)
def check_gpeu(ctx: "VerifyContext") -> list[Diagnostic]:
    from ..ir.ops import Input

    graph = ctx.graph
    gpeu = ctx.arch.tile.gpeu
    unsupported = sorted(
        {
            graph[name].op_type
            for name in graph.non_base_layers()
            if not isinstance(graph[name], Input)
            and not gpeu.supports(graph[name].op_type)
        }
    )
    return [
        _error(
            "arch.gpeu-support",
            f"GPEU does not support non-base op type '{op_type}'",
        )
        for op_type in unsupported
    ]


@builtin(
    "arch.dram-capacity",
    requires=("graph", "arch"),
    description="Global DRAM holds all feature maps (coarse upper bound).",
)
def check_dram(ctx: "VerifyContext") -> list[Diagnostic]:
    shapes = ctx.graph_shapes()
    if shapes is None:
        return []
    if not ctx.arch.dram.fits(list(shapes.values())):
        return [
            _error("arch.dram-capacity", "feature maps exceed global DRAM capacity")
        ]
    return []


# ---------------------------------------------------------------------------
# placement rules
# ---------------------------------------------------------------------------


@builtin(
    "place.bounds",
    requires=("placement", "arch"),
    description="Every placed PE range is non-empty and on-chip.",
)
def check_place_bounds(ctx: "VerifyContext") -> list[Diagnostic]:
    num_pes = ctx.arch.num_pes
    diags = []
    for layer, (lo, hi) in ctx.placement.pe_ranges.items():
        if not (0 <= lo < hi <= num_pes):
            diags.append(
                _error(
                    "place.bounds",
                    f"layer '{layer}' placed on invalid PE range [{lo}, {hi}) "
                    f"(chip has {num_pes} PEs)",
                    layer=layer,
                    pe=lo,
                )
            )
    return diags


@builtin(
    "place.overlap",
    requires=("placement",),
    description="No PE is owned by more than one layer.",
)
def check_place_overlap(ctx: "VerifyContext") -> list[Diagnostic]:
    ranged = sorted(
        ((lo, hi, layer) for layer, (lo, hi) in ctx.placement.pe_ranges.items()),
        key=lambda item: (item[0], item[1]),
    )
    diags = []
    for (lo_a, hi_a, layer_a), (lo_b, hi_b, layer_b) in zip(ranged, ranged[1:]):
        if lo_b < hi_a:
            diags.append(
                _error(
                    "place.overlap",
                    f"PE oversubscription: layers '{layer_a}' and '{layer_b}' "
                    f"both own PE(s) [{lo_b}, {min(hi_a, hi_b)})",
                    layer=layer_b,
                    pe=lo_b,
                )
            )
    return _summarize(diags, "place.overlap", len(diags), "overlapping range(s)")


@builtin(
    "place.capacity",
    requires=("placement", "mapped", "arch"),
    description="Every base layer is placed with its crossbar-tiling PE count.",
)
def check_place_capacity(ctx: "VerifyContext") -> list[Diagnostic]:
    from ..mapping.tiling import tile_graph

    placement = ctx.placement
    tilings = placement.tilings or tile_graph(ctx.mapped, ctx.arch.crossbar)
    diags: list[Diagnostic] = []
    for layer in ctx.mapped.base_layers():
        if layer not in placement.pe_ranges:
            diags.append(
                _error(
                    "place.capacity",
                    f"base layer '{layer}' is not placed on any PEs",
                    layer=layer,
                )
            )
            continue
        if layer not in tilings:
            continue
        lo, hi = placement.pe_ranges[layer]
        need = tilings[layer].num_pes
        if hi - lo != need:
            diags.append(
                _error(
                    "place.capacity",
                    f"layer '{layer}' owns {hi - lo} PE(s) but its crossbar "
                    f"tiling needs {need}",
                    layer=layer,
                    pe=lo,
                )
            )
    return _summarize(diags, "place.capacity", len(diags), "mis-sized layer(s)")


@builtin(
    "mapping.duplication",
    requires=("mapped", "rewrite"),
    description="Weight-duplication bookkeeping is consistent with the mapped graph.",
)
def check_duplication(ctx: "VerifyContext") -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for original, dup in ctx.rewrite.duplicated.items():
        for name in dup.duplicates:
            if name not in ctx.mapped:
                diags.append(
                    _error(
                        "mapping.duplication",
                        f"duplicate '{name}' of layer '{original}' is missing "
                        "from the mapped graph",
                        layer=name,
                    )
                )
            elif ctx.rewrite.origin_of.get(name) != original:
                diags.append(
                    _error(
                        "mapping.duplication",
                        f"duplicate '{name}' does not trace back to "
                        f"'{original}' in origin_of",
                        layer=name,
                    )
                )
        spans = sorted(dup.ranges)
        for (lo_a, hi_a), (lo_b, hi_b) in zip(spans, spans[1:]):
            if lo_b < hi_a:
                diags.append(
                    _error(
                        "mapping.duplication",
                        f"duplicates of '{original}' overlap on the "
                        f"{dup.axis} axis at [{lo_b}, {min(hi_a, hi_b)})",
                        layer=original,
                    )
                )
        for lo, hi in spans:
            if lo >= hi:
                diags.append(
                    _error(
                        "mapping.duplication",
                        f"duplicate of '{original}' covers an empty "
                        f"{dup.axis} range [{lo}, {hi})",
                        layer=original,
                    )
                )
    return _summarize(diags, "mapping.duplication", len(diags), "inconsistency(ies)")


@builtin(
    "sets.partition",
    requires=("sets", "mapped"),
    cost="full",
    description="Stage I sets tile each OFM exactly (no overlap, no gaps).",
)
def check_set_partition(ctx: "VerifyContext") -> list[Diagnostic]:
    shapes = ctx.shapes()
    if shapes is None:
        return []
    diags: list[Diagnostic] = []
    total = 0
    for layer, rects in ctx.sets.items():
        shape = shapes.get(layer)
        if shape is None or shape.height == 0 or shape.width == 0:
            continue
        grid = np.zeros((shape.height, shape.width), dtype=np.int16)
        out_of_bounds = False
        for rect in rects:
            if (
                rect.r0 < 0
                or rect.c0 < 0
                or rect.r1 > shape.height
                or rect.c1 > shape.width
            ):
                out_of_bounds = True
                total += 1
                if len(diags) < MAX_DETAIL:
                    diags.append(
                        _error(
                            "sets.partition",
                            f"set {rect} of '{layer}' exceeds the "
                            f"{shape.height}x{shape.width} OFM",
                            layer=layer,
                        )
                    )
                continue
            grid[rect.r0 : rect.r1, rect.c0 : rect.c1] += 1
        if out_of_bounds:
            continue
        if (grid > 1).any():
            total += 1
            if len(diags) < MAX_DETAIL:
                r, c = map(int, np.argwhere(grid > 1)[0])
                diags.append(
                    _error(
                        "sets.partition",
                        f"Stage I sets of '{layer}' overlap at OFM cell "
                        f"({r}, {c})",
                        layer=layer,
                    )
                )
        if (grid == 0).any():
            total += 1
            if len(diags) < MAX_DETAIL:
                r, c = map(int, np.argwhere(grid == 0)[0])
                diags.append(
                    _error(
                        "sets.partition",
                        f"Stage I sets of '{layer}' leave OFM cell ({r}, {c}) "
                        "uncovered",
                        layer=layer,
                    )
                )
    return _summarize(diags, "sets.partition", total, "partition problem(s)")
