"""Vectorized schedule hazard detection over columnar schedules.

The centerpiece of the static verifier: every hazard class a Stage IV
schedule can exhibit — RAW dependency races, PE double-booking,
intra-layer order violations, buffer over-capacity windows — is
detected in O(E) NumPy passes over :class:`ScheduleColumns` and the
CSR :class:`SetGraphArrays`, with no discrete-event replay.  The
checks work identically on freshly compiled schedules and on loaded
:class:`~repro.core.pipeline.CompiledModel` artifacts (whose
dependency graph is recomputed by the engine when the artifact was
saved without one).

Two layers of API live here:

* **rules** (``schedule.*``), registered with the verifier registry,
  which report structured :class:`Diagnostic` values; and
* **raising wrappers** (:func:`assert_arrays_schedule`,
  :func:`assert_batch_arrays_schedule`, :func:`assert_schedule`,
  :func:`assert_batch_schedule`) used by the scheduler kernels for
  cheap self-validation — these preserve the historical
  ``AssertionError`` messages of the pre-verifier validators exactly.

This module stays import-light at runtime (NumPy + the diagnostics
model); core scheduling types appear only under ``TYPE_CHECKING`` so
the kernels can import the wrappers lazily without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from .diagnostics import Diagnostic, Location, Severity
from .registry import builtin

if TYPE_CHECKING:
    from ..core.batch import BatchScheduleResult
    from ..core.dependencies import DependencyGraph
    from ..core.kernels import SetGraphArrays
    from ..core.schedule import Schedule, ScheduleColumns
    from .engine import VerifyContext

#: Per-rule cap on itemized diagnostics; beyond it one summary
#: diagnostic reports the remaining count.
MAX_DETAIL = 8


def _summarize(
    diags: list[Diagnostic], rule: str, total: int, noun: str
) -> list[Diagnostic]:
    """Cap ``diags`` at :data:`MAX_DETAIL` plus a remainder summary."""
    if total <= MAX_DETAIL:
        return diags
    head = diags[:MAX_DETAIL]
    head.append(
        Diagnostic(
            rule=rule,
            severity=head[0].severity,
            message=f"... and {total - MAX_DETAIL} more {noun}",
        )
    )
    return head


# ---------------------------------------------------------------------------
# hazard table: schedule rows scattered onto the dense gid space
# ---------------------------------------------------------------------------


@dataclass
class HazardTable:
    """Schedule columns aligned with a :class:`SetGraphArrays` lowering.

    ``start``/``end`` are flat ``(batch * n,)`` arrays indexed by
    ``slot = image * n + gid``; ``row_gid``/``row_image`` map each
    original column row back into that space.
    """

    arrays: "SetGraphArrays"
    columns: "ScheduleColumns"
    batch: int
    row_gid: np.ndarray
    row_image: np.ndarray
    start: np.ndarray
    end: np.ndarray

    @property
    def num_sets(self) -> int:
        return self.arrays.num_sets


def build_table(
    arrays: "SetGraphArrays", columns: "ScheduleColumns"
) -> tuple[Optional[HazardTable], list[Diagnostic]]:
    """Scatter schedule rows onto the gid space, checking coverage.

    Returns ``(table, diagnostics)``; the table is ``None`` when the
    schedule does not cover the set graph exactly once per image
    (unknown layers, out-of-range set indices, duplicate or missing
    sets) — the coverage diagnostics then explain why, and the
    table-based hazard rules abstain rather than reporting nonsense.
    """
    diags: list[Diagnostic] = []
    n = arrays.num_sets
    rule = "schedule.coverage"

    name_to_lid = {name: lid for lid, name in enumerate(arrays.layers)}
    lid_map = np.empty(len(columns.layers), dtype=np.int64)
    unknown = []
    for i, name in enumerate(columns.layers):
        lid = name_to_lid.get(name)
        lid_map[i] = -1 if lid is None else lid
        if lid is None:
            unknown.append(name)
    if unknown:
        diags.extend(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=(
                    f"scheduled layer '{name}' does not exist in the set graph"
                ),
                location=Location(layer=name),
                hint="the schedule and the Stage I sets come from different models",
            )
            for name in unknown[:MAX_DETAIL]
        )
        return None, _summarize(diags, rule, len(unknown), "unknown layer(s)")

    row_lid = lid_map[columns.layer_id]
    counts = np.diff(arrays.offsets)
    si = columns.set_index.astype(np.int64)
    bad_si = np.flatnonzero((si < 0) | (si >= counts[row_lid]))
    if bad_si.size:
        for row in bad_si[:MAX_DETAIL]:
            layer = arrays.layers[int(row_lid[row])]
            diags.append(
                Diagnostic(
                    rule=rule,
                    severity=Severity.ERROR,
                    message=(
                        f"set index {int(si[row])} of layer '{layer}' is out of "
                        f"range (layer has {int(counts[row_lid[row]])} sets)"
                    ),
                    location=Location(layer=layer, set_index=int(si[row])),
                )
            )
        return None, _summarize(diags, rule, bad_si.size, "out-of-range set(s)")

    row_gid = arrays.offsets[row_lid] + si
    image = columns.image.astype(np.int64)
    if image.size and int(image.min()) < 0:
        diags.append(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=f"schedule contains a negative image id {int(image.min())}",
            )
        )
        return None, diags
    batch = int(image.max()) + 1 if image.size else 1
    slot = image * n + row_gid
    occupancy = np.bincount(slot, minlength=batch * n)

    def refs(slots: np.ndarray) -> Iterator[tuple[str, int, int]]:
        for s in slots:
            gid = int(s % n) if n else 0
            yield (
                arrays.layers[int(arrays.layer_of[gid])],
                int(arrays.set_index[gid]),
                int(s // n) if n else 0,
            )

    dup = np.flatnonzero(occupancy > 1)
    missing = np.flatnonzero(occupancy == 0)
    for layer, set_index, img in refs(dup[:MAX_DETAIL]):
        diags.append(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=(
                    f"set ({layer}, {set_index}) is scheduled more than once"
                    + (f" for image {img}" if batch > 1 else "")
                ),
                location=Location(
                    layer=layer,
                    set_index=set_index,
                    image=img if batch > 1 else None,
                ),
            )
        )
    for layer, set_index, img in refs(missing[:MAX_DETAIL]):
        diags.append(
            Diagnostic(
                rule=rule,
                severity=Severity.ERROR,
                message=(
                    f"set ({layer}, {set_index}) missing from schedule"
                    + (f" for image {img}" if batch > 1 else "")
                ),
                location=Location(
                    layer=layer,
                    set_index=set_index,
                    image=img if batch > 1 else None,
                ),
            )
        )
    if dup.size or missing.size:
        extra = int(dup.size + missing.size) - len(diags)
        if extra > 0:
            diags.append(
                Diagnostic(
                    rule=rule,
                    severity=Severity.ERROR,
                    message=f"... and {extra} more coverage problem(s)",
                )
            )
        return None, diags

    start = np.zeros(batch * n, dtype=np.int64)
    end = np.zeros(batch * n, dtype=np.int64)
    start[slot] = columns.start
    end[slot] = columns.end
    return (
        HazardTable(
            arrays=arrays,
            columns=columns,
            batch=batch,
            row_gid=row_gid,
            row_image=image,
            start=start,
            end=end,
        ),
        diags,
    )


# ---------------------------------------------------------------------------
# schedule rules
# ---------------------------------------------------------------------------


@builtin(
    "schedule.coverage",
    requires=("schedule", "dependencies"),
    description="Every set of the set graph is scheduled exactly once per image.",
)
def check_coverage(ctx: "VerifyContext") -> list[Diagnostic]:
    _, diags = ctx.hazard_table()
    return diags


@builtin(
    "schedule.duration",
    requires=("schedule", "dependencies"),
    description="Task durations and rectangles match the Stage I sets.",
)
def check_durations(ctx: "VerifyContext") -> list[Diagnostic]:
    table, _ = ctx.hazard_table()
    if table is None:
        return []
    arrays = table.arrays
    cols = table.columns
    diags: list[Diagnostic] = []
    gid = table.row_gid

    def loc(row: int) -> Location:
        return Location(
            layer=arrays.layers[int(arrays.layer_of[gid[row]])],
            set_index=int(arrays.set_index[gid[row]]),
            image=int(table.row_image[row]) if table.batch > 1 else None,
            cycle=int(cols.start[row]),
        )

    bad_start = np.flatnonzero(cols.start < 0)
    for row in bad_start[:MAX_DETAIL]:
        diags.append(
            Diagnostic(
                rule="schedule.duration",
                severity=Severity.ERROR,
                message=f"task starts at negative cycle {int(cols.start[row])}",
                location=loc(int(row)),
            )
        )

    duration = cols.end - cols.start
    expected = arrays.area[gid]
    bad_dur = np.flatnonzero(duration != expected)
    for row in bad_dur[:MAX_DETAIL]:
        diags.append(
            Diagnostic(
                rule="schedule.duration",
                severity=Severity.ERROR,
                message=(
                    f"task duration {int(duration[row])} does not equal the "
                    f"set area {int(expected[row])} (one MVM per OFM pixel)"
                ),
                location=loc(int(row)),
                hint="set rectangles and task intervals must agree",
            )
        )

    rect_bad = (
        (cols.r0 != arrays.r0[gid])
        | (cols.c0 != arrays.c0[gid])
        | (cols.r1 != arrays.r1[gid])
        | (cols.c1 != arrays.c1[gid])
    )
    for row in np.flatnonzero(rect_bad)[:MAX_DETAIL]:
        diags.append(
            Diagnostic(
                rule="schedule.duration",
                severity=Severity.ERROR,
                message=(
                    "task rectangle "
                    f"({int(cols.r0[row])},{int(cols.c0[row])})-"
                    f"({int(cols.r1[row])},{int(cols.c1[row])}) does not match "
                    "the Stage I set rectangle"
                ),
                location=loc(int(row)),
            )
        )
    total = int(bad_start.size + bad_dur.size + int(rect_bad.sum()))
    return _summarize(diags, "schedule.duration", total, "malformed task(s)")


@builtin(
    "schedule.raw-race",
    requires=("schedule", "dependencies"),
    description="Every data dependency's producer ends before its consumer starts.",
)
def check_raw_races(ctx: "VerifyContext") -> list[Diagnostic]:
    table, _ = ctx.hazard_table()
    if table is None:
        return []
    arrays = table.arrays
    n = arrays.num_sets
    if not len(arrays.indices):
        return []
    consumer_start = table.start.reshape(table.batch, n)
    producer_end = table.end.reshape(table.batch, n)
    per_edge = np.diff(arrays.indptr)
    bad = producer_end[:, arrays.indices] > np.repeat(
        consumer_start, per_edge, axis=1
    )
    if not bad.any():
        return []
    diags: list[Diagnostic] = []
    hits = np.argwhere(bad)
    for image, edge in hits[:MAX_DETAIL]:
        image, edge = int(image), int(edge)
        gid = int(np.searchsorted(arrays.indptr, edge, side="right")) - 1
        pred = int(arrays.indices[edge])
        layer = arrays.layers[int(arrays.layer_of[gid])]
        diags.append(
            Diagnostic(
                rule="schedule.raw-race",
                severity=Severity.ERROR,
                message=(
                    "data dependency violated: "
                    f"({arrays.layers[arrays.layer_of[pred]]}, "
                    f"{int(arrays.set_index[pred])}) ends at "
                    f"{int(producer_end[image, pred])} but ({layer}, "
                    f"{int(arrays.set_index[gid])}) starts at "
                    f"{int(consumer_start[image, gid])}"
                ),
                location=Location(
                    layer=layer,
                    set_index=int(arrays.set_index[gid]),
                    image=image if table.batch > 1 else None,
                    cycle=int(consumer_start[image, gid]),
                ),
                hint="the producer set must finish before the consumer starts",
            )
        )
    return _summarize(diags, "schedule.raw-race", len(hits), "RAW race(s)")


@builtin(
    "schedule.exclusivity",
    requires=("schedule",),
    description="Sets of one layer never overlap (a layer's PEs run one set at a time).",
)
def check_exclusivity(ctx: "VerifyContext") -> list[Diagnostic]:
    cols = ctx.columns()
    if cols is None or len(cols) == 0:
        return []
    order = np.lexsort((cols.start, cols.layer_id))
    lid = cols.layer_id[order]
    start = cols.start[order]
    end = cols.end[order]
    bad = np.flatnonzero((lid[1:] == lid[:-1]) & (start[1:] < end[:-1]))
    diags: list[Diagnostic] = []
    for i in bad[:MAX_DETAIL]:
        earlier = int(order[i])
        later = int(order[i + 1])
        layer = cols.layers[int(cols.layer_id[later])]
        batch = int(cols.image.max()) + 1 if len(cols.image) else 1
        diags.append(
            Diagnostic(
                rule="schedule.exclusivity",
                severity=Severity.ERROR,
                message=(
                    f"resource violation in '{layer}': set "
                    f"{int(cols.set_index[later])} starts at "
                    f"{int(cols.start[later])} before set "
                    f"{int(cols.set_index[earlier])} ends at "
                    f"{int(cols.end[earlier])}"
                ),
                location=Location(
                    layer=layer,
                    set_index=int(cols.set_index[later]),
                    image=int(cols.image[later]) if batch > 1 else None,
                    cycle=int(cols.start[later]),
                ),
                hint="a layer's crossbars execute one set at a time (Sec. III)",
            )
        )
    return _summarize(
        diags, "schedule.exclusivity", int(bad.size), "overlapping set pair(s)"
    )


@builtin(
    "schedule.pe-double-book",
    requires=("schedule", "placement"),
    description="Layers sharing PEs never execute concurrently.",
)
def check_pe_double_booking(ctx: "VerifyContext") -> list[Diagnostic]:
    cols = ctx.columns()
    placement = ctx.placement
    if cols is None or len(cols) == 0 or placement is None:
        return []
    # Find layer pairs whose PE ranges intersect (a clean placement
    # packs disjointly, so this sweep normally finds nothing).
    ranged = sorted(
        ((lo, hi, layer) for layer, (lo, hi) in placement.pe_ranges.items()),
        key=lambda item: (item[0], item[1]),
    )
    pairs: list[tuple[str, str, int]] = []
    for (lo_a, hi_a, layer_a), (lo_b, hi_b, layer_b) in zip(ranged, ranged[1:]):
        if lo_b < hi_a:
            pairs.append((layer_a, layer_b, lo_b))
    if not pairs:
        return []

    lid_of = {name: i for i, name in enumerate(cols.layers)}
    diags: list[Diagnostic] = []
    for layer_a, layer_b, shared_pe in pairs:
        lid_a = lid_of.get(layer_a)
        lid_b = lid_of.get(layer_b)
        if lid_a is None or lid_b is None:
            continue
        mask_a = cols.layer_id == lid_a
        starts_a = np.sort(cols.start[mask_a])
        ends_sorted = cols.end[mask_a][np.argsort(cols.start[mask_a], kind="stable")]
        running_max = np.maximum.accumulate(ends_sorted)
        rows_b = np.flatnonzero(cols.layer_id == lid_b)
        # b overlaps some a-task iff an a-task starting before b.end is
        # still running past b.start.
        idx = np.searchsorted(starts_a, cols.end[rows_b], side="left")
        conflict = (idx > 0) & (running_max[np.maximum(idx - 1, 0)] > cols.start[rows_b])
        hit = np.flatnonzero(conflict)
        if not hit.size:
            continue
        row = int(rows_b[hit[0]])
        diags.append(
            Diagnostic(
                rule="schedule.pe-double-book",
                severity=Severity.ERROR,
                message=(
                    f"PE double-booking: layers '{layer_a}' and '{layer_b}' "
                    f"share PE {shared_pe} and execute concurrently "
                    f"('{layer_b}' set {int(cols.set_index[row])} runs "
                    f"[{int(cols.start[row])}, {int(cols.end[row])}) during "
                    f"'{layer_a}')"
                ),
                location=Location(
                    layer=layer_b,
                    set_index=int(cols.set_index[row]),
                    pe=shared_pe,
                    cycle=int(cols.start[row]),
                ),
                hint="place the layers on disjoint PE ranges or serialize them",
            )
        )
    return _summarize(
        diags, "schedule.pe-double-book", len(diags), "double-booked pair(s)"
    )


@builtin(
    "schedule.buffer-capacity",
    requires=("schedule", "dependencies", "placement", "mapped", "arch"),
    cost="full",
    description="Peak forwarded-set liveness per tile fits the input buffer.",
)
def check_buffer_capacity(ctx: "VerifyContext") -> list[Diagnostic]:
    table, _ = ctx.hazard_table()
    if table is None:
        return []
    arrays = table.arrays
    n = arrays.num_sets
    if not len(arrays.indices):
        return []
    shapes = ctx.shapes()
    placement = ctx.placement
    arch = ctx.arch
    if shapes is None or placement is None or arch is None:
        return []

    channels = np.asarray(
        [
            shapes[layer].channels if layer in shapes else 0
            for layer in arrays.layers
        ],
        dtype=np.int64,
    )
    home_tile = np.asarray(
        [
            placement.tiles_of(layer)[0] if layer in placement.pe_ranges else -1
            for layer in arrays.layers
        ],
        dtype=np.int64,
    )
    consumer = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(arrays.indptr)
    )
    producer = arrays.indices
    payload = arrays.area[producer] * channels[arrays.layer_of[producer]]
    tile = home_tile[arrays.layer_of[consumer]]

    # Each edge keeps the producer's output live at the consumer's home
    # tile over [producer end, consumer end); one sweep per tile over
    # the pooled timelines of all images (they share real time).
    window_start = table.end.reshape(table.batch, n)[:, producer]
    window_end = table.end.reshape(table.batch, n)[:, consumer]
    live = (window_end > window_start) & (tile >= 0)[None, :]
    if not live.any():
        return []
    tiles_live = np.broadcast_to(tile, live.shape)[live]
    payload_live = np.broadcast_to(payload, live.shape)[live]
    ev_tile = np.concatenate([tiles_live, tiles_live])
    ev_time = np.concatenate([window_start[live], window_end[live]])
    ev_delta = np.concatenate([payload_live, -payload_live])
    # Primary tile, then time, then delta: removals land before
    # additions at equal timestamps, matching the sweep of
    # repro.sim.buffers.analyze_buffers.
    order = np.lexsort((ev_delta, ev_time, ev_tile))
    tile_sorted = ev_tile[order]
    level = np.cumsum(ev_delta[order])
    seg = np.flatnonzero(
        np.concatenate(([True], tile_sorted[1:] != tile_sorted[:-1]))
    )
    base = np.where(seg > 0, level[seg - 1], 0)
    level = level - np.repeat(base, np.diff(np.append(seg, len(level))))
    peaks = np.maximum.reduceat(level, seg)

    capacity = arch.tile.input_buffer_bytes
    over = np.flatnonzero(peaks > capacity)
    diags = [
        Diagnostic(
            rule="schedule.buffer-capacity",
            severity=Severity.WARNING,
            message=(
                f"tile {int(tile_sorted[seg[i]])}: peak input-buffer "
                f"occupancy {int(peaks[i])} B exceeds capacity {capacity} B"
            ),
            hint=(
                "raise TileSpec.input_buffer_bytes, use coarser Stage I "
                "sets, or rely on the Sec. II-A DRAM spill"
            ),
        )
        for i in over[:MAX_DETAIL]
    ]
    return _summarize(
        diags, "schedule.buffer-capacity", int(over.size), "overflowing tile(s)"
    )


# ---------------------------------------------------------------------------
# raising wrappers (kernel self-validation; historical messages)
# ---------------------------------------------------------------------------


def assert_arrays_schedule(
    arrays: "SetGraphArrays", start: np.ndarray, end: np.ndarray
) -> None:
    """Vectorized single-image schedule assertion.

    The canonical form of the historical
    ``core.kernels.validate_arrays_schedule``: every data dependency's
    producer ends before its consumer starts, and sets of one layer
    never overlap — raising ``AssertionError`` with the same messages.
    """
    from ..core.schedule import check_layer_exclusivity

    if len(arrays.indices):
        bad = end[arrays.indices] > start.repeat(np.diff(arrays.indptr))
        if bad.any():
            edge = int(np.flatnonzero(bad)[0])
            gid = int(np.searchsorted(arrays.indptr, edge, side="right")) - 1
            pred = int(arrays.indices[edge])
            raise AssertionError(
                "data dependency violated: "
                f"({arrays.layers[arrays.layer_of[pred]]}, "
                f"{int(arrays.set_index[pred])}) ends at {int(end[pred])} but "
                f"({arrays.layers[arrays.layer_of[gid]]}, "
                f"{int(arrays.set_index[gid])}) starts at {int(start[gid])}"
            )
    check_layer_exclusivity(
        arrays.layer_of, start, end, arrays.set_index, arrays.layers
    )


def assert_batch_arrays_schedule(
    arrays: "SetGraphArrays",
    batch_size: int,
    start: np.ndarray,
    end: np.ndarray,
) -> None:
    """Vectorized batch assertion over flat ``image * n + gid`` arrays."""
    from ..core.schedule import check_layer_exclusivity

    n = arrays.num_sets
    if len(arrays.indices):
        consumer_start = start.reshape(batch_size, n)
        producer_end = end.reshape(batch_size, n)
        per_edge = np.diff(arrays.indptr)
        bad = producer_end[:, arrays.indices] > np.repeat(
            consumer_start, per_edge, axis=1
        )
        if bad.any():
            image, edge = map(int, np.argwhere(bad)[0])
            gid = int(np.searchsorted(arrays.indptr, edge, side="right")) - 1
            pred = int(arrays.indices[edge])
            raise AssertionError(
                f"batch data dependency violated for image {image}: set "
                f"({arrays.layers[arrays.layer_of[pred]]}, "
                f"{int(arrays.set_index[pred])}) ends after "
                f"({arrays.layers[arrays.layer_of[gid]]}, "
                f"{int(arrays.set_index[gid])}) starts"
            )
    check_layer_exclusivity(
        np.tile(arrays.layer_of, batch_size),
        start,
        end,
        np.tile(arrays.set_index, batch_size),
        arrays.layers,
        prefix="batch resource violation",
    )


def assert_schedule(schedule: "Schedule", dependency_graph: "DependencyGraph") -> None:
    """Assert a row-form schedule against its dependency graph.

    The canonical form of the historical
    ``core.cross_layer.validate_schedule``: intra-layer order first
    (same "resource violation" message), then missing sets, then data
    dependencies — all with the original message formats.
    """
    schedule.validate_intra_layer_order()
    end_of = {
        (task.layer, task.set_index): task.end for task in schedule.tasks
    }
    start_of = {
        (task.layer, task.set_index): task.start for task in schedule.tasks
    }
    for ref, preds in dependency_graph.deps.items():
        if ref not in start_of:
            raise AssertionError(f"set {ref} missing from schedule")
        for pred in preds:
            if end_of[pred] > start_of[ref]:
                raise AssertionError(
                    f"data dependency violated: {pred} ends at {end_of[pred]} "
                    f"but {ref} starts at {start_of[ref]}"
                )


def assert_batch_schedule(
    result: "BatchScheduleResult", dependency_graph: "DependencyGraph"
) -> None:
    """Assert a batch schedule: exclusivity plus per-image dependencies.

    The canonical form of the historical
    ``core.batch.validate_batch_schedule``, rebuilt on the vectorized
    checks: resource exclusivity first, then the per-image dependency
    sweep over the flat gid space.
    """
    from ..core.kernels import set_graph_arrays

    result.schedule.validate_intra_layer_order()
    arrays = set_graph_arrays(dependency_graph)
    table, diags = build_table(arrays, result.schedule.columns())
    if table is None:
        raise AssertionError(diags[0].message if diags else "schedule incomplete")
    assert_batch_arrays_schedule(arrays, table.batch, table.start, table.end)
