"""The public compilation API: :class:`Session`.

A session binds a target architecture to a compilation cache and a
pass manager, and exposes the four verbs users actually need::

    from repro import Session, ScheduleOptions, paper_case_study

    session = Session(paper_case_study(133))
    compiled = session.compile(model)            # CompiledModel
    metrics = session.evaluate(compiled)         # Eq. 2/3 metrics
    results = session.sweep(["tinyyolov3"])      # the Fig. 7 grid
    explored = session.explore("tinyyolov3")     # Pareto search (DSE)

Repeated compiles through one session share stage results via the
session cache (preprocessing, tiling, duplication rewrites...), and
hooks observe every pass as it runs.  ``compile`` accepts raw or
canonical graphs; ``evaluate`` accepts a graph or an existing
:class:`~repro.core.pipeline.CompiledModel`; ``sweep`` accepts
benchmark specs or names.

Compilation itself runs in the :class:`repro.core.passes.PassManager`;
the legacy free function :func:`repro.core.pipeline.compile_model` is
a shim over the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from .arch.config import ArchitectureConfig
from .core.cache import CompilationCache
from .core.passes import CompilationContext, PassManager, default_pass_manager
from .core.pipeline import CompiledModel, ScheduleOptions
from .ir.graph import Graph

__all__ = ["Session", "SessionHooks"]


@dataclass
class SessionHooks:
    """Optional observation points for a session's compilations.

    Any subset of the callbacks may be set; unset ones are skipped.
    ``on_pass_start(name, ctx)`` / ``on_pass_end(name, ctx, seconds)``
    fire around every executed pass, ``on_compile_start(ctx)`` /
    ``on_compile_end(compiled)`` around each whole compilation.
    """

    on_pass_start: Optional[Callable[[str, CompilationContext], None]] = None
    on_pass_end: Optional[Callable[[str, CompilationContext, float], None]] = None
    on_compile_start: Optional[Callable[[CompilationContext], None]] = None
    on_compile_end: Optional[Callable[[CompiledModel], None]] = None


class Session:
    """Compilation facade binding an architecture, cache and passes.

    Parameters
    ----------
    arch:
        Target architecture of :meth:`compile`/:meth:`evaluate`.
        (:meth:`sweep` derives per-point architectures from the paper's
        ``PE_min + x`` rule and ignores this.)
    cache:
        ``True`` (default) creates a private
        :class:`~repro.core.cache.CompilationCache`; pass an existing
        cache to share stage results between sessions (e.g. a baseline
        and a tuned configuration on different PE budgets), or
        ``None``/``False`` to compile uncached.
    hooks:
        A :class:`SessionHooks` (or any object with the same optional
        callables), or a sequence of them.
    pass_manager:
        Custom :class:`~repro.core.passes.PassManager`; defaults to the
        standard pass order.
    """

    def __init__(
        self,
        arch: ArchitectureConfig,
        *,
        cache: Union[CompilationCache, bool, None] = True,
        hooks: Union[Any, Sequence[Any], None] = None,
        pass_manager: Optional[PassManager] = None,
    ) -> None:
        self.arch = arch
        if cache is True:
            self.cache: Optional[CompilationCache] = CompilationCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        if hooks is None:
            self.hooks: tuple[Any, ...] = ()
        elif isinstance(hooks, (list, tuple)):
            self.hooks = tuple(hooks)
        else:
            self.hooks = (hooks,)
        self._custom_pass_manager = pass_manager is not None
        self.pass_manager = pass_manager if pass_manager is not None else default_pass_manager()

    def __repr__(self) -> str:
        cached = "cached" if self.cache is not None else "uncached"
        return f"Session({self.arch.summary()}, {cached})"

    # -- compile -------------------------------------------------------

    def compile(
        self,
        graph: Graph,
        options: Optional[ScheduleOptions] = None,
        *,
        assume_canonical: bool = False,
    ) -> CompiledModel:
        """Compile ``graph`` for this session's architecture.

        ``options`` defaults to the paper's best configuration
        (``wdup`` mapping + ``clsa-cim`` scheduling); registered
        third-party mapping/scheduler names are accepted the same way
        as builtins.
        """
        ctx = CompilationContext(
            graph=graph,
            arch=self.arch,
            options=options if options is not None else ScheduleOptions(),
            cache=self.cache,
            assume_canonical=assume_canonical,
        )
        self._fire("on_compile_start", ctx)
        compiled = self.pass_manager.run(ctx, self.hooks).to_compiled()
        self._fire("on_compile_end", compiled)
        return compiled

    # -- evaluate ------------------------------------------------------

    def evaluate(
        self,
        model: Union[Graph, CompiledModel],
        options: Optional[ScheduleOptions] = None,
        *,
        assume_canonical: bool = False,
    ) -> "Metrics":  # noqa: F821 - forward ref to repro.sim
        """Metrics of a compiled model (compiling a graph first).

        ``options`` is only consulted when ``model`` is a graph.
        """
        if isinstance(model, CompiledModel):
            return model.evaluate()
        compiled = self.compile(model, options, assume_canonical=assume_canonical)
        return compiled.evaluate()

    # -- sweep ---------------------------------------------------------

    def sweep(
        self,
        benchmarks: Sequence[Union[str, "BenchmarkSpec"]],  # noqa: F821
        xs: Optional[Sequence[int]] = None,
        *,
        jobs: Optional[int] = 1,
        options_overrides: Optional[dict] = None,
        graphs: Optional[dict[str, Graph]] = None,
    ) -> list["SweepResult"]:  # noqa: F821 - forward ref to repro.analysis
        """Run the paper's configuration grid (Fig. 7) per benchmark.

        ``benchmarks`` mixes :class:`~repro.models.zoo.BenchmarkSpec`
        objects and benchmark names; ``xs`` defaults to the paper's
        extra-PE values.  With ``jobs > 1`` config points fan out over
        worker processes (each holding its own cache); the serial path
        shares this session's cache, so repeated sweeps reuse stages.
        The session's hooks and any custom pass manager apply to every
        point — since neither can cross a process boundary, setting
        them forces the sweep serial (with a ``RuntimeWarning`` when
        ``jobs > 1`` was requested).
        """
        from .analysis.sweep import PAPER_XS, SweepExecutor
        from .models.zoo import benchmark_by_name

        specs = [
            benchmark_by_name(item) if isinstance(item, str) else item
            for item in benchmarks
        ]
        executor = SweepExecutor(
            jobs=jobs,
            use_cache=self.cache is not None,
            cache=self.cache,
            pass_manager=self.pass_manager if self._custom_pass_manager else None,
            hooks=self.hooks,
        )
        return executor.run_many(
            specs,
            xs=tuple(xs) if xs is not None else PAPER_XS,
            options_overrides=options_overrides,
            graphs=graphs,
        )

    # -- explore -------------------------------------------------------

    def explore(
        self,
        model: Union[Graph, str],
        *,
        space: Optional["SearchSpace"] = None,  # noqa: F821
        objectives: Sequence[str] = ("latency", "energy"),
        strategy: str = "random",
        strategy_options: Optional[dict] = None,
        budget: int = 40,
        store: Union["RunStore", str, None] = None,  # noqa: F821
        resume: bool = True,
        seed: int = 0,
        jobs: Optional[int] = 1,
        max_total_pes: Optional[int] = None,
    ) -> "ExplorationResult":  # noqa: F821 - forward ref to repro.explore
        """Multi-objective design-space search around this session.

        ``model`` is a graph or a zoo model name.  The search space
        defaults to :func:`repro.explore.default_space` (schedule
        knobs, duplication caps, PE budget, PEs per tile); points are
        scored on ``objectives`` (any names registered through
        :func:`repro.explore.register_objective`) and the result
        carries the incremental Pareto frontier.  ``store`` names a
        JSONL run store: every evaluation is journalled, and re-runs
        reuse journalled points without recompiling (``resume``).
        This session's architecture serves as the template for
        explored architectures (crossbar timing, NoC, DRAM specs);
        its cache is shared with the exploration, and ``jobs`` fans
        evaluation out over worker processes.
        """
        from .explore.engine import Explorer
        from .models.zoo import build

        graph = build(model) if isinstance(model, str) else model
        explorer = Explorer(
            graph,
            base_arch=self.arch,
            space=space,
            objectives=objectives,
            strategy=strategy,
            strategy_options=strategy_options,
            budget=budget,
            store=store,
            resume=resume,
            seed=seed,
            jobs=jobs,
            cache=self.cache,
            max_total_pes=max_total_pes,
        )
        return explorer.run()

    # -- helpers -------------------------------------------------------

    def _fire(self, event: str, payload: Any) -> None:
        for hook in self.hooks:
            callback = getattr(hook, event, None)
            if callback is not None:
                callback(payload)
