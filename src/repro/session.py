"""The public compilation API: :class:`Session`.

A session binds a target architecture to a compilation cache, a pass
manager, and an execution backend, and exposes the verbs users
actually need::

    from repro import Session, ScheduleOptions, paper_case_study
    from repro.exec import CompileJob, EvaluateJob, SweepJob

    session = Session(paper_case_study(133), executor="process")
    compiled = session.compile(model)            # CompiledModel
    metrics = session.evaluate(compiled)         # Eq. 2/3 metrics
    results = session.sweep(["tinyyolov3"])      # the Fig. 7 grid
    explored = session.explore("tinyyolov3")     # Pareto search (DSE)

    future = session.submit(CompileJob(model))   # JobFuture
    for result in session.map([EvaluateJob(model, opts) for opts in grid]):
        ...                                      # JobResult stream

Everything above runs on one execution layer (:mod:`repro.exec`):
work is described by typed jobs (:class:`~repro.exec.jobs.CompileJob`,
:class:`~repro.exec.jobs.EvaluateJob`,
:class:`~repro.exec.jobs.SweepJob`,
:class:`~repro.exec.jobs.ExploreJob`), every executed job yields one
:class:`~repro.exec.jobs.JobResult` envelope, and the ``executor``
knob picks the backend — ``inline`` (default), ``thread``,
``process``, or any backend registered through
:func:`repro.exec.register_executor`.

Repeated compiles through one session share stage results via the
session cache (preprocessing, tiling, duplication rewrites...), and
hooks observe every pass and job as it runs; a hook that raises is
recorded as a diagnostic and never aborts the work.  ``compile``
accepts raw or canonical graphs; ``evaluate`` accepts a graph or an
existing :class:`~repro.core.pipeline.CompiledModel`; ``sweep``
accepts benchmark specs or names.

Compilation itself runs in the :class:`repro.core.passes.PassManager`;
the legacy free function :func:`repro.core.pipeline.compile_model` is
a shim over the same machinery.
"""

from __future__ import annotations

import sys
import threading
import time
import warnings
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # heavy subsystems: imported for annotations only
    from os import PathLike

    from .analysis.sweep import SweepResult
    from .explore.engine import ExplorationResult
    from .explore.space import SearchSpace
    from .explore.store import RunStore
    from .models.zoo import BenchmarkSpec
    from .sim.metrics import Metrics
    from .store.disk import ArtifactStore
    from .verify.diagnostics import VerifyReport

from .arch.config import ArchitectureConfig
from .core.cache import CompilationCache
from .core.passes import CompilationContext, PassManager, default_pass_manager
from .core.pipeline import CompiledModel, ScheduleOptions
from .exec.executors import Executor
from .exec.faults import FaultPlan
from .exec.futures import JobFuture
from .exec.jobs import ExploreJob, Job, JobError, JobResult, SweepJob, job_key
from .exec.resilience import RetryEvent, RetryPolicy
from .exec.runtime import JobRuntime
from .ir.graph import Graph

__all__ = ["Session", "SessionHooks"]


@dataclass
class SessionHooks:
    """Optional observation points for a session's work.

    Any subset of the callbacks may be set; unset ones are skipped.
    ``on_pass_start(name, ctx)`` / ``on_pass_end(name, ctx, seconds)``
    fire around every executed pass, ``on_compile_start(ctx)`` /
    ``on_compile_end(compiled)`` around each whole compilation, and
    ``on_job_submit(job)`` / ``on_job_done(result)`` around every job
    that flows through :meth:`Session.submit` / :meth:`Session.map`
    (composite jobs fire ``on_job_done`` once per streamed result).

    ``on_job_retry(event)`` fires every time the runtime decides to
    re-attempt a failed job, with a
    :class:`~repro.exec.resilience.RetryEvent` describing the failed
    attempt, the triggering error, and the backoff before the next
    try.

    Exceptions raised inside a hook are caught and recorded as a
    diagnostic on the context/result being observed — user telemetry
    must never abort a compile.  Pass- and compile-level hooks cannot
    cross a process boundary (the ``process`` executor degrades such
    sessions to thread workers with a warning); job-level hooks
    (submit/done/retry) always fire driver-side and work with every
    backend.
    """

    on_pass_start: Optional[Callable[[str, CompilationContext], None]] = None
    on_pass_end: Optional[Callable[[str, CompilationContext, float], None]] = None
    on_compile_start: Optional[Callable[[CompilationContext], None]] = None
    on_compile_end: Optional[Callable[[CompiledModel], None]] = None
    on_job_submit: Optional[Callable[[Job], None]] = None
    on_job_done: Optional[Callable[[JobResult], None]] = None
    on_job_retry: Optional[Callable[["RetryEvent"], None]] = None


class Session:
    """Compilation facade binding an architecture, cache and passes.

    Parameters
    ----------
    arch:
        Target architecture of :meth:`compile`/:meth:`evaluate` and
        the default architecture of submitted jobs.  (:meth:`sweep`
        derives per-point architectures from the paper's ``PE_min +
        x`` rule and ignores this.)
    cache:
        ``True`` (default) creates a private
        :class:`~repro.core.cache.CompilationCache`; pass an existing
        cache to share stage results between sessions (e.g. a baseline
        and a tuned configuration on different PE budgets), or
        ``None``/``False`` to compile uncached.
    hooks:
        A :class:`SessionHooks` (or any object with the same optional
        callables), or a sequence of them.
    pass_manager:
        Custom :class:`~repro.core.passes.PassManager`; defaults to the
        standard pass order.
    executor:
        Execution backend for :meth:`submit`/:meth:`map` (and the
        default backend of :meth:`sweep`/:meth:`explore`): a
        registered name (``"inline"``, ``"thread"``, ``"process"``,
        or a plugin), an :class:`~repro.exec.Executor` instance, or
        ``None`` for inline execution.  Instances are externally
        owned: :meth:`close` leaves them running.
    store:
        Persistent artifact store layered under the compilation
        cache: an :class:`~repro.store.disk.ArtifactStore` instance,
        or ``True`` to open the default store (``$REPRO_STORE_PATH``,
        else ``$XDG_CACHE_HOME/clsa-cim-repro/store``).  With a store
        attached, stage results survive processes and sessions: a
        fresh session recompiling an already-seen model serves every
        stage from disk.  Requires caching (``cache`` must not be
        disabled).  Mutually exclusive with ``store_path``.
    store_path:
        Filesystem path to open (or create) an artifact store at —
        shorthand for ``store=ArtifactStore(path)``.
    retry:
        Fault-tolerance policy for submitted jobs: a
        :class:`~repro.exec.resilience.RetryPolicy`, an ``int``
        (shorthand for that many attempts with default backoff), or
        ``None`` to fail on the first error.  Only transient failures
        (worker crashes, timeouts, broken pools) are retried —
        deterministic compile errors fail fast regardless of budget.
    job_timeout:
        Per-job wall-clock budget in seconds.  Process workers that
        blow the budget are SIGKILLed and respawned; thread/inline
        jobs observe the deadline cooperatively between passes.
        Combined with ``retry``, a timed-out job is re-attempted.
    fault_plan:
        A :class:`~repro.exec.faults.FaultPlan` injecting
        deterministic failures keyed by ``(job key, attempt)`` —
        testing/CI chaos harness, not for production use.
    """

    def __init__(
        self,
        arch: ArchitectureConfig,
        *,
        cache: Union[CompilationCache, bool, None] = True,
        hooks: Union[Any, Sequence[Any], None] = None,
        pass_manager: Optional[PassManager] = None,
        executor: Union[Executor, str, None] = None,
        store: Union["ArtifactStore", bool, None] = None,
        store_path: Union[str, "PathLike[str]", None] = None,
        retry: Union[RetryPolicy, int, None] = None,
        job_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.arch = arch
        resolved_store: Optional["ArtifactStore"] = None
        if store is not None or store_path is not None:
            from .store.paths import resolve_store

            resolved_store = resolve_store(store=store, store_path=store_path)
        if cache is True:
            self.cache: Optional[CompilationCache] = CompilationCache(
                store=resolved_store
            )
        elif cache is False or cache is None:
            if resolved_store is not None:
                raise ValueError(
                    "a persistent store requires caching; "
                    "pass cache=True (or a CompilationCache) with store="
                )
            self.cache = None
        else:
            self.cache = cache
            if resolved_store is not None:
                self.cache.attach_store(resolved_store)
        self.store: Optional["ArtifactStore"] = (
            resolved_store
            if resolved_store is not None
            else getattr(self.cache, "store", None)
        )
        if hooks is None:
            self.hooks: tuple[Any, ...] = ()
        elif isinstance(hooks, (list, tuple)):
            self.hooks = tuple(hooks)
        else:
            self.hooks = (hooks,)
        self._custom_pass_manager = pass_manager is not None
        self.pass_manager = pass_manager if pass_manager is not None else default_pass_manager()
        self._executor_spec = executor
        self._retry = retry
        self._job_timeout = job_timeout
        self._fault_plan = fault_plan
        self._runtime: Optional[JobRuntime] = None
        self._job_counter = 0
        self._inflight: list[JobFuture] = []
        self._inflight_lock = threading.Lock()

    def __repr__(self) -> str:
        cached = "cached" if self.cache is not None else "uncached"
        name = getattr(self.executor, "name", None) or "inline"
        return f"Session({self.arch.summary()}, {cached}, executor={name})"

    # -- execution plumbing --------------------------------------------

    @property
    def executor(self) -> Executor:
        """The resolved execution backend of this session."""
        return self.runtime.executor

    @property
    def runtime(self) -> JobRuntime:
        """The lazily-created job runtime behind submit/map/sweep."""
        if self._runtime is None:
            self._runtime = JobRuntime(
                self._executor_spec if self._executor_spec is not None else "inline",
                use_cache=self.cache is not None,
                cache=self.cache,
                pass_manager=self.pass_manager if self._custom_pass_manager else None,
                hooks=self.hooks,
                arch=self.arch,
                store=self.store,
                retry=self._retry,
                job_timeout=self._job_timeout,
                fault_plan=self._fault_plan,
            )
        return self._runtime

    def close(self, grace: Optional[float] = 5.0) -> None:
        """Release pooled executor resources (owned backends only).

        Drain-aware and idempotent: in-flight jobs submitted through
        :meth:`submit` get up to ``grace`` seconds to finish
        (``grace=0`` skips the wait, ``None`` waits indefinitely);
        whatever is still pending afterwards is cancelled.  Then any
        still-live pool workers are reaped (SIGKILL) before the pool
        shuts down, so a Ctrl-C'd sweep never leaves orphaned worker
        processes behind.  A second ``close()`` is a no-op.
        """
        with self._inflight_lock:
            pending = [f for f in self._inflight if not f.done()]
            self._inflight = []
        deadline = None if grace is None else time.monotonic() + grace
        for future in pending:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                future.raw.exception(timeout=remaining)
            except (FuturesTimeoutError, FuturesCancelledError):
                pass  # still running (or already cancelled) — cancel below
        for future in pending:
            if not future.done():
                future.cancel()
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- compile -------------------------------------------------------

    def compile(
        self,
        graph: Graph,
        options: Optional[ScheduleOptions] = None,
        *,
        assume_canonical: bool = False,
    ) -> CompiledModel:
        """Compile ``graph`` for this session's architecture.

        ``options`` defaults to the paper's best configuration
        (``wdup`` mapping + ``clsa-cim`` scheduling); registered
        third-party mapping/scheduler names are accepted the same way
        as builtins.
        """
        ctx = CompilationContext(
            graph=graph,
            arch=self.arch,
            options=options if options is not None else ScheduleOptions(),
            cache=self.cache,
            assume_canonical=assume_canonical,
        )
        self._fire("on_compile_start", ctx, sink=ctx.diagnostics)
        compiled = self.pass_manager.run(ctx, self.hooks).to_compiled()
        self._fire("on_compile_end", compiled, sink=compiled.diagnostics)
        return compiled

    # -- evaluate ------------------------------------------------------

    def evaluate(
        self,
        model: Union[Graph, CompiledModel],
        options: Optional[ScheduleOptions] = None,
        *,
        assume_canonical: bool = False,
    ) -> "Metrics":
        """Metrics of a compiled model (compiling a graph first).

        ``options`` is only consulted when ``model`` is a graph.
        """
        if isinstance(model, CompiledModel):
            return model.evaluate()
        compiled = self.compile(model, options, assume_canonical=assume_canonical)
        return compiled.evaluate()

    def verify(
        self,
        target: Union[Graph, CompiledModel, str, "PathLike[str]"],
        *,
        rules: Optional[Iterable[str]] = None,
        cost: Optional[str] = None,
    ) -> "VerifyReport":
        """Statically verify a graph, a compiled model, or a saved artifact.

        Accepts a :class:`CompiledModel` (fresh or loaded), a bare
        :class:`Graph` (IR + architecture rules against this session's
        arch), or a filesystem path to a saved artifact.  ``rules``
        restricts the run to named rules; ``cost="cheap"`` skips the
        expensive whole-schedule analyses.
        """
        from .verify.engine import verify_artifact, verify_compiled, verify_graph

        if isinstance(target, CompiledModel):
            return verify_compiled(target, rules=rules, cost=cost)
        if isinstance(target, Graph):
            return verify_graph(target, self.arch, rules=rules)
        return verify_artifact(target, rules=rules, cost=cost)

    # -- jobs ----------------------------------------------------------

    def submit(self, job: Job) -> JobFuture:
        """Schedule one job on this session's executor.

        Atomic jobs (:class:`~repro.exec.jobs.CompileJob`,
        :class:`~repro.exec.jobs.EvaluateJob`) run asynchronously on
        pooled backends; composite jobs
        (:class:`~repro.exec.jobs.SweepJob`,
        :class:`~repro.exec.jobs.ExploreJob`) drive their own fan-out
        through the executor and resolve eagerly — the returned future
        is already complete, valued with the assembled
        ``list[SweepResult]`` / ``ExplorationResult``.

        Jobs without an explicit ``arch`` compile for this session's
        architecture; errors are captured on the
        :class:`~repro.exec.jobs.JobResult` envelope rather than
        raised (``result.unwrap()`` re-raises).
        """
        self._fire_job_submit(job)
        if isinstance(job, (SweepJob, ExploreJob)):
            result = self._guarded_composite(job)
            self._fire("on_job_done", result, sink=None)
            return JobFuture.completed(result, job=job)
        future = self.runtime.submit(job)
        future.job = job
        future.add_done_callback(self._job_done_callback)
        with self._inflight_lock:
            # Prune settled handles so long-lived sessions stay O(live).
            self._inflight = [f for f in self._inflight if not f.done()]
            self._inflight.append(future)
        return future

    def map(
        self,
        jobs: Union[Job, Iterable[Job]],
        *,
        ordered: bool = True,
    ) -> Iterator[JobResult]:
        """Run jobs through this session's executor, streaming results.

        ``jobs`` is a single job or an iterable.  A batch of atomic
        jobs fans out over the executor and streams one
        :class:`~repro.exec.jobs.JobResult` per job — in submission
        order (``ordered``, the default) or as completed.  A
        :class:`~repro.exec.jobs.SweepJob` expands into its grid and
        streams one result per config point (``value`` is the
        :class:`~repro.analysis.sweep.ConfigPoint`; each benchmark's
        baseline row streams first); an
        :class:`~repro.exec.jobs.ExploreJob` yields a single result.
        Mixed batches run strictly in order, each composite internally
        parallel.  Per-job errors are captured on the envelope.
        """
        items = [jobs] if isinstance(jobs, Job) else list(jobs)
        return self._map_stream(items, ordered)

    def _map_stream(self, items: Sequence[Job], ordered: bool) -> Iterator[JobResult]:
        composite = any(isinstance(job, (SweepJob, ExploreJob)) for job in items)
        if not composite:
            for job in items:
                self._fire_job_submit(job)
            for result in self.runtime.map_jobs(items, ordered=ordered, capture=True):
                self._fire("on_job_done", result, sink=None)
                yield result
            return
        for job in items:
            self._fire_job_submit(job)
            if isinstance(job, SweepJob):
                yield from self._sweep_job_results(job, ordered)
            elif isinstance(job, ExploreJob):
                result = self._guarded_composite(job)
                self._fire("on_job_done", result, sink=None)
                yield result
            else:
                for result in self.runtime.map_jobs(
                    [job], ordered=ordered, capture=True
                ):
                    self._fire("on_job_done", result, sink=None)
                    yield result

    def _sweep_job_results(self, job: SweepJob, ordered: bool) -> Iterator[JobResult]:
        """Stream one sweep job's grid, capturing expansion failures.

        Per-cell errors already arrive as envelopes (``capture=True``);
        a failure of the expansion itself (unknown benchmark, baseline
        compile error) becomes one final error envelope instead of
        escaping the stream.
        """
        from .analysis.sweep import sweep_job_stream

        key = self._composite_key(job)
        try:
            stream = sweep_job_stream(self.runtime, job, ordered=ordered, capture=True)
        except Exception:
            result = self._error_result(key)
            self._fire("on_job_done", result, sink=None)
            yield result
            return
        while True:
            try:
                result = next(stream)
            except StopIteration:
                return
            except Exception:
                result = self._error_result(key)
                self._fire("on_job_done", result, sink=None)
                yield result
                return
            self._fire("on_job_done", result, sink=None)
            yield result

    def _composite_key(self, job: Job) -> str:
        self._job_counter += 1
        return job_key(job, self._job_counter)

    @staticmethod
    def _error_result(key: str) -> JobResult:
        import traceback

        exc = sys.exc_info()[1]
        assert exc is not None
        return JobResult(
            key=key,
            error=JobError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
            ),
        )

    def _guarded_composite(self, job: Union[SweepJob, ExploreJob]) -> JobResult:
        """Run one composite job, capturing failures on the envelope."""
        key = self._composite_key(job)
        try:
            if isinstance(job, SweepJob):
                from .analysis.sweep import (
                    PAPER_XS,
                    assemble_sweep_results,
                    resolve_benchmarks,
                    sweep_job_stream,
                )

                specs = resolve_benchmarks(job.benchmarks)
                xs = job.xs if job.xs is not None else PAPER_XS
                stream = sweep_job_stream(
                    self.runtime, job, ordered=False, capture=False
                )
                value: Any = assemble_sweep_results(
                    specs, xs, (r.value for r in stream)
                )
            else:
                value = self._explore_job(job)
        except Exception:
            return self._error_result(key)
        return JobResult(key=key, value=value)

    def _explore_job(self, job: ExploreJob) -> "ExplorationResult":
        return self.explore(
            job.model,
            space=job.space,
            objectives=job.objectives,
            strategy=job.strategy,
            strategy_options=dict(job.strategy_options or {}) or None,
            budget=job.budget,
            store=job.store,
            resume=job.resume,
            seed=job.seed,
            max_total_pes=job.max_total_pes,
            warm_start=job.warm_start,
        )

    # -- sweep ---------------------------------------------------------

    def sweep(
        self,
        benchmarks: Sequence[Union[str, "BenchmarkSpec"]],
        xs: Optional[Sequence[int]] = None,
        *,
        jobs: Optional[int] = 1,
        executor: Union[Executor, str, None] = None,
        options_overrides: Optional[dict] = None,
        graphs: Optional[dict[str, Graph]] = None,
        verify: bool = False,
    ) -> list["SweepResult"]:
        """Run the paper's configuration grid (Fig. 7) per benchmark.

        ``benchmarks`` mixes :class:`~repro.models.zoo.BenchmarkSpec`
        objects and benchmark names; ``xs`` defaults to the paper's
        extra-PE values.  With ``jobs > 1`` (or ``executor=`` naming a
        parallel backend) config points fan out over the chosen
        executor; the serial path shares this session's cache, so
        repeated sweeps reuse stages.  The session's pass/compile
        hooks and any custom pass manager apply to every point — since
        neither can cross a process boundary, the ``process`` backend
        runs such sweeps serially (with a ``RuntimeWarning``); the
        ``thread`` backend keeps both working in parallel.  With
        ``verify`` every grid cell additionally runs the static
        verifier and its report rides on the returned points
        (``ConfigPoint.verify_report``).

        A grid point that fails (even after the session's retry
        budget) does not abort the sweep: the remaining points still
        run, the failure lands in ``SweepResult.failures``, and one
        summary ``RuntimeWarning`` reports the count.
        """
        from .analysis.sweep import PAPER_XS, resolve_benchmarks, run_grid

        specs = resolve_benchmarks(benchmarks)
        runtime, transient = self._sweep_runtime(jobs, executor)
        try:
            results = run_grid(
                runtime,
                specs,
                xs=tuple(xs) if xs is not None else PAPER_XS,
                options_overrides=options_overrides,
                graphs=graphs,
                verify=verify,
                capture=True,
            )
        finally:
            if transient:
                runtime.shutdown()
        failed = sum(len(r.failures) for r in results)
        if failed:
            total = sum(len(r.failures) + len(r.points) for r in results)
            warnings.warn(
                f"sweep finished with {failed}/{total} failed grid point(s); "
                "see SweepResult.failures for details",
                RuntimeWarning,
                stacklevel=2,
            )
        return results

    def _sweep_runtime(
        self, jobs: Optional[int], executor: Union[Executor, str, None]
    ) -> tuple[JobRuntime, bool]:
        """The runtime a sweep/explore call should fan out through.

        Per-call ``jobs``/``executor`` arguments create a transient
        runtime (shut down after the call); the defaults reuse the
        session's own runtime and its warm executor.
        """
        if executor is None and jobs == 1:
            return self.runtime, False
        runtime = JobRuntime(
            executor,
            jobs=jobs,
            use_cache=self.cache is not None,
            cache=self.cache,
            pass_manager=self.pass_manager if self._custom_pass_manager else None,
            hooks=self.hooks,
            arch=self.arch,
            store=self.store,
            serial_note="sweeping serially",
            retry=self._retry,
            job_timeout=self._job_timeout,
            fault_plan=self._fault_plan,
        )
        return runtime, True

    # -- explore -------------------------------------------------------

    def explore(
        self,
        model: Union[Graph, str],
        *,
        space: Optional["SearchSpace"] = None,
        objectives: Sequence[str] = ("latency", "energy"),
        strategy: str = "random",
        strategy_options: Optional[dict] = None,
        budget: int = 40,
        store: Union["RunStore", str, None] = None,
        resume: bool = True,
        seed: int = 0,
        jobs: Optional[int] = 1,
        executor: Union[Executor, str, None] = None,
        max_total_pes: Optional[int] = None,
        warm_start: bool = True,
    ) -> "ExplorationResult":
        """Multi-objective design-space search around this session.

        ``model`` is a graph or a zoo model name.  The search space
        defaults to :func:`repro.explore.default_space` (schedule
        knobs, duplication caps, PE budget, PEs per tile); points are
        scored on ``objectives`` (any names registered through
        :func:`repro.explore.register_objective`) and the result
        carries the incremental Pareto frontier.  ``store`` names a
        JSONL run store: every evaluation is journalled, and re-runs
        reuse journalled points without recompiling (``resume``).
        This session's architecture serves as the template for
        explored architectures (crossbar timing, NoC, DRAM specs);
        its cache is shared with the exploration, and ``jobs`` /
        ``executor`` fan evaluation out over the chosen backend.
        """
        from .explore.engine import Explorer
        from .models.zoo import build

        graph = build(model) if isinstance(model, str) else model
        if executor is None and jobs == 1 and self._executor_spec is not None:
            # Reuse the session's *resolved* backend (its real worker
            # count, warm pools); the explorer treats instances as
            # externally owned and leaves them running.
            executor = self.executor
        explorer = Explorer(
            graph,
            base_arch=self.arch,
            space=space,
            objectives=objectives,
            strategy=strategy,
            strategy_options=strategy_options,
            budget=budget,
            store=store,
            resume=resume,
            seed=seed,
            jobs=jobs,
            cache=self.cache,
            max_total_pes=max_total_pes,
            warm_start=warm_start,
            executor=executor,
            retry=self._retry,
            job_timeout=self._job_timeout,
            fault_plan=self._fault_plan,
            _internal=True,
        )
        return explorer.run()

    # -- helpers -------------------------------------------------------

    def _fire_job_submit(self, job: Job) -> None:
        self._fire("on_job_submit", job, sink=None)

    def _job_done_callback(self, future: JobFuture) -> None:
        try:
            result = future.result()
        except Exception:
            return  # pool-level failure; nothing to observe
        self._fire("on_job_done", result, sink=None)

    def _fire(self, event: str, payload: Any, sink: Optional[list] = None) -> None:
        """Invoke one hook event on every hook, never letting it abort.

        A hook that raises is recorded on ``sink`` (a diagnostics
        list, when the payload carries one) and otherwise swallowed —
        observation must not change compilation outcomes.
        """
        for hook in self.hooks:
            callback = getattr(hook, event, None)
            if callback is None:
                continue
            try:
                callback(payload)
            except Exception as exc:  # noqa: BLE001 - diagnostics, not control flow
                if sink is not None:
                    sink.append(f"hook {event} raised {type(exc).__name__}: {exc}")
