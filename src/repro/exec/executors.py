"""Pluggable execution backends: the :class:`Executor` protocol.

Three builtin backends share one submission surface:

``inline``
    Runs the callable immediately in the calling thread and returns an
    already-completed future.  Zero overhead, fully deterministic —
    the default, and the fallback every parallel path degrades to.
``thread``
    A lazily-created :class:`concurrent.futures.ThreadPoolExecutor`.
    Shares the calling process's memory, so session hooks, custom pass
    managers and the session compilation cache all keep working;
    compilation is CPU-bound Python, so threads mostly help when many
    points are cache-served or when overlapping the energy/metrics
    scoring.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` that absorbs the
    worker bootstrap historically private to ``repro.analysis.sweep``:
    named graphs ship to every worker once (serialized through
    :mod:`repro.ir.serialize` via the pool initializer), workers
    rebuild them lazily and keep per-process compilation caches, and
    the pool persists across batches so cache warmth survives (see
    :meth:`ProcessExecutor.prepare`).

Third-party backends (remote, sharded...) plug in through
:func:`register_executor` and become addressable by name everywhere an
executor is accepted — ``Session(..., executor="mybackend")``, the CLI
``--executor`` flag, and :class:`repro.analysis.sweep.SweepExecutor`.
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Any, Callable, Iterator, Mapping, Optional, Protocol, Sequence, runtime_checkable

from ..ir.graph import Graph
from .futures import JobFuture
from .worker import init_worker

__all__ = [
    "Executor",
    "ExecutorUnavailable",
    "InlineExecutor",
    "ProcessExecutor",
    "ThreadExecutor",
    "executor_names",
    "make_executor",
    "register_executor",
    "resolve_executor",
]


class ExecutorUnavailable(RuntimeError):
    """Raised when a backend cannot start (e.g. sandboxed process pools).

    The runtime catches this and falls back to inline execution with a
    ``RuntimeWarning`` — results are identical either way.
    """


@runtime_checkable
class Executor(Protocol):
    """The submission surface every backend implements.

    ``submit`` schedules one callable and returns a
    :class:`~repro.exec.futures.JobFuture`; ``map`` is the streaming
    convenience over many argument tuples; ``shutdown`` releases any
    pooled resources.  ``crosses_process`` tells the runtime whether
    submitted callables leave this interpreter (and therefore must be
    picklable and cannot share hooks, pass managers, or caches).
    """

    name: str
    #: Whether submitted callables run outside this interpreter.
    crosses_process: bool
    #: Whether submissions may run concurrently (pooled backends).
    parallel: bool

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> JobFuture: ...

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Sequence[Any]],
        *,
        ordered: bool = True,
    ) -> Iterator[Any]: ...

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None: ...


def _map_via_submit(
    executor: "Executor",
    fn: Callable[..., Any],
    argslist: Sequence[Sequence[Any]],
    ordered: bool,
) -> Iterator[Any]:
    """Default ``map``: fan out through ``submit`` and stream results."""
    submitted = [executor.submit(fn, *args) for args in argslist]
    if ordered:
        for handle in submitted:
            yield handle.raw.result()
        return
    raws = {handle.raw: handle for handle in submitted}
    for done in futures.as_completed(raws):
        yield done.result()


class InlineExecutor:
    """Immediate in-thread execution (the serial reference backend)."""

    name = "inline"
    crosses_process = False
    parallel = False

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> JobFuture:
        raw: "futures.Future[Any]" = futures.Future()
        try:
            raw.set_result(fn(*args))
        except Exception as exc:
            raw.set_exception(exc)
        return JobFuture(raw)

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Sequence[Any]],
        *,
        ordered: bool = True,
    ) -> Iterator[Any]:
        for args in argslist:
            yield fn(*args)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Nothing to release."""


class ThreadExecutor:
    """Thread-pool execution sharing the calling process's memory."""

    name = "thread"
    crosses_process = False
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 1)
        self._pool: Optional[futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = futures.ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> JobFuture:
        return JobFuture(self._ensure_pool().submit(fn, *args))

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Sequence[Any]],
        *,
        ordered: bool = True,
    ) -> Iterator[Any]:
        return _map_via_submit(self, fn, argslist, ordered)

    def reset(self) -> None:
        """Drop the worker pool (cancelling queued work); lazily rebuilt."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        self._pool = None


class ProcessExecutor:
    """Process-pool execution with graph shipping and worker caches.

    The pool is created lazily by :meth:`prepare`, which ships the
    given named graphs to every worker through the pool initializer
    (serialized once, rebuilt lazily per process).  Re-preparing with
    the *same* graph objects reuses the live pool, so per-process
    compilation caches stay warm across batches — the property the
    exploration engine's strategy loop depends on.  Graphs are held by
    strong reference and compared by identity: an ``id()``-based key
    could alias a recycled address to a stale pool initialized with a
    different graph.
    """

    name = "process"
    crosses_process = True
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 1)
        self._pool: Optional[futures.ProcessPoolExecutor] = None
        self._shipped: Optional[dict[str, Graph]] = None
        self._use_cache: Optional[bool] = None
        self._store_path: Optional[str] = None
        self._heartbeat_dir: Optional[str] = None
        self._retired: list[futures.ProcessPoolExecutor] = []

    @property
    def pool(self) -> Optional[futures.ProcessPoolExecutor]:
        """The live worker pool (``None`` before :meth:`prepare`)."""
        return self._pool

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of every worker process this executor has spawned and
        not yet released (live pool plus retired-but-draining pools)."""
        pids: list[int] = []
        for pool in [self._pool, *self._retired]:
            if pool is None:
                continue
            processes = getattr(pool, "_processes", None) or {}
            pids.extend(int(pid) for pid in list(processes))
        return tuple(pids)

    def kill_workers(self) -> tuple[int, ...]:
        """SIGKILL every worker process and drop all pools.

        The reap path for interrupted runs: a Ctrl-C mid-sweep must not
        leave orphaned workers grinding through a compile the driver no
        longer wants.  Returns the PIDs that were signalled.
        """
        import signal as _signal

        pids = self.worker_pids()
        for pid in pids:
            try:
                os.kill(pid, _signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
        for pool in [self._pool, *self._retired]:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        self._retired.clear()
        self._pool = None
        self._shipped = None
        self._use_cache = None
        self._store_path = None
        self._heartbeat_dir = None
        return pids

    def prepare(
        self,
        graphs: Mapping[str, Graph],
        use_cache: bool = True,
        store_path: Optional[str] = None,
        heartbeat_dir: Optional[str] = None,
    ) -> None:
        """Make sure a pool exists with ``graphs`` shipped to every worker.

        The live pool is reused whenever every wanted graph is already
        shipped (by object identity) under the same name and the cache
        policy is unchanged — in particular, preparing with *fewer*
        graphs never disturbs a warm pool.  When a rebuild is needed
        the old pool is **retired**, not cancelled: it keeps draining
        its queued futures in the background, so outstanding
        ``submit`` results still arrive while new work lands on a
        fresh pool carrying the merged payload.  Raises
        :class:`ExecutorUnavailable` when no pool can be created
        (restricted sandboxes); the runtime then falls back to inline
        execution.
        """
        wanted = dict(graphs)
        if (
            self._pool is not None
            and self._use_cache == use_cache
            and self._store_path == store_path
            and self._heartbeat_dir == heartbeat_dir
            and self._shipped is not None
            and all(
                name in self._shipped and self._shipped[name] is graph
                for name, graph in wanted.items()
            )
        ):
            return
        merged = dict(self._shipped or {})
        merged.update(wanted)
        self._retire()
        from ..ir import serialize

        payload = {name: serialize.dumps(graph) for name, graph in merged.items()}
        try:
            # Attribute lookup at call time on purpose: tests exercise
            # sandbox fallbacks by patching futures.ProcessPoolExecutor.
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=init_worker,
                initargs=(payload, use_cache, store_path, heartbeat_dir),
            )
        except (OSError, ValueError, RuntimeError) as exc:
            raise ExecutorUnavailable(str(exc)) from exc
        self._shipped = merged
        self._use_cache = use_cache
        self._store_path = store_path
        self._heartbeat_dir = heartbeat_dir

    def _retire(self) -> None:
        """Let the old pool drain queued work in the background."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=False)
            self._retired.append(self._pool)
        self._pool = None

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> JobFuture:
        if self._pool is None:
            self.prepare({}, use_cache=True)
        assert self._pool is not None
        return JobFuture(self._pool.submit(fn, *args))

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Sequence[Any]],
        *,
        ordered: bool = True,
    ) -> Iterator[Any]:
        return _map_via_submit(self, fn, argslist, ordered)

    def reset(self) -> None:
        """Drop the live pool (cancelling queued work); lazily rebuilt."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self._shipped = None
        self._use_cache = None
        self._store_path = None
        self._heartbeat_dir = None

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        for retired in self._retired:
            retired.shutdown(wait=wait, cancel_futures=cancel_futures)
        self._retired.clear()
        self._pool = None
        self._shipped = None
        self._use_cache = None
        self._store_path = None
        self._heartbeat_dir = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: A factory receives the requested worker count (``None`` = backend
#: default) and returns a fresh executor instance.
ExecutorFactory = Callable[[Optional[int]], Executor]

_EXECUTORS: dict[str, ExecutorFactory] = {}
_BUILTIN_EXECUTORS = ("inline", "thread", "process")


def register_executor(
    name: str, factory: ExecutorFactory, replace: bool = False
) -> None:
    """Register an executor backend under ``name``.

    The factory is called with the requested worker count whenever the
    name is resolved (``Session(executor=name)``, CLI ``--executor``).
    Remote or sharded backends plug in here without core changes.
    """
    if not replace and name in _EXECUTORS:
        raise ValueError(f"executor {name!r} is already registered")
    _EXECUTORS[name] = factory


def unregister_executor(name: str) -> None:
    """Remove a registered backend (builtin names are protected)."""
    if name in _BUILTIN_EXECUTORS:
        raise ValueError(f"cannot unregister builtin executor {name!r}")
    _EXECUTORS.pop(name, None)


def executor_names() -> tuple[str, ...]:
    """All registered backend names (builtins first)."""
    return tuple(_EXECUTORS)


def make_executor(
    spec: "Executor | str | None", *, jobs: Optional[int] = None
) -> Executor:
    """Resolve an executor from a name, an instance, or ``None``.

    ``None`` resolves to ``process`` when ``jobs`` asks for parallelism
    (>1 workers, or ``None`` meaning one per CPU) and ``inline``
    otherwise — the historical ``SweepExecutor(jobs=...)`` semantics.
    Instances pass through unchanged.
    """
    if spec is None:
        spec = "process" if jobs is None or jobs > 1 else "inline"
    if isinstance(spec, str):
        try:
            factory = _EXECUTORS[spec]
        except KeyError:
            names = ", ".join(sorted(executor_names()))
            raise KeyError(
                f"unknown executor {spec!r}; registered backends: {names} "
                "(plugins register via repro.exec.register_executor)"
            ) from None
        return factory(jobs)
    return spec


#: Public alias: resolve a backend name/instance to an executor.
resolve_executor = make_executor


def _make_async(jobs: Optional[int]) -> Executor:
    # Imported lazily: repro.service depends on this module.
    from ..service.async_executor import AsyncExecutor

    return AsyncExecutor(jobs)


def _make_remote(jobs: Optional[int]) -> Executor:
    # Reads $REPRO_SERVER_URL; raises ValueError without a server URL.
    from ..service.client import RemoteExecutor

    return RemoteExecutor(jobs=jobs)


register_executor("inline", lambda jobs: InlineExecutor())
register_executor("thread", lambda jobs: ThreadExecutor(jobs))
register_executor("process", lambda jobs: ProcessExecutor(jobs))
register_executor("async", _make_async)
register_executor("remote", _make_remote)
