"""The :class:`JobFuture` handle returned by job submission.

A thin, backend-agnostic wrapper over :class:`concurrent.futures.Future`
that always resolves to a :class:`~repro.exec.jobs.JobResult`.  Inline
execution wraps an already-completed future; thread and process
backends wrap live pool futures — process futures additionally carry a
``transform`` turning the worker's wire payload into the final result
on the caller's side.
"""

from __future__ import annotations

import warnings
from concurrent import futures
from typing import Any, Callable, Optional

from .jobs import Job, JobResult

__all__ = ["JobFuture"]


class JobFuture:
    """Handle on one submitted job.

    Mirrors the :class:`concurrent.futures.Future` surface
    (``done``/``cancel``/``result``/``exception``/
    ``add_done_callback``) but ``result()`` returns the job's
    :class:`~repro.exec.jobs.JobResult` envelope.
    """

    def __init__(
        self,
        raw: "futures.Future[Any]",
        *,
        job: Optional[Job] = None,
        transform: Optional[Callable[[Any], JobResult]] = None,
    ) -> None:
        self.raw = raw
        self.job = job
        self._transform = transform
        self._result: Optional[JobResult] = None

    @classmethod
    def completed(cls, result: JobResult, *, job: Optional[Job] = None) -> "JobFuture":
        """A future that already resolved to ``result``."""
        raw: "futures.Future[Any]" = futures.Future()
        raw.set_result(result)
        return cls(raw, job=job)

    @classmethod
    def failed(cls, exc: BaseException, *, job: Optional[Job] = None) -> "JobFuture":
        """A future that already failed with ``exc``."""
        raw: "futures.Future[Any]" = futures.Future()
        raw.set_exception(exc)
        return cls(raw, job=job)

    def done(self) -> bool:
        """Whether the underlying work finished (or was cancelled)."""
        return self.raw.done()

    def running(self) -> bool:
        """Whether the underlying work is currently executing."""
        return self.raw.running()

    def cancel(self) -> bool:
        """Attempt to cancel the job; returns whether it is *actually*
        cancelled.

        ``True`` only when the underlying future reports ``CANCELLED``
        after the attempt — the job was still queued and will never
        run.  Anything else returns ``False``: a job that is already
        running (including a process worker that has picked the job
        up, or a resilient submit whose driver thread has started)
        keeps computing and its eventual result is discarded.  Note
        the raw ``Future.cancel`` return value alone is optimistic for
        wrapped futures — a cached or transformed result can exist
        even when the raw state says cancelled — so the true state is
        re-read instead of trusted.
        """
        if self._result is not None:
            return False
        self.raw.cancel()
        return self.raw.cancelled() and self._result is None

    def cancelled(self) -> bool:
        """Whether the job was cancelled before it could run."""
        return self.raw.cancelled() and self._result is None

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block for (at most ``timeout`` seconds) and return the result."""
        if self._result is None:
            payload = self.raw.result(timeout)
            self._result = (
                self._transform(payload) if self._transform is not None else payload
            )
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The exception the underlying work raised, if any."""
        return self.raw.exception(timeout)

    def add_done_callback(self, fn: Callable[["JobFuture"], None]) -> None:
        """Call ``fn(self)`` exactly once when the underlying work completes.

        Fires on completion, failure, and cancellation alike; a
        callback added after the future already settled runs
        immediately.  Each registered callback fires at most once, and
        a callback that raises emits a ``RuntimeWarning`` instead of
        propagating — a user callback must never break the executor
        driver loop (or the caller registering it late).
        """
        fired = [False]

        def invoke(_raw: "futures.Future[Any]") -> None:
            if fired[0]:
                return
            fired[0] = True
            try:
                fn(self)
            except Exception as exc:  # noqa: BLE001 - isolation by design
                warnings.warn(
                    f"JobFuture done-callback {fn!r} raised "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

        self.raw.add_done_callback(invoke)
