"""Worker-process bootstrap for the ``process`` executor.

Absorbs the machinery historically private to ``repro.analysis.sweep``:
workers receive the named canonical graphs once (serialized, via the
pool initializer), rebuild them lazily on first use, and keep one
:class:`~repro.core.cache.CompilationCache` per graph name per
process, so stage reuse survives the process boundary.  The only
module-level entry point pools submit is :func:`run_job`, which
resolves a shipped job against this state and executes it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from typing import Any, Dict, Optional

from ..core.cache import CompilationCache
from ..ir.graph import Graph
from .faults import FaultSpec
from .jobs import Job, JobResult

__all__ = ["init_worker", "run_job", "worker_cache", "worker_graph"]

#: Name under which jobs carrying an in-memory graph share one
#: per-process cache (cache keys are graph-fingerprint-scoped, so
#: sharing across models is safe).
DIRECT = "__direct__"

_STATE: Dict[str, Any] = {}


def init_worker(
    payload: Dict[str, str],
    use_cache: bool,
    store_path: Optional[str] = None,
    heartbeat_dir: Optional[str] = None,
) -> None:
    """Pool initializer: stash serialized graphs, cache policy, store path.

    ``store_path`` (when caching is on) names the driver's persistent
    artifact store; every worker cache in this process layers on one
    shared :class:`~repro.store.disk.ArtifactStore` opened lazily at
    that path, so pool workers start disk-warm instead of cold.

    ``heartbeat_dir`` is a driver-owned directory where this worker
    advertises the job it is currently running (one ``<pid>.json`` per
    worker, written at job start, removed at job end).  The driver's
    watchdog uses it to SIGKILL the right worker on a deadline
    overrun, and pool-death handling uses it to attribute a crash to
    the jobs that were actually executing.
    """
    _STATE["payload"] = payload
    _STATE["graphs"] = {}
    _STATE["caches"] = {} if use_cache else None
    _STATE["store_path"] = store_path if use_cache else None
    _STATE["store"] = None
    _STATE["heartbeat_dir"] = heartbeat_dir


def _worker_store() -> Any:
    """This process's shared artifact store (None without a path)."""
    path = _STATE.get("store_path")
    if path is None:
        return None
    if _STATE.get("store") is None:
        from ..store.disk import ArtifactStore

        try:
            _STATE["store"] = ArtifactStore(path)
        except OSError:
            _STATE["store_path"] = None
            return None
    return _STATE["store"]


def worker_graph(name: str) -> Graph:
    """The shipped graph called ``name``, rebuilt lazily per process."""
    graphs: Dict[str, Graph] = _STATE["graphs"]
    if name not in graphs:
        from ..ir import serialize

        graphs[name] = serialize.loads(_STATE["payload"][name])
    return graphs[name]


def worker_cache(name: str) -> Optional[CompilationCache]:
    """This process's compilation cache for ``name`` (None if disabled)."""
    caches: Optional[Dict[str, CompilationCache]] = _STATE.get("caches")
    if caches is None:
        return None
    return caches.setdefault(name, CompilationCache(store=_worker_store()))


def _heartbeat_path() -> Optional[str]:
    directory = _STATE.get("heartbeat_dir")
    if directory is None:
        return None
    return os.path.join(directory, f"{os.getpid()}.json")


def _heartbeat_start(key: str, attempt: int) -> None:
    path = _heartbeat_path()
    if path is None:
        return
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "key": key,
                    "attempt": attempt,
                    "pid": os.getpid(),
                    "started": time.time(),
                },
                handle,
            )
    except OSError:
        pass  # heartbeats are best-effort; losing one only degrades attribution


def _heartbeat_clear() -> None:
    path = _heartbeat_path()
    if path is None:
        return
    try:
        os.unlink(path)
    except OSError:
        pass


def run_job(
    job: Job,
    capture: bool,
    attempt: int = 1,
    timeout: Optional[float] = None,
    fault: Optional[FaultSpec] = None,
) -> JobResult:
    """Execute one shipped job against this worker's state.

    String graphs matching the shipped payload resolve here (keeping
    the per-name worker cache warm); any other string is a zoo model
    name that :func:`~repro.exec.runtime.execute_job` builds inside
    its error-capture boundary.  ``attempt``/``timeout``/``fault`` are
    the resilience context for this execution: the attempt number for
    provenance, the cooperative wall-clock budget, and the single
    injected fault (if any) the driver scheduled for this attempt.
    """
    from .runtime import execute_job

    graph = getattr(job, "graph", None)
    if isinstance(graph, str) and graph in _STATE.get("payload", {}):
        resolved = replace(job, graph=worker_graph(graph))  # type: ignore[type-var]
        cache = worker_cache(graph)
    else:
        resolved = job
        cache = worker_cache(DIRECT)
    from .jobs import job_key

    _heartbeat_start(job_key(job), attempt)
    try:
        return execute_job(
            resolved,
            cache=cache,
            capture=capture,
            timeout=timeout,
            attempt=attempt,
            fault=fault,
            backend="process",
            in_worker=True,
            store_root=_STATE.get("store_path"),
        )
    finally:
        _heartbeat_clear()
