"""Worker-process bootstrap for the ``process`` executor.

Absorbs the machinery historically private to ``repro.analysis.sweep``:
workers receive the named canonical graphs once (serialized, via the
pool initializer), rebuild them lazily on first use, and keep one
:class:`~repro.core.cache.CompilationCache` per graph name per
process, so stage reuse survives the process boundary.  The only
module-level entry point pools submit is :func:`run_job`, which
resolves a shipped job against this state and executes it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from ..core.cache import CompilationCache
from ..ir.graph import Graph
from .jobs import Job, JobResult

__all__ = ["init_worker", "run_job", "worker_cache", "worker_graph"]

#: Name under which jobs carrying an in-memory graph share one
#: per-process cache (cache keys are graph-fingerprint-scoped, so
#: sharing across models is safe).
DIRECT = "__direct__"

_STATE: Dict[str, Any] = {}


def init_worker(payload: Dict[str, str], use_cache: bool) -> None:
    """Pool initializer: stash serialized graphs and the cache policy."""
    _STATE["payload"] = payload
    _STATE["graphs"] = {}
    _STATE["caches"] = {} if use_cache else None


def worker_graph(name: str) -> Graph:
    """The shipped graph called ``name``, rebuilt lazily per process."""
    graphs: Dict[str, Graph] = _STATE["graphs"]
    if name not in graphs:
        from ..ir import serialize

        graphs[name] = serialize.loads(_STATE["payload"][name])
    return graphs[name]


def worker_cache(name: str) -> Optional[CompilationCache]:
    """This process's compilation cache for ``name`` (None if disabled)."""
    caches: Optional[Dict[str, CompilationCache]] = _STATE.get("caches")
    if caches is None:
        return None
    return caches.setdefault(name, CompilationCache())


def run_job(job: Job, capture: bool) -> JobResult:
    """Execute one shipped job against this worker's state.

    String graphs matching the shipped payload resolve here (keeping
    the per-name worker cache warm); any other string is a zoo model
    name that :func:`~repro.exec.runtime.execute_job` builds inside
    its error-capture boundary.
    """
    from .runtime import execute_job

    graph = getattr(job, "graph", None)
    if isinstance(graph, str) and graph in _STATE.get("payload", {}):
        resolved = replace(job, graph=worker_graph(graph))  # type: ignore[type-var]
        cache = worker_cache(graph)
    else:
        resolved = job
        cache = worker_cache(DIRECT)
    return execute_job(resolved, cache=cache, capture=capture)
