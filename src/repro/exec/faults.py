"""Deterministic fault injection for the execution layer.

A :class:`FaultPlan` maps ``(job key, attempt)`` to a :class:`FaultSpec`
describing what should go wrong when that attempt runs.  The runtime
looks faults up *driver-side* and ships only the single spec relevant to
the attempt it is submitting — the plan itself never crosses the process
boundary, so provenance (which attempt failed, how) is a pure function
of the plan and is byte-identical across re-runs.

Supported actions:

``raise``
    Raise :class:`TransientFault` (retryable) or :class:`InjectedFault`
    (fails fast), per ``transient``.
``kill``
    SIGKILL the executing process — in a worker this breaks the whole
    pool, exercising resurrection; applied inline/thread-side (where
    killing would take the driver down) it degrades to raising
    :class:`~repro.exec.resilience.WorkerCrashError`.
``sleep``
    Sleep ``seconds`` *cooperatively*, checking the job deadline every
    slice — models a slow job that overruns its budget and is caught by
    the cooperative deadline check.
``hang``
    Sleep ``seconds`` in one uninterruptible block — models a wedged
    job that only the process watchdog's SIGKILL can clear.
``corrupt``
    Garble one object file in the artifact store, then continue —
    exercises the store's quarantine path on a later read.

:meth:`FaultPlan.seeded` builds reproducible chaos plans (N kills, M
sleeps, ...) from a seed; the CI ``chaos-smoke`` job and the chaos tests
are built on it.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .resilience import WorkerCrashError, check_deadline

__all__ = [
    "FAULT_ACTIONS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TransientFault",
    "apply_fault",
]


class InjectedFault(RuntimeError):
    """A deterministic injected failure — not retryable by default."""


class TransientFault(RuntimeError):
    """An injected transient failure — retryable by default."""


#: Actions a :class:`FaultSpec` may request.
FAULT_ACTIONS = ("raise", "kill", "sleep", "hang", "corrupt")

#: Granularity of the cooperative sleep loop used by the ``sleep``
#: action (seconds between deadline checks).
_SLEEP_SLICE_S = 0.01


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do, for how long, with what message."""

    action: str
    seconds: float = 0.0
    message: str = "injected fault"
    transient: bool = True

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults keyed by job key × attempt.

    Attempts are 1-based: ``{("bench/cfg+4", 1): FaultSpec("kill")}``
    kills the worker on the first execution of that job and lets every
    later attempt run clean.
    """

    faults: Mapping[Tuple[str, int], FaultSpec] = field(default_factory=dict)

    def get(self, key: str, attempt: int) -> Optional[FaultSpec]:
        """The fault scheduled for this attempt of ``key``, if any."""
        return self.faults.get((key, attempt))

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """A plan with ``other``'s faults layered over this one's."""
        combined: Dict[Tuple[str, int], FaultSpec] = dict(self.faults)
        combined.update(other.faults)
        return FaultPlan(combined)

    @classmethod
    def seeded(
        cls,
        keys: Iterable[str],
        *,
        seed: int = 0,
        kills: int = 0,
        sleeps: int = 0,
        hangs: int = 0,
        raises: int = 0,
        corrupts: int = 0,
        attempt: int = 1,
        sleep_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """A reproducible chaos plan over ``keys``.

        Victims are drawn without replacement from ``sorted(keys)``
        with ``random.Random(seed)``, then assigned actions in a fixed
        order (kills, sleeps, hangs, raises, corrupts) — the same seed
        and key set always produce the same plan.  ``sleep_seconds``
        sizes the ``sleep``/``hang`` overruns; make it comfortably
        larger than the job timeout under test.
        """
        pool = sorted(set(keys))
        total = kills + sleeps + hangs + raises + corrupts
        if total > len(pool):
            raise ValueError(
                f"plan wants {total} victims but only {len(pool)} keys are available"
            )
        rng = random.Random(seed)
        victims = rng.sample(pool, total)
        faults: Dict[Tuple[str, int], FaultSpec] = {}
        cursor = 0
        for count, spec in (
            (kills, FaultSpec("kill", message="injected worker SIGKILL")),
            (
                sleeps,
                FaultSpec(
                    "sleep", seconds=sleep_seconds, message="injected deadline overrun"
                ),
            ),
            (
                hangs,
                FaultSpec("hang", seconds=sleep_seconds, message="injected hang"),
            ),
            (raises, FaultSpec("raise", message="injected transient failure")),
            (corrupts, FaultSpec("corrupt", message="injected store corruption")),
        ):
            for key in victims[cursor : cursor + count]:
                faults[(key, attempt)] = spec
            cursor += count
        return cls(faults)


def _corrupt_store_object(store_root: str) -> bool:
    """Garble the first (lexicographically) object file under
    ``store_root``; returns whether anything was corrupted."""
    objects = os.path.join(store_root, "objects")
    if not os.path.isdir(objects):
        return False
    candidates = []
    for dirpath, _dirnames, filenames in os.walk(objects):
        for name in filenames:
            candidates.append(os.path.join(dirpath, name))
    if not candidates:
        return False
    target = sorted(candidates)[0]
    try:
        with open(target, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00CORRUPTED\x00")
    except OSError:
        return False
    return True


def apply_fault(
    spec: Optional[FaultSpec],
    *,
    in_worker: bool,
    store_root: Optional[str] = None,
) -> None:
    """Execute an injected fault at the start of a job attempt.

    ``in_worker`` distinguishes a sacrificial pool worker (where
    ``kill`` really SIGKILLs the process) from the driver process
    (where it degrades to a raised
    :class:`~repro.exec.resilience.WorkerCrashError` so chaos plans
    stay runnable on the inline/thread backends).
    """
    if spec is None:
        return
    if spec.action == "raise":
        if spec.transient:
            raise TransientFault(spec.message)
        raise InjectedFault(spec.message)
    if spec.action == "kill":
        if in_worker:
            os.kill(os.getpid(), signal.SIGKILL)
            # Unreachable: SIGKILL cannot be caught.  Guard anyway so a
            # platform that ignores it still fails the attempt.
            raise WorkerCrashError(spec.message)
        raise WorkerCrashError(spec.message)
    if spec.action == "sleep":
        end = time.monotonic() + spec.seconds
        while time.monotonic() < end:
            check_deadline("injected sleep")
            time.sleep(min(_SLEEP_SLICE_S, max(0.0, end - time.monotonic())))
        check_deadline("injected sleep")
        return
    if spec.action == "hang":
        time.sleep(spec.seconds)
        check_deadline("injected hang")
        return
    if spec.action == "corrupt":
        if store_root is not None:
            _corrupt_store_object(store_root)
        return
    raise ValueError(f"unknown fault action {spec.action!r}")
