"""Job execution: one engine behind every fan-out path.

:func:`execute_job` runs a single atomic job (compile / evaluate) and
wraps the outcome in the canonical :class:`~repro.exec.jobs.JobResult`
envelope; :class:`JobRuntime` drives batches of jobs through a
pluggable :class:`~repro.exec.executors.Executor` with the semantics
the sweep and exploration engines rely on:

* named graphs resolve driver-side for in-process backends and ship
  once through the pool initializer for the ``process`` backend;
* one compilation cache per graph name (or one shared cache), with
  per-process clones behind the process boundary;
* pool failures — at construction, submit, or result time — degrade
  to inline execution with a ``RuntimeWarning``, producing identical
  results;
* custom pass managers and pass-level hooks cannot cross a process
  boundary, so a ``process`` backend combined with either runs inline
  with a warning (the ``thread`` and ``inline`` backends share memory
  and keep both working).

Results stream back as an iterator, in submission order
(``ordered=True``) or completion order.
"""

from __future__ import annotations

import traceback as _traceback
import warnings
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field as dc_field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:
    from ..store.disk import ArtifactStore

from ..arch.config import ArchitectureConfig
from ..core.cache import CompilationCache
from ..ir.graph import Graph
from .executors import Executor, ExecutorUnavailable, make_executor
from .futures import JobFuture
from .jobs import (
    CompileJob,
    EvaluateJob,
    Evaluation,
    Job,
    JobError,
    JobResult,
    job_key,
)
from .worker import DIRECT, run_job

__all__ = [
    "JobRuntime",
    "execute_job",
    "reset_deprecation_warnings",
    "warn_deprecated",
]

#: Hook attributes that must run in the compiling interpreter.
_PASS_EVENTS = (
    "on_pass_start",
    "on_pass_end",
    "on_compile_start",
    "on_compile_end",
)


def _has_pass_hooks(hooks: Sequence[Any]) -> bool:
    """Whether any hook observes compilation itself (not just jobs)."""
    return any(
        getattr(hook, event, None) is not None
        for hook in hooks
        for event in _PASS_EVENTS
    )


# ---------------------------------------------------------------------------
# single-job execution (runs driver-side and inside process workers)
# ---------------------------------------------------------------------------


def execute_job(
    job: Job,
    cache: Optional[CompilationCache] = None,
    pass_manager: Any = None,
    hooks: Sequence[Any] = (),
    capture: bool = True,
) -> JobResult:
    """Run one atomic job and wrap the outcome in a :class:`JobResult`.

    With ``capture`` (the default) any exception the job raises is
    recorded as a :class:`~repro.exec.jobs.JobError` on the envelope;
    without it, exceptions propagate — the sweep and exploration
    drivers run uncaptured so their historical error behaviour is
    preserved.
    """
    key = job_key(job)
    try:
        value, timings, diagnostics, delta, verify_report = _run_atomic(
            job, cache, pass_manager, hooks
        )
        return JobResult(
            key=key,
            value=value,
            timings=timings,
            diagnostics=tuple(diagnostics),
            cache_hits=delta.hits,
            cache_misses=delta.misses,
            cache_store_hits=delta.store_hits,
            cache_stages=delta.stages,
            verify_report=verify_report,
        )
    except Exception as exc:
        if not capture:
            raise
        return JobResult(
            key=key,
            error=JobError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=_traceback.format_exc(),
            ),
        )


@dataclass(frozen=True)
class _CacheDelta:
    """Cache-counter movement observed around one job."""

    hits: int = 0
    store_hits: int = 0
    misses: int = 0
    stages: dict[str, tuple[int, int, int]] = dc_field(default_factory=dict)


def _cache_delta(
    before: Mapping[str, tuple[int, int, int]],
    after: Mapping[str, tuple[int, int, int]],
) -> _CacheDelta:
    """Per-stage ``(memory, store, miss)`` movement between snapshots."""
    stages: dict[str, tuple[int, int, int]] = {}
    memory = store = misses = 0
    for stage, (mem1, sto1, mis1) in after.items():
        mem0, sto0, mis0 = before.get(stage, (0, 0, 0))
        delta = (max(0, mem1 - mem0), max(0, sto1 - sto0), max(0, mis1 - mis0))
        if any(delta):
            stages[stage] = delta
            memory += delta[0]
            store += delta[1]
            misses += delta[2]
    return _CacheDelta(
        hits=memory + store, store_hits=store, misses=misses, stages=stages
    )


def _run_atomic(
    job: Job,
    cache: Optional[CompilationCache],
    pass_manager: Any,
    hooks: Sequence[Any],
) -> tuple[Any, dict[str, float], list[str], _CacheDelta, Any]:
    from ..session import Session  # runtime import: session imports this module

    if not isinstance(job, (CompileJob, EvaluateJob)):
        raise TypeError(f"cannot execute job of kind {job.kind!r} atomically")
    graph = job.graph
    assume_canonical = job.assume_canonical
    if isinstance(graph, str):
        from ..models.zoo import build

        graph = build(graph)
        assume_canonical = False
    if job.arch is None:
        raise ValueError(
            f"job {job_key(job)!r} names no architecture; submit it through "
            "a Session (which supplies its own) or set job.arch"
        )
    before = cache.stats_snapshot() if cache is not None else {}
    session = Session(
        job.arch,
        cache=cache if cache is not None else False,
        hooks=hooks,
        pass_manager=pass_manager,
    )
    compiled = session.compile(graph, job.options, assume_canonical=assume_canonical)
    value: Any = compiled
    if isinstance(job, EvaluateJob):
        energy = None
        if job.want_energy:
            from ..sim.energy import estimate_energy

            energy = estimate_energy(compiled)
        value = Evaluation(metrics=compiled.evaluate(), energy=energy)
    verify_report = None
    if getattr(job, "verify", False):
        from ..verify.engine import verify_compiled

        verify_report = verify_compiled(compiled)
    after = cache.stats_snapshot() if cache is not None else {}
    return (
        value,
        dict(compiled.timings),
        list(compiled.diagnostics),
        _cache_delta(before, after),
        verify_report,
    )


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------

#: A prepared batch entry: (envelope key, graph name or None, job).
_Prepared = tuple[str, Optional[str], Job]


class JobRuntime:
    """Drives atomic jobs through an executor with caching + fallback.

    Parameters
    ----------
    executor:
        Backend name, instance, or ``None``.  ``None`` resolves from
        ``jobs``: ``process`` when parallelism was requested, else
        ``inline``.  Instances are treated as externally owned —
        :meth:`shutdown` leaves them running.
    jobs:
        Worker-count hint for backends resolved from a name
        (``None`` = one per CPU).
    use_cache / cache:
        Compilation-cache policy: disabled, one shared cache, or (the
        default) one private cache per graph name.  Process workers
        always hold per-process caches.
    store:
        Optional persistent :class:`~repro.store.disk.ArtifactStore`
        layered under every cache this runtime creates (and attached
        to a provided shared ``cache``).  Its path ships through the
        process-pool initializer, so pool workers read and write the
        same store instead of starting cold.
    pass_manager / hooks:
        Applied to every compiled job.  Both work on the ``inline``
        and ``thread`` backends; on ``process`` they force inline
        execution with a ``RuntimeWarning``.
    arch:
        Default architecture stamped onto jobs that carry none
        (a submitting session's own architecture).
    serial_note:
        Tail of fallback warnings, e.g. ``"sweeping serially"`` —
        existing tooling greps these messages.
    """

    def __init__(
        self,
        executor: Union[Executor, str, None] = None,
        *,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        cache: Optional[CompilationCache] = None,
        store: Optional["ArtifactStore"] = None,
        pass_manager: Any = None,
        hooks: Sequence[Any] = (),
        arch: Optional[ArchitectureConfig] = None,
        serial_note: str = "running serially",
    ) -> None:
        self.executor: Executor = make_executor(executor, jobs=jobs)
        #: Instances passed in are externally owned and never shut down.
        self.owns_executor = executor is None or isinstance(executor, str)
        self.use_cache = use_cache
        self._shared_cache = cache
        self.store = store if store is not None else getattr(cache, "store", None)
        if cache is not None and store is not None:
            cache.attach_store(store)
        self._caches: dict[str, CompilationCache] = {}
        self.pass_manager = pass_manager
        self.hooks: tuple[Any, ...] = tuple(hooks)
        self.arch = arch
        self.serial_note = serial_note
        # Stable names for embedded graphs (by identity), so repeated
        # batches/submissions over the same graph reuse one shipped
        # payload entry and the live process pool.
        self._auto_graphs: list[tuple[Graph, str]] = []
        self._auto_counter = 0

    # -- caches --------------------------------------------------------

    def cache_for(self, name: Optional[str] = None) -> Optional[CompilationCache]:
        """The driver-side compilation cache of one graph name."""
        if not self.use_cache:
            return None
        if self._shared_cache is not None:
            return self._shared_cache
        return self._caches.setdefault(
            name or DIRECT, CompilationCache(store=self.store)
        )

    # -- preparation ---------------------------------------------------

    def _prepare(
        self,
        jobs: Sequence[Job],
        graphs: Optional[Mapping[str, Graph]],
    ) -> list[_Prepared]:
        """Assign keys and default architectures; classify graph refs.

        String graphs matching a provided named graph resolve through
        the runtime (driver-side, or the worker payload behind a
        process boundary); any other string is a zoo model name that
        :func:`execute_job` builds inside the error-capture boundary.
        """
        prepared: list[_Prepared] = []
        seen: set[str] = set()
        for index, job in enumerate(jobs):
            if not isinstance(job, (CompileJob, EvaluateJob)):
                raise TypeError(
                    f"JobRuntime executes atomic jobs; got {job.kind!r} "
                    "(composite jobs run through Session.map/submit)"
                )
            key = job_key(job, index)
            if key in seen:
                raise ValueError(
                    f"duplicate job key {key!r}: keys must be unique "
                    "within a batch"
                )
            seen.add(key)
            changes: dict[str, Any] = {}
            if job.key is None:
                changes["key"] = key
            if job.arch is None and self.arch is not None:
                changes["arch"] = self.arch
            name: Optional[str] = None
            if isinstance(job.graph, str) and graphs is not None and job.graph in graphs:
                name = job.graph
            if changes:
                job = replace(job, **changes)
            prepared.append((key, name, job))
        return prepared

    def _resolved(
        self, entry: _Prepared, graphs: Optional[Mapping[str, Graph]]
    ) -> Job:
        """The job with any graph name replaced by the graph itself."""
        _key, name, job = entry
        if name is not None:
            assert graphs is not None
            return replace(job, graph=graphs[name])  # type: ignore[type-var]
        return job

    def _execute_local(
        self, entry: _Prepared, graphs: Optional[Mapping[str, Graph]], capture: bool
    ) -> JobResult:
        _key, name, _job = entry
        return execute_job(
            self._resolved(entry, graphs),
            self.cache_for(name),
            self.pass_manager,
            self.hooks,
            capture,
        )

    def _blocked_from_processes(self) -> bool:
        return self.executor.crosses_process and (
            self.pass_manager is not None or _has_pass_hooks(self.hooks)
        )

    # -- submission ----------------------------------------------------

    def submit(
        self,
        job: Job,
        *,
        graphs: Optional[Mapping[str, Graph]] = None,
        capture: bool = True,
    ) -> JobFuture:
        """Schedule one atomic job; returns a :class:`JobFuture`."""
        (entry,) = self._prepare([job], graphs)
        executor = self.executor
        if executor.crosses_process:
            if self._blocked_from_processes():
                warnings.warn(
                    "custom pass manager/hooks cannot cross the process "
                    f"boundary; {self.serial_note}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                try:
                    (wire,), shipped = self._ship_embedded([entry], graphs)
                    self._prepare_pool([wire], shipped)
                    return executor.submit(run_job, wire[2], capture)
                except ExecutorUnavailable as exc:
                    warnings.warn(
                        f"process pool unavailable ({exc}); {self.serial_note}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            return JobFuture.completed(self._execute_local(entry, graphs, capture))
        if executor.parallel:
            _key, name, _job = entry
            return executor.submit(
                execute_job,
                self._resolved(entry, graphs),
                self.cache_for(name),
                self.pass_manager,
                self.hooks,
                capture,
            )
        return JobFuture.completed(self._execute_local(entry, graphs, capture))

    # -- batched streaming ---------------------------------------------

    def map_jobs(
        self,
        jobs: Iterable[Job],
        *,
        graphs: Optional[Mapping[str, Graph]] = None,
        ordered: bool = True,
        capture: bool = True,
    ) -> Iterator[JobResult]:
        """Run a batch of atomic jobs, streaming result envelopes.

        ``ordered`` yields in submission order; otherwise results
        stream in completion order — job values are identical either
        way (cache-delta bookkeeping on the thread backend is
        best-effort, see :class:`~repro.exec.jobs.JobResult`).
        """
        prepared = self._prepare(list(jobs), graphs)
        pending: Sequence[_Prepared] = prepared
        if self.executor.parallel and len(pending) > 1:
            if self._blocked_from_processes():
                warnings.warn(
                    "custom pass manager/hooks cannot cross the process "
                    f"boundary; {self.serial_note}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                if self.executor.crosses_process:
                    pending, graphs = self._ship_embedded(pending, graphs)
                leftover = yield from self._pooled(pending, graphs, ordered, capture)
                if leftover is None:
                    return
                pending = leftover
        for entry in pending:
            yield self._execute_local(entry, graphs, capture)

    def _ship_embedded(
        self,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
    ) -> tuple[list[_Prepared], dict[str, Graph]]:
        """Name each distinct embedded graph so it ships to workers once.

        Jobs carrying the same in-memory :class:`Graph` object would
        otherwise pickle it once *per job* across the process
        boundary; naming by identity routes them through the
        ship-once initializer payload (and one per-process worker
        cache per graph).  Names are assigned in first-use order, so
        repeated batches over the same graphs re-produce the same
        payload and the live pool is reused.
        """
        extended: dict[str, Graph] = dict(graphs or {})
        shipped: list[_Prepared] = []
        for key, name, job in pending:
            graph = getattr(job, "graph", None)
            if name is None and isinstance(graph, Graph):
                name = self._auto_name(graph, extended)
                extended[name] = graph
                job = replace(job, graph=name)  # type: ignore[type-var]
            shipped.append((key, name, job))
        return shipped, extended

    def _auto_name(self, graph: Graph, taken: Mapping[str, Graph]) -> str:
        """The runtime-stable shipping name of one embedded graph."""
        for candidate, name in self._auto_graphs:
            if candidate is graph:
                return name
        name = f"__graph{self._auto_counter}__"
        while name in taken:
            self._auto_counter += 1
            name = f"__graph{self._auto_counter}__"
        self._auto_counter += 1
        self._auto_graphs.append((graph, name))
        return name

    def _prepare_pool(
        self,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
    ) -> None:
        """Ship the named graphs referenced by ``pending`` to workers."""
        prepare = getattr(self.executor, "prepare", None)
        if prepare is None:
            return
        referenced = {name for _key, name, _job in pending if name is not None}
        assert graphs is not None or not referenced
        payload = {name: graphs[name] for name in referenced} if graphs else {}
        if self.store is None:
            prepare(payload, self.use_cache)
            return
        try:
            prepare(payload, self.use_cache, self.store.root)
        except TypeError:
            # Third-party executor predating the store_path parameter:
            # workers run without the persistent tier.
            prepare(payload, self.use_cache)

    def _pooled(
        self,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
        ordered: bool,
        capture: bool,
    ) -> Any:
        """Fan ``pending`` out over the pooled executor.

        Yields result envelopes as they arrive.  On pool failure
        (construction, submit, or result time) the generator *returns*
        the entries whose results were never produced — the caller
        finishes them inline; a clean run returns ``None``.  Consumer
        abandonment (GeneratorExit) or interrupts cancel queued work
        and propagate.
        """
        executor = self.executor
        completed: set[str] = set()
        handles: list[tuple[_Prepared, JobFuture]] = []
        try:
            if executor.crosses_process:
                self._prepare_pool(pending, graphs)
            for entry in pending:
                key, name, job = entry
                if executor.crosses_process:
                    handle = executor.submit(run_job, job, capture)
                else:
                    handle = executor.submit(
                        execute_job,
                        self._resolved(entry, graphs),
                        self.cache_for(name),
                        self.pass_manager,
                        self.hooks,
                        capture,
                    )
                handles.append((entry, handle))
            if ordered:
                for (key, _name, _job), handle in handles:
                    result: JobResult = handle.raw.result()
                    completed.add(key)
                    yield result
            else:
                raws = {
                    handle.raw: entry[0] for entry, handle in handles
                }
                for done in futures.as_completed(raws):
                    result = done.result()
                    completed.add(raws[done])
                    yield result
        except ExecutorUnavailable as exc:
            warnings.warn(
                f"process pool unavailable ({exc}); {self.serial_note}",
                RuntimeWarning,
                stacklevel=4,
            )
            return [entry for entry in pending if entry[0] not in completed]
        except (OSError, BrokenProcessPool) as exc:
            self._abort(handles)
            warnings.warn(
                f"process pool failed ({exc}); {self.serial_note}",
                RuntimeWarning,
                stacklevel=4,
            )
            return [entry for entry in pending if entry[0] not in completed]
        except BaseException:
            # Consumer abandoned the stream (GeneratorExit) or
            # interrupted — don't block on the unfinished work.
            self._abort(handles)
            raise
        return None

    def _abort(self, handles: Sequence[tuple[_Prepared, JobFuture]]) -> None:
        """Cancel outstanding work; reset process pools entirely."""
        for _entry, handle in handles:
            handle.cancel()
        if self.executor.crosses_process:
            reset = getattr(self.executor, "reset", None)
            if reset is not None:
                reset()

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Drop pooled state (process pools); backends rebuild lazily."""
        reset = getattr(self.executor, "reset", None)
        if reset is not None:
            reset()

    def shutdown(self, force: bool = False) -> None:
        """Release the executor (owned backends only, unless forced)."""
        if self.owns_executor or force:
            self.executor.shutdown(wait=False, cancel_futures=True)


# ---------------------------------------------------------------------------
# deprecation bookkeeping (shared by the legacy sweep/explore shims)
# ---------------------------------------------------------------------------

_DEPRECATION_SEEN: set[str] = set()


def warn_deprecated(entry: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per entry point per process."""
    if entry in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(entry)
    warnings.warn(
        f"{entry} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already fired (test helper)."""
    _DEPRECATION_SEEN.clear()
