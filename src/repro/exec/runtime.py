"""Job execution: one engine behind every fan-out path.

:func:`execute_job` runs a single atomic job (compile / evaluate) and
wraps the outcome in the canonical :class:`~repro.exec.jobs.JobResult`
envelope; :class:`JobRuntime` drives batches of jobs through a
pluggable :class:`~repro.exec.executors.Executor` with the semantics
the sweep and exploration engines rely on:

* named graphs resolve driver-side for in-process backends and ship
  once through the pool initializer for the ``process`` backend;
* one compilation cache per graph name (or one shared cache), with
  per-process clones behind the process boundary;
* pool failures — at construction, submit, or result time — degrade
  to inline execution with a ``RuntimeWarning``, producing identical
  results;
* custom pass managers and pass-level hooks cannot cross a process
  boundary, so a ``process`` backend combined with either runs inline
  with a warning (the ``thread`` and ``inline`` backends share memory
  and keep both working).

Results stream back as an iterator, in submission order
(``ordered=True``) or completion order.
"""

from __future__ import annotations

import json
import os
import shutil
import signal as _signal
import tempfile
import threading
import time
import traceback as _traceback
import warnings
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field as dc_field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:
    from ..store.disk import ArtifactStore

from ..arch.config import ArchitectureConfig
from ..core.cache import CompilationCache
from ..ir.graph import Graph
from .executors import Executor, ExecutorUnavailable, make_executor
from .faults import FaultPlan, FaultSpec, apply_fault
from .futures import JobFuture
from .jobs import (
    CompileJob,
    EvaluateJob,
    Evaluation,
    Job,
    JobError,
    JobResult,
    job_key,
)
from .resilience import (
    JobTimeoutError,
    RetryEvent,
    RetryPolicy,
    WorkerCrashError,
    check_deadline,
    deadline_scope,
    normalize_retry,
)
from .worker import DIRECT, run_job

__all__ = [
    "JobRuntime",
    "execute_job",
    "reset_deprecation_warnings",
    "warn_deprecated",
]

#: Driver loop granularity: tight when a watchdog or fault plan needs
#: prompt reactions, relaxed otherwise.
_WATCHDOG_TICK_S = 0.05
_IDLE_TICK_S = 0.25


class _BackendFailed(Exception):
    """Internal: the pooled backend is unusable; degrade a ladder rung."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason

#: Hook attributes that must run in the compiling interpreter.
_PASS_EVENTS = (
    "on_pass_start",
    "on_pass_end",
    "on_compile_start",
    "on_compile_end",
)


def _has_pass_hooks(hooks: Sequence[Any]) -> bool:
    """Whether any hook observes compilation itself (not just jobs)."""
    return any(
        getattr(hook, event, None) is not None
        for hook in hooks
        for event in _PASS_EVENTS
    )


# ---------------------------------------------------------------------------
# single-job execution (runs driver-side and inside process workers)
# ---------------------------------------------------------------------------


def execute_job(
    job: Job,
    cache: Optional[CompilationCache] = None,
    pass_manager: Any = None,
    hooks: Sequence[Any] = (),
    capture: bool = True,
    timeout: Optional[float] = None,
    attempt: int = 1,
    fault: Optional[FaultSpec] = None,
    backend: str = "inline",
    in_worker: bool = False,
    store_root: Optional[str] = None,
) -> JobResult:
    """Run one atomic job and wrap the outcome in a :class:`JobResult`.

    With ``capture`` (the default) any exception the job raises is
    recorded as a :class:`~repro.exec.jobs.JobError` on the envelope;
    without it, exceptions propagate — the sweep and exploration
    drivers run uncaptured so their historical error behaviour is
    preserved.

    The resilience context: ``timeout`` installs a cooperative
    wall-clock deadline around compilation (checked between passes; a
    blown budget fails the job with
    :class:`~repro.exec.resilience.JobTimeoutError`), ``attempt`` and
    ``backend`` are stamped on the envelope as provenance, and
    ``fault`` is an injected :class:`~repro.exec.faults.FaultSpec`
    applied at job start (``in_worker`` decides whether a ``kill``
    fault really SIGKILLs the process; ``store_root`` gives ``corrupt``
    faults a target).
    """
    key = job_key(job)
    try:
        with deadline_scope(timeout):
            apply_fault(fault, in_worker=in_worker, store_root=store_root)
            check_deadline("job start")
            value, timings, diagnostics, delta, verify_report = _run_atomic(
                job, cache, pass_manager, hooks
            )
        return JobResult(
            key=key,
            value=value,
            timings=timings,
            diagnostics=tuple(diagnostics),
            cache_hits=delta.hits,
            cache_misses=delta.misses,
            cache_store_hits=delta.store_hits,
            cache_stages=delta.stages,
            verify_report=verify_report,
            attempts=attempt,
            backend=backend,
        )
    except Exception as exc:
        if not capture:
            raise
        return JobResult(
            key=key,
            error=JobError(
                kind=type(exc).__name__,
                message=str(exc),
                traceback=_traceback.format_exc(),
            ),
            attempts=attempt,
            backend=backend,
        )


@dataclass(frozen=True)
class _CacheDelta:
    """Cache-counter movement observed around one job."""

    hits: int = 0
    store_hits: int = 0
    misses: int = 0
    stages: dict[str, tuple[int, int, int]] = dc_field(default_factory=dict)


def _cache_delta(
    before: Mapping[str, tuple[int, int, int]],
    after: Mapping[str, tuple[int, int, int]],
) -> _CacheDelta:
    """Per-stage ``(memory, store, miss)`` movement between snapshots."""
    stages: dict[str, tuple[int, int, int]] = {}
    memory = store = misses = 0
    for stage, (mem1, sto1, mis1) in after.items():
        mem0, sto0, mis0 = before.get(stage, (0, 0, 0))
        delta = (max(0, mem1 - mem0), max(0, sto1 - sto0), max(0, mis1 - mis0))
        if any(delta):
            stages[stage] = delta
            memory += delta[0]
            store += delta[1]
            misses += delta[2]
    return _CacheDelta(
        hits=memory + store, store_hits=store, misses=misses, stages=stages
    )


def _run_atomic(
    job: Job,
    cache: Optional[CompilationCache],
    pass_manager: Any,
    hooks: Sequence[Any],
) -> tuple[Any, dict[str, float], list[str], _CacheDelta, Any]:
    from ..session import Session  # runtime import: session imports this module

    if not isinstance(job, (CompileJob, EvaluateJob)):
        raise TypeError(f"cannot execute job of kind {job.kind!r} atomically")
    graph = job.graph
    assume_canonical = job.assume_canonical
    if isinstance(graph, str):
        from ..models.zoo import build

        graph = build(graph)
        assume_canonical = False
    if job.arch is None:
        raise ValueError(
            f"job {job_key(job)!r} names no architecture; submit it through "
            "a Session (which supplies its own) or set job.arch"
        )
    before = cache.stats_snapshot() if cache is not None else {}
    session = Session(
        job.arch,
        cache=cache if cache is not None else False,
        hooks=hooks,
        pass_manager=pass_manager,
    )
    compiled = session.compile(graph, job.options, assume_canonical=assume_canonical)
    value: Any = compiled
    if isinstance(job, EvaluateJob):
        energy = None
        if job.want_energy:
            from ..sim.energy import estimate_energy

            energy = estimate_energy(compiled)
        value = Evaluation(metrics=compiled.evaluate(), energy=energy)
    verify_report = None
    if getattr(job, "verify", False):
        from ..verify.engine import verify_compiled

        verify_report = verify_compiled(compiled)
    after = cache.stats_snapshot() if cache is not None else {}
    return (
        value,
        dict(compiled.timings),
        list(compiled.diagnostics),
        _cache_delta(before, after),
        verify_report,
    )


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------

#: A prepared batch entry: (envelope key, graph name or None, job).
_Prepared = tuple[str, Optional[str], Job]


class _Flight:
    """Driver-side state of one job across attempts and pool deaths."""

    __slots__ = ("entry", "attempt", "pool_deaths", "fault", "ready_at", "running_since")

    def __init__(self, entry: _Prepared) -> None:
        self.entry = entry
        #: 1-based attempt currently running (or about to).
        self.attempt = 1
        #: Pool deaths attributed to this job; two mean quarantine.
        self.pool_deaths = 0
        #: Fault shipped with the current attempt, if any.
        self.fault: Optional[FaultSpec] = None
        #: Monotonic time this flight becomes eligible to (re)submit.
        self.ready_at = 0.0
        #: First driver-side observation of the future running
        #: (in-process watchdog only).
        self.running_since: Optional[float] = None

    @property
    def key(self) -> str:
        return self.entry[0]


class JobRuntime:
    """Drives atomic jobs through an executor with caching + fallback.

    Parameters
    ----------
    executor:
        Backend name, instance, or ``None``.  ``None`` resolves from
        ``jobs``: ``process`` when parallelism was requested, else
        ``inline``.  Instances are treated as externally owned —
        :meth:`shutdown` leaves them running.
    jobs:
        Worker-count hint for backends resolved from a name
        (``None`` = one per CPU).
    use_cache / cache:
        Compilation-cache policy: disabled, one shared cache, or (the
        default) one private cache per graph name.  Process workers
        always hold per-process caches.
    store:
        Optional persistent :class:`~repro.store.disk.ArtifactStore`
        layered under every cache this runtime creates (and attached
        to a provided shared ``cache``).  Its path ships through the
        process-pool initializer, so pool workers read and write the
        same store instead of starting cold.
    pass_manager / hooks:
        Applied to every compiled job.  Both work on the ``inline``
        and ``thread`` backends; on ``process`` they force inline
        execution with a ``RuntimeWarning``.
    arch:
        Default architecture stamped onto jobs that carry none
        (a submitting session's own architecture).
    serial_note:
        Tail of the last-rung fallback warning, e.g. ``"sweeping
        serially"`` — existing tooling greps these messages.
    retry / job_timeout / fault_plan:
        The resilience knobs.  ``retry`` is a
        :class:`~repro.exec.resilience.RetryPolicy`, an int
        (``max_attempts`` shorthand), or ``None`` (no retries);
        ``job_timeout`` is a per-job wall-clock budget in seconds
        (cooperative deadline checks on every backend, plus a
        SIGKILL watchdog for stuck process workers); ``fault_plan`` is
        a deterministic :class:`~repro.exec.faults.FaultPlan` injected
        for testing.  Independent of all three, pooled process
        execution always survives a ``BrokenProcessPool``: the pool is
        rebuilt (graphs and store re-shipped through the initializer),
        exactly the in-flight jobs are requeued, and a job that kills
        the pool twice is quarantined as a failed
        :class:`~repro.exec.jobs.JobResult` instead of looping.
    """

    def __init__(
        self,
        executor: Union[Executor, str, None] = None,
        *,
        jobs: Optional[int] = None,
        use_cache: bool = True,
        cache: Optional[CompilationCache] = None,
        store: Optional["ArtifactStore"] = None,
        pass_manager: Any = None,
        hooks: Sequence[Any] = (),
        arch: Optional[ArchitectureConfig] = None,
        serial_note: str = "running serially",
        retry: Union[RetryPolicy, int, None] = None,
        job_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.executor: Executor = make_executor(executor, jobs=jobs)
        #: Instances passed in are externally owned and never shut down.
        self.owns_executor = executor is None or isinstance(executor, str)
        self.use_cache = use_cache
        self._shared_cache = cache
        self.store = store if store is not None else getattr(cache, "store", None)
        if cache is not None and store is not None:
            cache.attach_store(store)
        self._caches: dict[str, CompilationCache] = {}
        self.pass_manager = pass_manager
        self.hooks: tuple[Any, ...] = tuple(hooks)
        self.arch = arch
        self.serial_note = serial_note
        self.retry: RetryPolicy = normalize_retry(retry)
        self.job_timeout = job_timeout
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {job_timeout}")
        self.fault_plan = fault_plan
        # Stable names for embedded graphs (by identity), so repeated
        # batches/submissions over the same graph reuse one shipped
        # payload entry and the live process pool.
        self._auto_graphs: list[tuple[Graph, str]] = []
        self._auto_counter = 0
        # Degradation-ladder thread rung, created on first use.
        self._fallback_thread: Optional[Executor] = None
        # Worker heartbeat directory (process backend), created lazily.
        self._heartbeat_dir: Optional[str] = None
        # Serializes pool (re)construction across concurrent drivers.
        self._pool_lock = threading.Lock()

    @property
    def _resilient(self) -> bool:
        """Whether any resilience knob beyond the defaults is active."""
        return (
            self.retry.max_attempts > 1
            or self.job_timeout is not None
            or bool(self.fault_plan)
        )

    # -- caches --------------------------------------------------------

    def cache_for(self, name: Optional[str] = None) -> Optional[CompilationCache]:
        """The driver-side compilation cache of one graph name."""
        if not self.use_cache:
            return None
        if self._shared_cache is not None:
            return self._shared_cache
        return self._caches.setdefault(
            name or DIRECT, CompilationCache(store=self.store)
        )

    # -- preparation ---------------------------------------------------

    def _prepare(
        self,
        jobs: Sequence[Job],
        graphs: Optional[Mapping[str, Graph]],
    ) -> list[_Prepared]:
        """Assign keys and default architectures; classify graph refs.

        String graphs matching a provided named graph resolve through
        the runtime (driver-side, or the worker payload behind a
        process boundary); any other string is a zoo model name that
        :func:`execute_job` builds inside the error-capture boundary.
        """
        prepared: list[_Prepared] = []
        seen: set[str] = set()
        for index, job in enumerate(jobs):
            if not isinstance(job, (CompileJob, EvaluateJob)):
                raise TypeError(
                    f"JobRuntime executes atomic jobs; got {job.kind!r} "
                    "(composite jobs run through Session.map/submit)"
                )
            key = job_key(job, index)
            if key in seen:
                raise ValueError(
                    f"duplicate job key {key!r}: keys must be unique "
                    "within a batch"
                )
            seen.add(key)
            changes: dict[str, Any] = {}
            if job.key is None:
                changes["key"] = key
            if job.arch is None and self.arch is not None:
                changes["arch"] = self.arch
            name: Optional[str] = None
            if isinstance(job.graph, str) and graphs is not None and job.graph in graphs:
                name = job.graph
            if changes:
                job = replace(job, **changes)
            prepared.append((key, name, job))
        return prepared

    def _resolved(
        self, entry: _Prepared, graphs: Optional[Mapping[str, Graph]]
    ) -> Job:
        """The job with any graph name replaced by the graph itself."""
        _key, name, job = entry
        if name is not None:
            assert graphs is not None
            return replace(job, graph=graphs[name])  # type: ignore[type-var]
        return job

    def _store_root(self) -> Optional[str]:
        return self.store.root if self.store is not None else None

    def _fire_retry(self, event: RetryEvent) -> None:
        """Best-effort ``on_job_retry`` dispatch over the hook list."""
        for hook in self.hooks:
            callback = getattr(hook, "on_job_retry", None)
            if callback is None:
                continue
            try:
                callback(event)
            except Exception as exc:  # hooks must never kill the driver
                warnings.warn(
                    f"on_job_retry hook failed: {exc!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _execute_local(
        self,
        entry: _Prepared,
        graphs: Optional[Mapping[str, Graph]],
        capture: bool,
        backend: str = "inline",
    ) -> JobResult:
        """Run one job in the calling thread, honouring the retry
        policy, the job timeout (cooperatively), and the fault plan."""
        key, name, _job = entry
        policy = self.retry
        attempt = 1
        while True:
            fault = self.fault_plan.get(key, attempt) if self.fault_plan else None
            try:
                result = execute_job(
                    self._resolved(entry, graphs),
                    self.cache_for(name),
                    self.pass_manager,
                    self.hooks,
                    capture,
                    self.job_timeout,
                    attempt,
                    fault,
                    backend,
                    False,
                    self._store_root(),
                )
            except Exception as exc:  # capture=False path
                kind, message = type(exc).__name__, str(exc)
                if not policy.should_retry(kind, attempt):
                    raise
            else:
                if result.error is None or not policy.should_retry(
                    result.error.kind, attempt
                ):
                    return result
                kind, message = result.error.kind, result.error.message
            backoff = policy.backoff(key, attempt)
            self._fire_retry(
                RetryEvent(key, attempt, attempt + 1, kind, message, backoff, backend)
            )
            if backoff > 0:
                time.sleep(backoff)
            attempt += 1

    def _blocked_from_processes(self) -> bool:
        return self.executor.crosses_process and (
            self.pass_manager is not None or _has_pass_hooks(self.hooks)
        )

    # -- degradation ladder --------------------------------------------

    def _thread_rung(self) -> Optional[Executor]:
        """The ladder's thread rung (sized like the primary backend)."""
        if self._fallback_thread is None:
            from .executors import ThreadExecutor

            width = getattr(self.executor, "max_workers", None)
            try:
                self._fallback_thread = ThreadExecutor(width)
            except Exception:
                return None
        return self._fallback_thread

    def _rung_after(self, executor: Executor) -> Optional[Executor]:
        """The next ladder rung below ``executor`` (``None`` = inline)."""
        if executor.crosses_process:
            return self._thread_rung()
        return None

    def _warn_degrade(
        self, executor: Executor, reason: str, stacklevel: int = 4
    ) -> Optional[Executor]:
        """Warn that ``executor`` is being abandoned; return the next rung."""
        nxt = self._rung_after(executor)
        note = (
            f"degrading to {nxt.name} workers" if nxt is not None else self.serial_note
        )
        warnings.warn(f"{reason}; {note}", RuntimeWarning, stacklevel=stacklevel)
        return nxt

    # -- submission ----------------------------------------------------

    def submit(
        self,
        job: Job,
        *,
        graphs: Optional[Mapping[str, Graph]] = None,
        capture: bool = True,
    ) -> JobFuture:
        """Schedule one atomic job; returns a :class:`JobFuture`.

        With any resilience knob active (retries, a job timeout, or a
        fault plan) the job runs under the same fault-tolerant driver
        as :meth:`map_jobs`, on a dedicated driver thread; its future
        reports the final post-retry outcome, and ``cancel()`` only
        succeeds before the driver starts (see
        :class:`~repro.exec.futures.JobFuture`).
        """
        (entry,) = self._prepare([job], graphs)
        if self._resilient:
            return self._submit_resilient(entry, graphs, capture)
        executor = self.executor
        if executor.crosses_process:
            if self._blocked_from_processes():
                warnings.warn(
                    "custom pass manager/hooks cannot cross the process "
                    f"boundary; {self.serial_note}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                try:
                    (wire,), shipped = self._ship_embedded([entry], graphs)
                    self._prepare_pool(executor, [wire], shipped)
                    return executor.submit(run_job, wire[2], capture)
                except ExecutorUnavailable as exc:
                    warnings.warn(
                        f"process pool unavailable ({exc}); {self.serial_note}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            return JobFuture.completed(self._execute_local(entry, graphs, capture))
        if executor.parallel:
            _key, name, _job = entry
            return executor.submit(
                execute_job,
                self._resolved(entry, graphs),
                self.cache_for(name),
                self.pass_manager,
                self.hooks,
                capture,
                self.job_timeout,
                1,
                None,
                executor.name,
                False,
                self._store_root(),
            )
        return JobFuture.completed(self._execute_local(entry, graphs, capture))

    def _submit_resilient(
        self,
        entry: _Prepared,
        graphs: Optional[Mapping[str, Graph]],
        capture: bool,
    ) -> JobFuture:
        """Run one job through the fault-tolerant driver on its own thread."""
        raw: "futures.Future[JobResult]" = futures.Future()

        def drive() -> None:
            if not raw.set_running_or_notify_cancel():
                return  # cancelled before the driver started
            try:
                results = list(
                    self._drive_batch([entry], graphs, ordered=True, capture=capture)
                )
                raw.set_result(results[0])
            except BaseException as exc:  # noqa: BLE001 - relayed via the future
                raw.set_exception(exc)

        thread = threading.Thread(
            target=drive, name=f"repro-job-{entry[0]}", daemon=True
        )
        thread.start()
        return JobFuture(raw, job=entry[2])

    # -- batched streaming ---------------------------------------------

    def map_jobs(
        self,
        jobs: Iterable[Job],
        *,
        graphs: Optional[Mapping[str, Graph]] = None,
        ordered: bool = True,
        capture: bool = True,
    ) -> Iterator[JobResult]:
        """Run a batch of atomic jobs, streaming result envelopes.

        ``ordered`` yields in submission order; otherwise results
        stream in completion order — job values are identical either
        way (cache-delta bookkeeping on the thread backend is
        best-effort, see :class:`~repro.exec.jobs.JobResult`).
        """
        prepared = self._prepare(list(jobs), graphs)
        yield from self._drive_batch(prepared, graphs, ordered=ordered, capture=capture)

    def _drive_batch(
        self,
        prepared: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
        *,
        ordered: bool,
        capture: bool,
    ) -> Iterator[JobResult]:
        """Run prepared entries down the degradation ladder.

        Starts on the configured backend; every backend failure steps
        one rung down (process → thread → inline) with a
        ``RuntimeWarning``, re-running only the entries whose results
        were never produced.  Envelope ``backend`` provenance records
        where each job actually ran.
        """
        pending: Sequence[_Prepared] = prepared
        executor: Optional[Executor] = self.executor
        if (
            executor is not None
            and executor.parallel
            and len(pending) > 1
            and self._blocked_from_processes()
        ):
            executor = self._warn_degrade(
                executor,
                "custom pass manager/hooks cannot cross the process boundary",
                stacklevel=4,
            )
        while executor is not None and executor.parallel and len(pending) > 1:
            if executor.crosses_process:
                pending, graphs = self._ship_embedded(pending, graphs)
            leftover = yield from self._pooled(executor, pending, graphs, ordered, capture)
            if leftover is None:
                return
            pending = leftover
            executor = self._rung_after(executor)
        for entry in pending:
            yield self._execute_local(entry, graphs, capture)

    def _ship_embedded(
        self,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
    ) -> tuple[list[_Prepared], dict[str, Graph]]:
        """Name each distinct embedded graph so it ships to workers once.

        Jobs carrying the same in-memory :class:`Graph` object would
        otherwise pickle it once *per job* across the process
        boundary; naming by identity routes them through the
        ship-once initializer payload (and one per-process worker
        cache per graph).  Names are assigned in first-use order, so
        repeated batches over the same graphs re-produce the same
        payload and the live pool is reused.
        """
        extended: dict[str, Graph] = dict(graphs or {})
        shipped: list[_Prepared] = []
        for key, name, job in pending:
            graph = getattr(job, "graph", None)
            if name is None and isinstance(graph, Graph):
                name = self._auto_name(graph, extended)
                extended[name] = graph
                job = replace(job, graph=name)  # type: ignore[type-var]
            shipped.append((key, name, job))
        return shipped, extended

    def _auto_name(self, graph: Graph, taken: Mapping[str, Graph]) -> str:
        """The runtime-stable shipping name of one embedded graph."""
        for candidate, name in self._auto_graphs:
            if candidate is graph:
                return name
        name = f"__graph{self._auto_counter}__"
        while name in taken:
            self._auto_counter += 1
            name = f"__graph{self._auto_counter}__"
        self._auto_counter += 1
        self._auto_graphs.append((graph, name))
        return name

    def _prepare_pool(
        self,
        executor: Executor,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
    ) -> None:
        """Ship the named graphs referenced by ``pending`` to workers."""
        prepare = getattr(executor, "prepare", None)
        if prepare is None:
            return
        referenced = {name for _key, name, _job in pending if name is not None}
        assert graphs is not None or not referenced
        payload = {name: graphs[name] for name in referenced} if graphs else {}
        store_root = self._store_root()
        with self._pool_lock:
            try:
                prepare(payload, self.use_cache, store_root, self._ensure_heartbeat_dir())
            except TypeError:
                # Third-party executor predating the newer initializer
                # parameters: workers run without heartbeats (and
                # possibly without the persistent tier).
                if store_root is None:
                    prepare(payload, self.use_cache)
                    return
                try:
                    prepare(payload, self.use_cache, store_root)
                except TypeError:
                    prepare(payload, self.use_cache)

    # -- heartbeats ----------------------------------------------------

    def _ensure_heartbeat_dir(self) -> str:
        """The driver-owned directory workers advertise their jobs in."""
        if self._heartbeat_dir is None:
            self._heartbeat_dir = tempfile.mkdtemp(prefix="repro-heartbeat-")
        return self._heartbeat_dir

    def _read_heartbeats(self) -> dict[str, tuple[int, float]]:
        """Current worker heartbeats as ``{job key: (pid, started)}``."""
        directory = self._heartbeat_dir
        records: dict[str, tuple[int, float]] = {}
        if directory is None:
            return records
        try:
            names = os.listdir(directory)
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(directory, name), encoding="utf-8") as handle:
                    data = json.load(handle)
                records[str(data["key"])] = (int(data["pid"]), float(data["started"]))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn write or stale file; attribution degrades
        return records

    def _clear_heartbeats(self) -> None:
        directory = self._heartbeat_dir
        if directory is None:
            return
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

    def _pooled(
        self,
        executor: Executor,
        pending: Sequence[_Prepared],
        graphs: Optional[Mapping[str, Graph]],
        ordered: bool,
        capture: bool,
    ) -> Any:
        """Fan ``pending`` out over one pooled executor, resiliently.

        The driver loop submits every entry, then keeps the batch
        alive through failures:

        * a failed job retries per the runtime's
          :class:`~repro.exec.resilience.RetryPolicy` (deterministic
          seeded backoff, ``on_job_retry`` fired per retry);
        * a dead process pool is rebuilt in place — graphs and store
          re-ship through the initializer — with exactly the in-flight
          jobs requeued; crash *culprits* (injected kills, or the jobs
          worker heartbeats show running) are charged one pool death
          and quarantined as failed envelopes after their second;
        * with a ``job_timeout``, a watchdog SIGKILLs the worker of any
          job stuck past its deadline plus a grace period (cooperative
          in-job checks fire first when the job still checks them); on
          in-process backends the stuck future is abandoned instead,
          so the stream never hangs.

        Yields result envelopes as they arrive.  When the *backend
        itself* is unusable (pool cannot be built or rebuilt, submit
        fails) the generator returns the entries whose results were
        never produced — the caller steps down the degradation ladder;
        a clean run returns ``None``.  Consumer abandonment
        (GeneratorExit) or interrupts kill outstanding workers and
        propagate.
        """
        crosses = executor.crosses_process
        policy = self.retry
        timeout = self.job_timeout
        plan = self.fault_plan
        order: list[str] = [entry[0] for entry in pending]
        total = len(order)
        flights: dict[str, _Flight] = {entry[0]: _Flight(entry) for entry in pending}
        waiting: list[_Flight] = [flights[key] for key in order]
        active: dict["futures.Future[JobResult]", _Flight] = {}
        abandoned: set["futures.Future[JobResult]"] = set()
        finished: dict[str, JobResult] = {}
        yielded: set[str] = set()
        emit_idx = 0
        n_final = 0
        watchdog_killed = False

        def flush() -> Iterator[JobResult]:
            nonlocal emit_idx
            if ordered:
                while emit_idx < total and order[emit_idx] in finished:
                    key = order[emit_idx]
                    emit_idx += 1
                    yielded.add(key)
                    yield finished.pop(key)
            else:
                for key in list(finished):
                    yielded.add(key)
                    yield finished.pop(key)

        def finalize(flight: _Flight, result: JobResult) -> None:
            nonlocal n_final
            finished[flight.key] = result
            n_final += 1

        def finalize_error(flight: _Flight, kind: str, message: str) -> None:
            # Driver-built failure (timeout, quarantine): honour the
            # capture contract exactly like a job-raised exception.
            if not capture:
                if kind == "JobTimeoutError":
                    raise JobTimeoutError(message)
                raise WorkerCrashError(message)
            finalize(
                flight,
                JobResult(
                    key=flight.key,
                    error=JobError(kind=kind, message=message),
                    attempts=flight.attempt,
                    backend=executor.name,
                ),
            )

        def schedule_retry(flight: _Flight, kind: str, message: str) -> None:
            backoff = policy.backoff(flight.key, flight.attempt)
            self._fire_retry(
                RetryEvent(
                    flight.key,
                    flight.attempt,
                    flight.attempt + 1,
                    kind,
                    message,
                    backoff,
                    executor.name,
                )
            )
            flight.attempt += 1
            flight.ready_at = time.monotonic() + backoff
            waiting.append(flight)

        def do_submit(flight: _Flight, fault: Optional[FaultSpec]) -> Any:
            entry = flight.entry
            if crosses:
                return executor.submit(
                    run_job, entry[2], capture, flight.attempt, timeout, fault
                )
            return executor.submit(
                execute_job,
                self._resolved(entry, graphs),
                self.cache_for(entry[1]),
                self.pass_manager,
                self.hooks,
                capture,
                timeout,
                flight.attempt,
                fault,
                executor.name,
                False,
                self._store_root(),
            )

        def submit_flight(flight: _Flight) -> None:
            nonlocal watchdog_killed
            fault = plan.get(flight.key, flight.attempt) if plan else None
            flight.fault = fault
            flight.running_since = None
            try:
                handle = do_submit(flight, fault)
            except (BrokenProcessPool, OSError) as exc:
                if not crosses:
                    waiting.append(flight)
                    raise _BackendFailed(
                        f"{executor.name} pool failed at submit ({exc})"
                    ) from exc
                # The pool died between results (typically the watchdog
                # shot a hung worker after its siblings drained, so no
                # live future was left to surface the death): resurrect
                # in place and resubmit instead of abandoning the rung.
                watchdog_killed = False
                resurrect()
                try:
                    handle = do_submit(flight, fault)
                except (ExecutorUnavailable, OSError, RuntimeError) as exc2:
                    waiting.append(flight)
                    raise _BackendFailed(
                        f"{executor.name} pool failed at submit ({exc2})"
                    ) from exc2
            except (ExecutorUnavailable, RuntimeError) as exc:
                waiting.append(flight)
                raise _BackendFailed(
                    f"{executor.name} pool failed at submit ({exc})"
                ) from exc
            active[handle.raw] = flight

        def resurrect() -> None:
            # Rebuild the dead pool in place: graphs and the store path
            # re-ship through the initializer, so respawned workers
            # start disk-warm instead of cold.
            self._clear_heartbeats()
            with self._pool_lock:
                reset = getattr(executor, "reset", None)
                if reset is not None:
                    reset()
            if n_final < total:
                try:
                    self._prepare_pool(executor, pending, graphs)
                except ExecutorUnavailable as rebuild_exc:
                    raise _BackendFailed(
                        f"process pool could not be rebuilt ({rebuild_exc})"
                    ) from rebuild_exc

        def pool_died(exc: BaseException, first: _Flight) -> None:
            # Attribute the death, requeue exactly the in-flight jobs,
            # quarantine repeat offenders, resurrect the pool.
            nonlocal watchdog_killed
            in_flight = [first] + list(active.values())
            active.clear()
            running = self._read_heartbeats() if crosses else {}
            injected = [
                f for f in in_flight if f.fault is not None and f.fault.action == "kill"
            ]
            if injected:
                # An injected kill-fault only fired if its job started
                # (heartbeat written immediately before the fault), so
                # attribution stays deterministic across re-runs.
                started = [f for f in injected if not running or f.key in running]
                culprits = started or injected
            elif watchdog_killed:
                culprits = []  # self-inflicted: the watchdog shot a worker
            elif running:
                culprits = [f for f in in_flight if f.key in running]
            else:
                culprits = list(in_flight)
            watchdog_killed = False
            culprit_set = {f.key for f in culprits}
            for flight in in_flight:
                if flight.key in culprit_set:
                    flight.pool_deaths += 1
                    if flight.pool_deaths >= 2:
                        finalize_error(
                            flight,
                            "WorkerCrashError",
                            f"quarantined after killing the worker pool "
                            f"{flight.pool_deaths} times ({exc})",
                        )
                        continue
                    schedule_retry(
                        flight,
                        "WorkerCrashError",
                        f"worker pool died while running this job ({exc})",
                    )
                else:
                    # Innocent bystander: requeue the same attempt.
                    flight.ready_at = 0.0
                    waiting.append(flight)
            resurrect()

        def watchdog() -> None:
            # Hard wall-clock enforcement for jobs stuck past their
            # deadline plus a grace period (the grace lets cooperative
            # in-job deadline checks win whenever the job still runs
            # them).
            nonlocal watchdog_killed
            assert timeout is not None
            grace = max(0.5, 0.5 * timeout)
            now_wall = time.time()
            now_mono = time.monotonic()
            beats = self._read_heartbeats() if crosses else {}
            for fut, flight in list(active.items()):
                overdue = False
                pid: Optional[int] = None
                if crosses:
                    record = beats.get(flight.key)
                    if record is not None:
                        pid, started = record
                        overdue = now_wall - started > timeout + grace
                else:
                    if flight.running_since is None and fut.running():
                        flight.running_since = now_mono
                    overdue = (
                        flight.running_since is not None
                        and now_mono - flight.running_since > timeout + grace
                    )
                if not overdue:
                    continue
                del active[fut]
                abandoned.add(fut)
                fut.cancel()  # no-op when running; the future is orphaned
                if crosses and pid is not None:
                    watchdog_killed = True
                    try:
                        os.kill(pid, _signal.SIGKILL)
                    except OSError:
                        pass
                    message = (
                        f"job exceeded its {timeout:g}s deadline and its "
                        f"worker was killed by the watchdog"
                    )
                else:
                    message = (
                        f"job exceeded its {timeout:g}s deadline; the "
                        f"{executor.name} worker was abandoned"
                    )
                if policy.should_retry("JobTimeoutError", flight.attempt):
                    schedule_retry(flight, "JobTimeoutError", message)
                else:
                    finalize_error(flight, "JobTimeoutError", message)

        try:
            if crosses:
                try:
                    self._prepare_pool(executor, pending, graphs)
                except ExecutorUnavailable as exc:
                    self._warn_degrade(executor, f"process pool unavailable ({exc})")
                    return list(pending)
            while n_final < total or finished:
                now = time.monotonic()
                for flight in [f for f in waiting if f.ready_at <= now]:
                    waiting.remove(flight)
                    submit_flight(flight)
                yield from flush()
                if n_final >= total and not finished:
                    break
                if active:
                    tick = (
                        _WATCHDOG_TICK_S
                        if (timeout is not None or plan)
                        else _IDLE_TICK_S
                    )
                    done, _not_done = futures.wait(
                        list(active),
                        timeout=tick,
                        return_when=futures.FIRST_COMPLETED,
                    )
                elif waiting:
                    # Only backoff-delayed work left: sleep to its window.
                    delay = min(f.ready_at for f in waiting) - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, _IDLE_TICK_S))
                    done = set()
                else:
                    done = set()
                for fut in done:
                    flight_done = active.pop(fut, None)
                    if flight_done is None:
                        abandoned.discard(fut)
                        continue
                    try:
                        result: JobResult = fut.result()
                    except futures.CancelledError:
                        flight_done.ready_at = 0.0
                        waiting.append(flight_done)
                        continue
                    except BaseException as exc:
                        if crosses and isinstance(exc, (BrokenProcessPool, OSError)):
                            pool_died(exc, flight_done)
                            continue
                        # Uncaptured job exception (capture=False path).
                        kind = type(exc).__name__
                        if policy.should_retry(kind, flight_done.attempt):
                            schedule_retry(flight_done, kind, str(exc))
                            continue
                        raise
                    if result.error is not None and policy.should_retry(
                        result.error.kind, flight_done.attempt
                    ):
                        schedule_retry(
                            flight_done, result.error.kind, result.error.message
                        )
                    else:
                        finalize(flight_done, result)
                if timeout is not None and active:
                    watchdog()
        except _BackendFailed as exc:
            yield from flush()
            self._warn_degrade(executor, exc.reason)
            return [flights[key].entry for key in order if key not in yielded]
        except BaseException:
            # Consumer abandoned the stream (GeneratorExit) or
            # interrupted — don't block on (or orphan) unfinished work.
            self._abort(executor, active)
            raise
        return None

    def _abort(
        self,
        executor: Executor,
        active: Mapping["futures.Future[JobResult]", "_Flight"],
    ) -> None:
        """Cancel outstanding work; reap process workers entirely.

        Interrupts and abandoned streams must not leave orphaned
        workers grinding through compiles nobody will read: queued
        futures are cancelled, and process backends additionally
        SIGKILL their workers (a fresh pool is built lazily on next
        use).
        """
        for fut in list(active):
            fut.cancel()
        if executor.crosses_process:
            with self._pool_lock:
                kill = getattr(executor, "kill_workers", None)
                if kill is not None:
                    kill()
                else:
                    reset = getattr(executor, "reset", None)
                    if reset is not None:
                        reset()

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Drop pooled state (process pools); backends rebuild lazily."""
        reset = getattr(self.executor, "reset", None)
        if reset is not None:
            reset()

    def shutdown(self, force: bool = False) -> None:
        """Release the executor (owned backends only, unless forced)."""
        if self._fallback_thread is not None:
            self._fallback_thread.shutdown(wait=False, cancel_futures=True)
            self._fallback_thread = None
        if self.owns_executor or force:
            self.executor.shutdown(wait=False, cancel_futures=True)
        if self._heartbeat_dir is not None:
            shutil.rmtree(self._heartbeat_dir, ignore_errors=True)
            self._heartbeat_dir = None

    def close(self, force: bool = False) -> None:
        """Shut the runtime down, reaping any worker processes.

        Unlike :meth:`shutdown`, which lets already-running work
        drain, ``close`` SIGKILLs the workers of an owned (or
        ``force``-d) process backend — the guarantee that an
        interrupted sweep (Ctrl-C) cannot leave orphaned workers
        grinding on.  Safe to call repeatedly; also runs on ``with``
        exit.
        """
        if self.owns_executor or force:
            kill = getattr(self.executor, "kill_workers", None)
            if kill is not None:
                with self._pool_lock:
                    kill()
        self.shutdown(force)

    def __enter__(self) -> "JobRuntime":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# deprecation bookkeeping (shared by the legacy sweep/explore shims)
# ---------------------------------------------------------------------------

_DEPRECATION_SEEN: set[str] = set()


def warn_deprecated(entry: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per entry point per process."""
    if entry in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(entry)
    warnings.warn(
        f"{entry} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already fired (test helper)."""
    _DEPRECATION_SEEN.clear()
