"""Retry policies, deadlines, and the failure vocabulary of the
execution layer.

Everything fault-tolerant in :mod:`repro.exec` builds on three small,
dependency-free primitives defined here:

:class:`RetryPolicy`
    How many times a failed job may run, how long to wait between
    attempts (exponential backoff with *deterministic* seeded jitter —
    the delay for ``(key, attempt)`` is a pure function, so re-running
    a seeded fault plan reproduces the same schedule), and which
    failures are worth retrying at all: transient faults (worker
    crashes, timeouts, connection resets) retry, deterministic compile
    errors fail fast — retrying a ``ValueError`` burns attempts on an
    outcome that cannot change.

:class:`Deadline`
    Cooperative per-job wall-clock budgets.  :func:`deadline_scope`
    installs a deadline for the current context; long-running code
    calls :func:`check_deadline` at safe points (the pass manager
    checks between passes) and a blown budget raises
    :class:`JobTimeoutError`.  Cooperative checks are the whole story
    for the ``inline`` and ``thread`` backends — threads cannot be
    killed; the ``process`` backend additionally runs a hard watchdog
    driver-side (see :mod:`repro.exec.runtime`) that SIGKILLs a worker
    stuck past its deadline.

:class:`RetryEvent`
    The payload of the ``on_job_retry`` session hook: which job failed,
    with what, and how long the runtime will back off before the next
    attempt.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

__all__ = [
    "Deadline",
    "JobTimeoutError",
    "RetryEvent",
    "RetryPolicy",
    "TRANSIENT_KINDS",
    "WorkerCrashError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "normalize_retry",
]


class JobTimeoutError(RuntimeError):
    """A job exceeded its wall-clock deadline (``job_timeout``)."""


class WorkerCrashError(RuntimeError):
    """A process worker died while (apparently) executing this job.

    Raised driver-side when a pool death is attributed to a job — and
    recorded as the error of a job *quarantined* after killing its
    pool twice (see :class:`repro.exec.runtime.JobRuntime`).
    """


#: Exception-type names classified as transient by default: failures
#: of the execution environment, not of the job itself, so a retry may
#: legitimately succeed.  Deterministic compile errors (``ValueError``,
#: ``AssertionError``, ``TypeError``...) are intentionally absent —
#: they fail identically on every attempt and must fail fast.
TRANSIENT_KINDS = frozenset(
    {
        "WorkerCrashError",
        "JobTimeoutError",
        "BrokenProcessPool",
        "BrokenExecutor",
        "TransientFault",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "InterruptedError",
        "EOFError",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how failed jobs are re-attempted.

    Parameters
    ----------
    max_attempts:
        Total executions a job may consume, first try included
        (``1`` = never retry).
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff: the wait before attempt ``n + 1`` is
        ``base * factor**(n - 1)``, capped at ``backoff_max_s``.
    jitter:
        Relative jitter width in ``[0, 1)``: the backoff is scaled by
        a factor drawn *deterministically* from ``(seed, key,
        attempt)`` in ``[1 - jitter, 1 + jitter]``.  Jitter decorrelates
        retry storms without sacrificing reproducibility — the same
        seed always produces the same delays.
    seed:
        Jitter derivation seed.
    retryable_kinds:
        Exception-type names worth retrying; defaults to
        :data:`TRANSIENT_KINDS`.  Anything else fails fast.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    retryable_kinds: frozenset[str] = field(default=TRANSIENT_KINDS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def retryable(self, kind: str) -> bool:
        """Whether a failure of exception-type name ``kind`` may retry."""
        return kind in self.retryable_kinds

    def should_retry(self, kind: str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) failing with
        ``kind`` warrants another try."""
        return attempt < self.max_attempts and self.retryable(kind)

    def backoff(self, key: str, attempt: int) -> float:
        """The deterministic delay before re-running ``key``.

        ``attempt`` is the 1-based attempt that just failed.  A pure
        function of ``(seed, key, attempt)`` — no global RNG state, no
        wall clock — so a seeded chaos run replays byte-identically.
        """
        raw = self.backoff_base_s * (self.backoff_factor ** max(0, attempt - 1))
        raw = min(raw, self.backoff_max_s)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}|{key}|{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


#: The no-retry policy resilience-unaware callers implicitly run under.
NO_RETRY = RetryPolicy(max_attempts=1)


def normalize_retry(spec: Union["RetryPolicy", int, None]) -> RetryPolicy:
    """Coerce the user-facing ``retry=`` knob into a policy.

    ``None`` means no retries, an ``int`` is a ``max_attempts``
    shorthand, and a :class:`RetryPolicy` passes through.
    """
    if spec is None:
        return NO_RETRY
    if isinstance(spec, RetryPolicy):
        return spec
    if isinstance(spec, bool):  # bool is an int; reject explicitly
        raise TypeError("retry must be a RetryPolicy, an int, or None")
    if isinstance(spec, int):
        return RetryPolicy(max_attempts=spec)
    raise TypeError(
        f"retry must be a RetryPolicy, an int, or None; got {type(spec).__name__}"
    )


# ---------------------------------------------------------------------------
# cooperative deadlines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget measured against :func:`time.monotonic`."""

    expires_at: float
    seconds: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(expires_at=time.monotonic() + seconds, seconds=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0.0

    def check(self, where: str = "") -> None:
        """Raise :class:`JobTimeoutError` if the budget is spent."""
        if self.expired():
            suffix = f" ({where})" if where else ""
            raise JobTimeoutError(
                f"job exceeded its {self.seconds:g}s deadline{suffix}"
            )


_DEADLINE: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_exec_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current context, if any."""
    return _DEADLINE.get()


def check_deadline(where: str = "") -> None:
    """Cooperative checkpoint: raise if the current deadline expired.

    A no-op without an installed deadline, so library code can call it
    unconditionally at safe points (the pass manager checks between
    passes).
    """
    deadline = _DEADLINE.get()
    if deadline is not None:
        deadline.check(where)


@contextlib.contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Install a deadline for the duration of the ``with`` block.

    ``None`` installs nothing (checks stay no-ops).  Scopes nest; the
    innermost deadline wins, and the outer one is restored on exit.
    """
    if seconds is None:
        yield None
        return
    deadline = Deadline.after(seconds)
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


# ---------------------------------------------------------------------------
# retry observation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryEvent:
    """One retry decision, as observed by ``SessionHooks.on_job_retry``.

    ``attempt`` is the 1-based attempt that just failed;
    ``next_attempt`` the one about to run after ``backoff_s`` seconds.
    ``error_kind``/``error_message`` describe the triggering failure,
    and ``backend`` names the executor the job was running on.
    """

    key: str
    attempt: int
    next_attempt: int
    error_kind: str
    error_message: str
    backoff_s: float
    backend: str
