"""Typed job descriptions and the canonical result envelope.

A *job* is a plain-data, picklable description of one unit of work the
execution layer can run: compile a model, evaluate a configuration,
sweep the paper's grid, or explore a design space.  Jobs carry no
behaviour — execution lives in :mod:`repro.exec.runtime` — so the same
job object can run inline, on a thread pool, or cross a process
boundary unchanged.

Every executed job produces one :class:`JobResult` envelope: the
job-specific ``value`` plus the compilation context that produced it
(per-pass timings, diagnostics, cache hit/miss deltas) and, when the
runtime runs in capturing mode, a structured :class:`JobError` instead
of a raised exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Optional, Tuple, Union

if TYPE_CHECKING:  # imports for annotations only — keeps jobs import-light
    from ..arch.config import ArchitectureConfig
    from ..core.pipeline import ScheduleOptions
    from ..explore.space import SearchSpace
    from ..explore.store import RunStore
    from ..ir.graph import Graph
    from ..sim.energy import EnergyReport
    from ..sim.metrics import Metrics

__all__ = [
    "CompileJob",
    "EvaluateJob",
    "Evaluation",
    "ExploreJob",
    "Job",
    "JobError",
    "JobResult",
    "SweepJob",
    "job_key",
]

#: A model reference: an in-memory graph, or a name.  Names resolve
#: against the graphs provided to the runtime (e.g. a sweep's
#: canonicalized benchmarks) and fall back to the model zoo.
GraphRef = Union["Graph", str]


@dataclass(frozen=True)
class Job:
    """Base of every job description (plain data, picklable)."""

    kind: ClassVar[str] = "job"


@dataclass(frozen=True)
class CompileJob(Job):
    """Compile one model into a :class:`~repro.core.pipeline.CompiledModel`.

    ``graph`` is a graph object or a model-zoo name (built and
    preprocessed on demand).  ``arch`` defaults to the submitting
    session's architecture.  The result ``value`` is the
    :class:`CompiledModel`.
    """

    kind: ClassVar[str] = "compile"

    graph: GraphRef
    options: Optional["ScheduleOptions"] = None
    arch: Optional["ArchitectureConfig"] = None
    assume_canonical: bool = False
    #: Run the static verifier over the compiled model; the report
    #: rides back on :attr:`JobResult.verify_report`.
    verify: bool = False
    key: Optional[str] = None


@dataclass(frozen=True)
class EvaluateJob(Job):
    """Compile and score one ``(graph, architecture, options)`` point.

    The atomic unit the sweep and exploration engines fan out.  The
    result ``value`` is an :class:`Evaluation` (latency metrics plus an
    optional energy estimate); the compiled model itself is discarded,
    which keeps cross-process result payloads small.
    """

    kind: ClassVar[str] = "evaluate"

    graph: GraphRef
    options: Optional["ScheduleOptions"] = None
    arch: Optional["ArchitectureConfig"] = None
    assume_canonical: bool = False
    #: Skip the energy estimate (proxy evaluations want latency only).
    want_energy: bool = True
    #: Run the static verifier over the compiled model; the report
    #: rides back on :attr:`JobResult.verify_report`.
    verify: bool = False
    key: Optional[str] = None


@dataclass(frozen=True)
class SweepJob(Job):
    """The paper's configuration grid (Fig. 7) over one or more models.

    Mapping a ``SweepJob`` through :meth:`repro.session.Session.map`
    streams one :class:`JobResult` per grid cell, each valued with a
    :class:`~repro.analysis.sweep.ConfigPoint` (the per-benchmark
    baseline rows stream first); submitting it resolves to the
    assembled ``list[SweepResult]`` exactly as
    :meth:`~repro.session.Session.sweep` returns it.
    """

    kind: ClassVar[str] = "sweep"

    benchmarks: Tuple[Union[str, Any], ...]
    xs: Optional[Tuple[int, ...]] = None
    options_overrides: Optional[Mapping[str, Any]] = None
    graphs: Optional[Mapping[str, "Graph"]] = None
    verify: bool = False
    key: Optional[str] = None


@dataclass(frozen=True)
class ExploreJob(Job):
    """One multi-objective design-space exploration run.

    Mirrors the keyword surface of
    :meth:`repro.session.Session.explore`; the result ``value`` is an
    :class:`~repro.explore.engine.ExplorationResult`.
    """

    kind: ClassVar[str] = "explore"

    model: GraphRef
    space: Optional["SearchSpace"] = None
    objectives: Tuple[str, ...] = ("latency", "energy")
    strategy: str = "random"
    strategy_options: Optional[Mapping[str, Any]] = None
    budget: int = 40
    store: Union["RunStore", str, None] = None
    resume: bool = True
    seed: int = 0
    max_total_pes: Optional[int] = None
    warm_start: bool = True
    key: Optional[str] = None


#: Jobs that expand into sub-work driven by the runtime itself.
COMPOSITE_KINDS = ("sweep", "explore")


def job_key(job: Job, index: int = 0) -> str:
    """The envelope key of ``job`` (explicit key, or a stable default)."""
    explicit = getattr(job, "key", None)
    if explicit is not None:
        return str(explicit)
    return f"{job.kind}-{index}"


@dataclass(frozen=True)
class Evaluation:
    """The scored outcome of one :class:`EvaluateJob`."""

    metrics: "Metrics"
    energy: Optional["EnergyReport"] = None

    @property
    def energy_uj(self) -> Optional[float]:
        """Total estimated inference energy in microjoules."""
        return None if self.energy is None else self.energy.total_uj


@dataclass(frozen=True)
class JobError:
    """A captured job failure, picklable across process boundaries."""

    kind: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass(frozen=True)
class JobResult:
    """The canonical envelope every executed job produces.

    ``value`` is job-specific (compiled model, evaluation, config
    point, exploration result); ``timings`` and ``diagnostics`` come
    from the :class:`~repro.core.passes.CompilationContext` that
    produced it, and ``cache_hits``/``cache_misses`` are the
    compilation-cache counter deltas observed around this job.
    ``cache_hits`` counts both tiers; ``cache_store_hits`` is the
    share served from the persistent artifact store (zero without
    one), and ``cache_stages`` breaks the delta down per pipeline
    stage as ``(memory_hits, store_hits, misses)`` triples — a warm
    disk recompile shows every stage with a store hit and zero
    misses.  The deltas are exact on the ``inline`` and ``process``
    backends; on the ``thread`` backend concurrent jobs share one
    cache, so a job's delta may include a neighbour's traffic (values
    and ``value`` itself are unaffected).  When the runtime runs in
    capturing mode a failed job yields ``error`` set and ``value``
    ``None`` instead of raising.
    """

    key: str
    value: Any = None
    timings: Mapping[str, float] = field(default_factory=dict)
    diagnostics: Tuple[str, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    error: Optional[JobError] = None
    #: :class:`repro.verify.VerifyReport` when the job requested
    #: verification (``verify=True``), else ``None``.
    verify_report: Optional[Any] = None
    #: Hits served by the persistent artifact store (subset of
    #: ``cache_hits``).
    cache_store_hits: int = 0
    #: Per-stage ``(memory_hits, store_hits, misses)`` deltas; stages
    #: with all-zero deltas are omitted.
    cache_stages: Mapping[str, Tuple[int, int, int]] = field(default_factory=dict)
    #: Execution provenance: how many attempts this job consumed
    #: (``> 1`` means it was retried) and which backend ran the final
    #: attempt (``"inline"``, ``"thread"``, or ``"process"`` — the
    #: degradation ladder can land a job on a lower backend than the
    #: one requested).
    attempts: int = 1
    backend: str = "inline"

    @property
    def cache_memory_hits(self) -> int:
        """Hits served by the in-memory tier (``cache_hits`` minus store)."""
        return self.cache_hits - self.cache_store_hits

    @property
    def retried(self) -> bool:
        """Whether this job needed more than one attempt."""
        return self.attempts > 1

    @property
    def ok(self) -> bool:
        """Whether the job completed without error."""
        return self.error is None

    def unwrap(self) -> Any:
        """The value, raising :class:`JobFailedError` on captured errors."""
        if self.error is not None:
            raise JobFailedError(self.key, self.error)
        return self.value


class JobFailedError(RuntimeError):
    """Raised by :meth:`JobResult.unwrap` on a captured job failure."""

    def __init__(self, key: str, error: JobError) -> None:
        detail = f"\n{error.traceback}" if error.traceback else ""
        super().__init__(f"job {key!r} failed with {error}{detail}")
        self.key = key
        self.error = error
