"""The unified execution layer: jobs, futures, and pluggable executors.

One submission surface for every way the repo fans work out::

    from repro import Session, paper_case_study
    from repro.exec import EvaluateJob, SweepJob

    session = Session(paper_case_study(133), executor="process")
    future = session.submit(EvaluateJob(graph, options))   # JobFuture
    for result in session.map(SweepJob(("tinyyolov3",))):  # JobResult stream
        print(result.key, result.value)

Jobs are plain-data descriptions (:class:`CompileJob`,
:class:`EvaluateJob`, :class:`SweepJob`, :class:`ExploreJob`); every
executed job yields one :class:`JobResult` envelope (value, per-pass
timings, diagnostics, cache deltas, captured error).  Backends
implement the :class:`Executor` protocol — builtin ``inline``,
``thread`` and ``process``, remote/sharded backends plug in through
:func:`register_executor`.
"""

from .executors import (
    Executor,
    ExecutorUnavailable,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    executor_names,
    make_executor,
    register_executor,
    resolve_executor,
    unregister_executor,
)
from .faults import FaultPlan, FaultSpec, InjectedFault, TransientFault
from .futures import JobFuture
from .jobs import (
    CompileJob,
    EvaluateJob,
    Evaluation,
    ExploreJob,
    Job,
    JobError,
    JobFailedError,
    JobResult,
    SweepJob,
    job_key,
)
from .resilience import (
    Deadline,
    JobTimeoutError,
    RetryEvent,
    RetryPolicy,
    WorkerCrashError,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from .runtime import (
    JobRuntime,
    execute_job,
    reset_deprecation_warnings,
    warn_deprecated,
)

__all__ = [
    "CompileJob",
    "Deadline",
    "EvaluateJob",
    "Evaluation",
    "Executor",
    "ExecutorUnavailable",
    "ExploreJob",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InlineExecutor",
    "Job",
    "JobError",
    "JobFailedError",
    "JobFuture",
    "JobResult",
    "JobRuntime",
    "JobTimeoutError",
    "ProcessExecutor",
    "RetryEvent",
    "RetryPolicy",
    "SweepJob",
    "ThreadExecutor",
    "TransientFault",
    "WorkerCrashError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "execute_job",
    "executor_names",
    "job_key",
    "make_executor",
    "register_executor",
    "reset_deprecation_warnings",
    "resolve_executor",
    "unregister_executor",
    "warn_deprecated",
]
