"""Deprecated shims over the unified static verifier.

The structural graph checks formerly implemented here moved to the
``ir.*`` rule pack of :mod:`repro.verify` (same messages, structured
diagnostics, pluggable rules).  :func:`validate_graph` and
:func:`check_graph` remain as one-shot-warning shims; new code should
call :func:`repro.verify.verify_graph` (diagnostics) or
:func:`repro.verify.assert_graph` (raising) instead.  See MIGRATION.md.
"""

from __future__ import annotations

from .graph import Graph


def validate_graph(graph: Graph) -> list[str]:
    """Deprecated: collect structural problems with ``graph``.

    Shim over the verifier's IR rules; returns the same error messages
    the historical implementation produced (advisory warnings such as
    unconsumed inputs are excluded for compatibility).
    """
    from ..exec.runtime import warn_deprecated
    from ..verify.engine import graph_issues

    warn_deprecated("ir.validate.validate_graph", "repro.verify.verify_graph")
    return graph_issues(graph)


def check_graph(graph: Graph) -> None:
    """Deprecated: raise :class:`GraphError` on any structural issue."""
    from ..exec.runtime import warn_deprecated
    from ..verify.engine import assert_graph

    warn_deprecated("ir.validate.check_graph", "repro.verify.assert_graph")
    assert_graph(graph)
