"""Structural validation of IR graphs.

:func:`validate_graph` returns a list of human-readable issues instead
of raising, so callers can report everything wrong at once;
:func:`check_graph` raises on the first problem for use in pipelines.
"""

from __future__ import annotations

from .graph import Graph, GraphError
from .ops import Conv2D, Dense, Input
from .tensor import Rect


def validate_graph(graph: Graph) -> list[str]:
    """Collect structural problems with ``graph``.

    Checks: at least one input, acyclicity/dangling edges, shape
    inference success, no orphan non-output nodes with zero consumers
    other than genuine outputs, backward region propagation sanity for
    every node (full output rect must map into input bounds).
    """
    issues: list[str] = []

    if not graph.input_names():
        issues.append("graph has no Input nodes")

    try:
        order = graph.topological_order()
    except GraphError as exc:
        issues.append(str(exc))
        return issues

    for name in order:
        op = graph[name]
        if not isinstance(op, Input) and not op.inputs:
            issues.append(f"non-input node '{name}' has no producers")

    try:
        shapes = graph.infer_shapes()
    except GraphError as exc:
        issues.append(str(exc))
        return issues

    for name in order:
        op = graph[name]
        if isinstance(op, Input) or not op.inputs:
            continue
        input_shapes = [shapes[p] for p in op.inputs]
        out_shape = shapes[name]
        try:
            rects = op.input_regions(out_shape.full_rect(), input_shapes, out_shape)
        except Exception as exc:  # noqa: BLE001 - report as validation issue
            issues.append(f"region propagation failed at '{name}': {exc}")
            continue
        if len(rects) != len(op.inputs):
            issues.append(
                f"'{name}' returned {len(rects)} input regions for "
                f"{len(op.inputs)} inputs"
            )
            continue
        for producer, rect, in_shape in zip(op.inputs, rects, input_shapes):
            bounds = Rect(0, 0, in_shape.height, in_shape.width)
            if not bounds.contains(rect):
                issues.append(
                    f"'{name}': required region {rect} of input '{producer}' "
                    f"exceeds bounds {bounds}"
                )

    for name in order:
        op = graph[name]
        if isinstance(op, (Conv2D, Dense)) and shapes[name].num_elements == 0:
            issues.append(f"base layer '{name}' has an empty output")

    return issues


def check_graph(graph: Graph) -> None:
    """Raise :class:`GraphError` if the graph has any structural issue."""
    issues = validate_graph(graph)
    if issues:
        raise GraphError(
            f"graph '{graph.name}' failed validation:\n  - " + "\n  - ".join(issues)
        )
