"""JSON (de)serialization of IR graphs and compiled artifacts.

Geometry (op types, attributes, wiring) always round-trips; numeric
parameters (weights, biases, BN statistics) are included only when
``include_params=True`` since schedules never depend on them.

Beyond bare graphs, this module defines the **compiled-artifact
format**: a versioned JSON document carrying everything a
:class:`~repro.core.pipeline.CompiledModel` produced — architecture,
options, graphs, placement, Stage I sets, the schedule, and the
duplication solution/rewrite bookkeeping (set-level dependencies are
opt-in; they are large and cheap to recompute).  ``save_compiled`` /
``load_compiled`` round-trip a compilation so a schedule computed once
can be re-evaluated, plotted, or shipped without recompiling.

The artifact helpers import compiler types lazily inside functions:
``repro.core.cache`` imports this module at load time, so a top-level
import of ``repro.core`` here would be circular.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Optional

import numpy as np

from .graph import Graph
from .ops import OP_TYPES, Op
from .tensor import Rect, Shape

#: Op attribute names that hold numpy parameter arrays.
_PARAM_FIELDS = ("weights", "bias", "gamma", "beta", "mean", "variance")

#: Schema version written into every serialized graph.
FORMAT_VERSION = 1

#: Schema version of the compiled-artifact format.  Version 2 added
#: the columnar schedule record (``schedule.columns`` instead of
#: ``schedule.tasks``); version-1 artifacts still load.
ARTIFACT_FORMAT_VERSION = 2

#: Artifact schema versions the loader accepts.
_SUPPORTED_ARTIFACT_VERSIONS = (1, 2)

#: Document marker of the compiled-artifact format.
ARTIFACT_FORMAT = "clsa-cim-compiled"


def op_to_dict(op: Op, include_params: bool = False) -> dict[str, Any]:
    """Serialize one operator to a JSON-compatible dict."""
    record: dict[str, Any] = {
        "type": op.op_type,
        "name": op.name,
        "inputs": list(op.inputs),
        "attrs": {},
    }
    for field in dataclasses.fields(op):
        if field.name in ("name", "inputs", "is_base"):
            continue
        value = getattr(op, field.name)
        if field.name in _PARAM_FIELDS:
            if include_params and value is not None:
                record["attrs"][field.name] = {
                    "dtype": str(np.asarray(value).dtype),
                    "shape": list(np.asarray(value).shape),
                    "data": np.asarray(value).reshape(-1).tolist(),
                }
            continue
        if isinstance(value, Shape):
            value = list(value.hwc)
        elif isinstance(value, tuple):
            value = list(value)
        record["attrs"][field.name] = value
    return record


def op_from_dict(record: dict[str, Any]) -> Op:
    """Deserialize one operator from :func:`op_to_dict` output."""
    op_type = record.get("type")
    if op_type not in OP_TYPES:
        raise ValueError(f"unknown op type {op_type!r}")
    cls = OP_TYPES[op_type]
    kwargs: dict[str, Any] = {}
    field_types = {field.name: field for field in dataclasses.fields(cls)}
    for key, value in record.get("attrs", {}).items():
        if key not in field_types:
            raise ValueError(f"op type {op_type!r} has no attribute {key!r}")
        if key in _PARAM_FIELDS:
            array = np.asarray(value["data"], dtype=value["dtype"])
            kwargs[key] = array.reshape(value["shape"])
        elif key == "shape":
            kwargs[key] = Shape.from_tuple(value)
        elif isinstance(value, list):
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    return cls(record["name"], list(record.get("inputs", [])), **kwargs)


def graph_to_dict(graph: Graph, include_params: bool = False) -> dict[str, Any]:
    """Serialize a graph (nodes in topological order) to a dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            op_to_dict(graph[name], include_params=include_params)
            for name in graph.topological_order()
        ],
    }


def graph_from_dict(record: dict[str, Any]) -> Graph:
    """Deserialize a graph from :func:`graph_to_dict` output."""
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = Graph(record.get("name", "model"))
    for node in record["nodes"]:
        graph.add(op_from_dict(node))
    return graph


def dumps(graph: Graph, include_params: bool = False, indent: Optional[int] = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph, include_params=include_params), indent=indent)


def loads(text: str) -> Graph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: Graph, path: str, include_params: bool = False) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph, include_params=include_params, indent=2))


def load(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ---------------------------------------------------------------------------
# compiled-artifact format
# ---------------------------------------------------------------------------


def _rect_to_list(rect: Rect) -> list[int]:
    return [rect.r0, rect.c0, rect.r1, rect.c1]


def _rect_from_list(values: Any) -> Rect:
    r0, c0, r1, c1 = values
    return Rect(int(r0), int(c0), int(r1), int(c1))


def arch_to_dict(arch: Any) -> dict[str, Any]:
    """Serialize an :class:`~repro.arch.config.ArchitectureConfig`."""
    return {
        "name": arch.name,
        "num_pes": arch.num_pes,
        "tile": {
            "pes_per_tile": arch.tile.pes_per_tile,
            "input_buffer_bytes": arch.tile.input_buffer_bytes,
            "output_buffer_bytes": arch.tile.output_buffer_bytes,
            "crossbar": dataclasses.asdict(arch.tile.crossbar),
            "gpeu": {
                "supported_ops": list(arch.tile.gpeu.supported_ops),
                "throughput_per_cycle": arch.tile.gpeu.throughput_per_cycle,
            },
        },
        "noc": dataclasses.asdict(arch.noc),
        "dram": dataclasses.asdict(arch.dram),
    }


def arch_from_dict(record: dict[str, Any]) -> Any:
    """Deserialize an :class:`~repro.arch.config.ArchitectureConfig`."""
    from ..arch.config import ArchitectureConfig
    from ..arch.memory import DramSpec
    from ..arch.noc import NocSpec
    from ..arch.pe import CrossbarSpec
    from ..arch.tile import GpeuSpec, TileSpec

    tile = record["tile"]
    return ArchitectureConfig(
        num_pes=record["num_pes"],
        name=record.get("name", "cim"),
        tile=TileSpec(
            pes_per_tile=tile["pes_per_tile"],
            input_buffer_bytes=tile["input_buffer_bytes"],
            output_buffer_bytes=tile["output_buffer_bytes"],
            crossbar=CrossbarSpec(**tile["crossbar"]),
            gpeu=GpeuSpec(
                supported_ops=tuple(tile["gpeu"]["supported_ops"]),
                throughput_per_cycle=tile["gpeu"]["throughput_per_cycle"],
            ),
        ),
        noc=NocSpec(**record["noc"]),
        dram=DramSpec(**record["dram"]),
    )


def options_to_dict(options: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.pipeline.ScheduleOptions`.

    ``asdict`` recurses into the nested granularity dataclass.
    """
    return dataclasses.asdict(options)


def options_from_dict(record: dict[str, Any]) -> Any:
    """Deserialize a :class:`~repro.core.pipeline.ScheduleOptions`.

    Mapping/scheduler names are *not* re-validated against the
    registries: an artifact compiled with a registered plugin must load
    (and evaluate, plot, re-serialize) in a process where that plugin
    was never imported — no pass runs on a loaded artifact, so the
    names are recorded provenance, not dispatch targets.
    """
    from ..core.pipeline import ScheduleOptions
    from ..core.sets import SetGranularity

    kwargs = dict(record)
    kwargs["granularity"] = SetGranularity(**record["granularity"])
    try:
        return ScheduleOptions(**kwargs)
    except ValueError:
        # Unregistered plugin name: bypass __post_init__'s registry
        # check but keep the structural order_mode validation.
        if kwargs["order_mode"] not in ("dynamic", "static"):
            raise
        options = object.__new__(ScheduleOptions)
        for field in dataclasses.fields(ScheduleOptions):
            # Fields added after an artifact was written (e.g. the
            # scheduling engine) fall back to their defaults.
            value = kwargs.get(field.name, field.default)
            object.__setattr__(options, field.name, value)
        return options


#: Column names of the columnar schedule record, in storage order.
_SCHEDULE_COLUMNS = (
    "layer_id",
    "set_index",
    "start",
    "end",
    "image",
    "r0",
    "c0",
    "r1",
    "c1",
)


def schedule_to_dict(schedule: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.schedule.Schedule`.

    Natively columnar schedules (built by the CSR kernel engines) are
    stored in columnar form — one list per column plus the layer-name
    table — which round-trips without materializing any
    :class:`~repro.core.schedule.SetTask`.  Row-form schedules keep the
    historical per-task record.
    """
    if getattr(schedule, "has_columns", False):
        cols = schedule.columns()
        return {
            "policy": schedule.policy,
            "columns": {
                "layers": list(cols.layers),
                **{
                    name: getattr(cols, name).tolist()
                    for name in _SCHEDULE_COLUMNS
                },
            },
        }
    return {
        "policy": schedule.policy,
        "tasks": [
            [
                task.layer,
                task.set_index,
                _rect_to_list(task.rect),
                task.start,
                task.end,
                task.image,
            ]
            for task in schedule.tasks
        ],
    }


def schedule_from_dict(record: dict[str, Any]) -> Any:
    """Deserialize a :class:`~repro.core.schedule.Schedule`.

    Accepts both the columnar and the per-task record; columnar input
    reconstructs a columnar schedule (tasks stay lazy).
    """
    from ..core.schedule import Schedule, ScheduleColumns, SetTask

    columns = record.get("columns")
    if columns is not None:
        int32 = ("layer_id", "set_index", "image", "r0", "c0", "r1", "c1")
        return Schedule(
            policy=record["policy"],
            columns=ScheduleColumns(
                layers=tuple(columns["layers"]),
                **{
                    name: np.asarray(
                        columns[name],
                        dtype=np.int32 if name in int32 else np.int64,
                    )
                    for name in _SCHEDULE_COLUMNS
                },
            ),
        )
    return Schedule(
        policy=record["policy"],
        tasks=[
            SetTask(
                layer=layer,
                set_index=set_index,
                rect=_rect_from_list(rect),
                start=start,
                end=end,
                image=image,
            )
            for layer, set_index, rect, start, end, image in record["tasks"]
        ],
    )


def _sets_to_dict(sets: dict[str, list[Rect]]) -> dict[str, list[list[int]]]:
    return {
        layer: [_rect_to_list(rect) for rect in rects]
        for layer, rects in sets.items()
    }


def _sets_from_dict(record: dict[str, Any]) -> dict[str, list[Rect]]:
    return {
        layer: [_rect_from_list(rect) for rect in rects]
        for layer, rects in record.items()
    }


def _duplication_to_dict(solution: Any) -> dict[str, Any]:
    problem = solution.problem
    return {
        "problem": {
            "layers": list(problem.layers),
            "t": list(problem.t),
            "c": list(problem.c),
            "budget": problem.budget,
            "d_max": list(problem.d_max),
        },
        "d": dict(solution.d),
        "method": solution.method,
    }


def _duplication_from_dict(record: dict[str, Any]) -> Any:
    from ..mapping.duplication import DuplicationProblem, DuplicationSolution

    problem = record["problem"]
    return DuplicationSolution(
        problem=DuplicationProblem(
            layers=tuple(problem["layers"]),
            t=tuple(problem["t"]),
            c=tuple(problem["c"]),
            budget=problem["budget"],
            d_max=tuple(problem["d_max"]),
        ),
        d=dict(record["d"]),
        method=record["method"],
    )


def _rewrite_to_dict(rewrite: Any) -> dict[str, Any]:
    return {
        "origin_of": dict(rewrite.origin_of),
        "duplicated": {
            original: {
                "axis": entry.axis,
                "duplicates": list(entry.duplicates),
                "slices": list(entry.slices),
                "concat": entry.concat,
                "ranges": [list(pair) for pair in entry.ranges],
            }
            for original, entry in rewrite.duplicated.items()
        },
    }


def _rewrite_from_dict(record: dict[str, Any], mapped: Graph) -> Any:
    from ..mapping.rewrite import DuplicatedLayer, RewriteReport

    return RewriteReport(
        graph=mapped,
        origin_of=dict(record["origin_of"]),
        duplicated={
            original: DuplicatedLayer(
                original=original,
                axis=entry["axis"],
                duplicates=list(entry["duplicates"]),
                slices=list(entry["slices"]),
                concat=entry["concat"],
                ranges=[tuple(pair) for pair in entry["ranges"]],
            )
            for original, entry in record["duplicated"].items()
        },
    )


def _dependencies_to_list(dependencies: Any) -> list[list[Any]]:
    return [
        [layer, set_index, [list(ref) for ref in predecessors]]
        for (layer, set_index), predecessors in dependencies.deps.items()
    ]


def _dependencies_from_list(entries: list[Any], sets: dict[str, list[Rect]]) -> Any:
    from ..core.dependencies import DependencyGraph

    return DependencyGraph(
        sets=sets,
        deps={
            (layer, set_index): [(ref[0], ref[1]) for ref in predecessors]
            for layer, set_index, predecessors in entries
        },
    )


def compiled_to_dict(
    compiled: Any,
    include_params: bool = False,
    include_dependencies: bool = False,
) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.pipeline.CompiledModel`.

    ``mapped`` is stored as ``None`` when it is the canonical graph
    (no duplication rewrite); set-level dependencies are only stored
    when ``include_dependencies`` is set — they dominate the artifact
    size and :func:`compiled_from_dict` leaves them ``None`` otherwise.
    """
    mapped_is_canonical = compiled.mapped is compiled.canonical
    record: dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "format_version": ARTIFACT_FORMAT_VERSION,
        "arch": arch_to_dict(compiled.arch),
        "options": options_to_dict(compiled.options),
        "canonical": graph_to_dict(compiled.canonical, include_params=include_params),
        "mapped": (
            None
            if mapped_is_canonical
            else graph_to_dict(compiled.mapped, include_params=include_params)
        ),
        "placement": {
            "pe_ranges": {
                layer: list(pe_range)
                for layer, pe_range in compiled.placement.pe_ranges.items()
            }
        },
        "sets": _sets_to_dict(compiled.sets),
        "schedule": schedule_to_dict(compiled.schedule),
        "duplication": (
            None
            if compiled.duplication is None
            else _duplication_to_dict(compiled.duplication)
        ),
        "rewrite": (
            None if compiled.rewrite is None else _rewrite_to_dict(compiled.rewrite)
        ),
        "timings": dict(compiled.timings),
        "diagnostics": list(compiled.diagnostics),
    }
    if include_dependencies and compiled.dependencies is not None:
        record["dependencies"] = _dependencies_to_list(compiled.dependencies)
    return record


def compiled_from_dict(record: dict[str, Any]) -> Any:
    """Deserialize a :class:`~repro.core.pipeline.CompiledModel`.

    Placement tilings are recomputed from the mapped graph and the
    crossbar geometry (they are deterministic, cheap, and much larger
    than the stored ``pe_ranges``); dependencies are restored only when
    the artifact carried them.
    """
    from ..core.pipeline import CompiledModel
    from ..mapping.placement import Placement
    from ..mapping.tiling import tile_graph

    if record.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"not a {ARTIFACT_FORMAT} artifact (format={record.get('format')!r})"
        )
    version = record.get("format_version")
    if version not in _SUPPORTED_ARTIFACT_VERSIONS:
        raise ValueError(f"unsupported artifact format version {version!r}")

    arch = arch_from_dict(record["arch"])
    canonical = graph_from_dict(record["canonical"])
    mapped = (
        canonical if record["mapped"] is None else graph_from_dict(record["mapped"])
    )
    sets = _sets_from_dict(record["sets"])
    placement = Placement(
        arch=arch,
        pe_ranges={
            layer: (int(start), int(end))
            for layer, (start, end) in record["placement"]["pe_ranges"].items()
        },
        tilings=tile_graph(mapped, arch.crossbar),
    )
    dependencies = None
    if record.get("dependencies") is not None:
        dependencies = _dependencies_from_list(record["dependencies"], sets)
    return CompiledModel(
        arch=arch,
        options=options_from_dict(record["options"]),
        canonical=canonical,
        mapped=mapped,
        placement=placement,
        schedule=schedule_from_dict(record["schedule"]),
        duplication=(
            None
            if record["duplication"] is None
            else _duplication_from_dict(record["duplication"])
        ),
        rewrite=(
            None
            if record["rewrite"] is None
            else _rewrite_from_dict(record["rewrite"], mapped)
        ),
        sets=sets,
        dependencies=dependencies,
        timings=dict(record.get("timings", {})),
        diagnostics=list(record.get("diagnostics", [])),
    )


def dumps_compiled(
    compiled: Any,
    indent: Optional[int] = None,
    include_params: bool = False,
    include_dependencies: bool = False,
) -> str:
    """Serialize a compiled model to the artifact JSON string."""
    return json.dumps(
        compiled_to_dict(
            compiled,
            include_params=include_params,
            include_dependencies=include_dependencies,
        ),
        indent=indent,
    )


def loads_compiled(text: str) -> Any:
    """Deserialize a compiled model from an artifact JSON string."""
    return compiled_from_dict(json.loads(text))


def save_compiled(
    compiled: Any,
    path: str,
    include_params: bool = False,
    include_dependencies: bool = False,
) -> None:
    """Write a compiled model's artifact JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            dumps_compiled(
                compiled,
                indent=2,
                include_params=include_params,
                include_dependencies=include_dependencies,
            )
        )


def load_compiled(path: str) -> Any:
    """Read a compiled model back from :func:`save_compiled` output."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_compiled(handle.read())
