"""JSON (de)serialization of IR graphs.

Geometry (op types, attributes, wiring) always round-trips; numeric
parameters (weights, biases, BN statistics) are included only when
``include_params=True`` since schedules never depend on them.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Optional

import numpy as np

from .graph import Graph
from .ops import OP_TYPES, Op
from .tensor import Shape

#: Op attribute names that hold numpy parameter arrays.
_PARAM_FIELDS = ("weights", "bias", "gamma", "beta", "mean", "variance")

#: Schema version written into every serialized graph.
FORMAT_VERSION = 1


def op_to_dict(op: Op, include_params: bool = False) -> dict[str, Any]:
    """Serialize one operator to a JSON-compatible dict."""
    record: dict[str, Any] = {
        "type": op.op_type,
        "name": op.name,
        "inputs": list(op.inputs),
        "attrs": {},
    }
    for field in dataclasses.fields(op):
        if field.name in ("name", "inputs", "is_base"):
            continue
        value = getattr(op, field.name)
        if field.name in _PARAM_FIELDS:
            if include_params and value is not None:
                record["attrs"][field.name] = {
                    "dtype": str(np.asarray(value).dtype),
                    "shape": list(np.asarray(value).shape),
                    "data": np.asarray(value).reshape(-1).tolist(),
                }
            continue
        if isinstance(value, Shape):
            value = list(value.hwc)
        elif isinstance(value, tuple):
            value = list(value)
        record["attrs"][field.name] = value
    return record


def op_from_dict(record: dict[str, Any]) -> Op:
    """Deserialize one operator from :func:`op_to_dict` output."""
    op_type = record.get("type")
    if op_type not in OP_TYPES:
        raise ValueError(f"unknown op type {op_type!r}")
    cls = OP_TYPES[op_type]
    kwargs: dict[str, Any] = {}
    field_types = {field.name: field for field in dataclasses.fields(cls)}
    for key, value in record.get("attrs", {}).items():
        if key not in field_types:
            raise ValueError(f"op type {op_type!r} has no attribute {key!r}")
        if key in _PARAM_FIELDS:
            array = np.asarray(value["data"], dtype=value["dtype"])
            kwargs[key] = array.reshape(value["shape"])
        elif key == "shape":
            kwargs[key] = Shape.from_tuple(value)
        elif isinstance(value, list):
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    return cls(record["name"], list(record.get("inputs", [])), **kwargs)


def graph_to_dict(graph: Graph, include_params: bool = False) -> dict[str, Any]:
    """Serialize a graph (nodes in topological order) to a dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            op_to_dict(graph[name], include_params=include_params)
            for name in graph.topological_order()
        ],
    }


def graph_from_dict(record: dict[str, Any]) -> Graph:
    """Deserialize a graph from :func:`graph_to_dict` output."""
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = Graph(record.get("name", "model"))
    for node in record["nodes"]:
        graph.add(op_from_dict(node))
    return graph


def dumps(graph: Graph, include_params: bool = False, indent: Optional[int] = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph, include_params=include_params), indent=indent)


def loads(text: str) -> Graph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: Graph, path: str, include_params: bool = False) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph, include_params=include_params, indent=2))


def load(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
