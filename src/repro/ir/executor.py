"""Numpy reference executor for IR graphs.

The executor provides *functional* ground truth: it computes the actual
numeric output of a graph so the frontend passes (BN folding,
partitioning, quantization) and the weight-duplication rewrite can be
verified for semantic equivalence, not just for shape bookkeeping.

Convolutions run through an explicit im2col + GEMM path — the same
lowering the CIM mapping uses (Fig. 3 of the paper) — so the executor
also validates the im2col transformation itself.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .graph import Graph
from .ops import (
    Activation,
    Add,
    AvgPool,
    BatchNorm,
    BiasAdd,
    Concat,
    ConcatSpatial,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    MaxPool,
    Op,
    Pad,
    Slice,
    Upsample,
)
from .tensor import Shape


class ExecutionError(RuntimeError):
    """Raised when a graph cannot be executed numerically."""


def im2col_patches(
    ifm: np.ndarray, kernel: tuple[int, int], strides: tuple[int, int]
) -> np.ndarray:
    """Unroll convolution input patches into a matrix (im2col).

    Parameters
    ----------
    ifm:
        Input feature map of shape ``(H, W, C)`` (already padded).
    kernel:
        ``(kh, kw)`` window size.
    strides:
        ``(sh, sw)`` window strides.

    Returns
    -------
    np.ndarray
        Matrix of shape ``(OH * OW, kh * kw * C)``; row ``i`` holds the
        flattened receptive field of output position ``i`` (row-major),
        matching the kernel-matrix layout of Fig. 3.
    """
    height, width, channels = ifm.shape
    kh, kw = kernel
    sh, sw = strides
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1
    if out_h < 1 or out_w < 1:
        raise ExecutionError(
            f"kernel {kernel} does not fit input of shape {ifm.shape}"
        )
    patches = np.empty((out_h * out_w, kh * kw * channels), dtype=ifm.dtype)
    index = 0
    for row in range(out_h):
        r0 = row * sh
        for col in range(out_w):
            c0 = col * sw
            patches[index] = ifm[r0 : r0 + kh, c0 : c0 + kw, :].reshape(-1)
            index += 1
    return patches


def conv2d_reference(
    ifm: np.ndarray,
    weights: np.ndarray,
    strides: tuple[int, int],
    padding: str,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference Conv2D via im2col + GEMM.

    ``weights`` has shape ``(kh, kw, in_c, out_c)``.  The kernel matrix
    is the ``(kh*kw*in_c, out_c)`` reshape of the weights, exactly the
    matrix that the CIM mapping tiles onto crossbar PEs.
    """
    kh, kw, in_c, out_c = weights.shape
    if ifm.shape[2] != in_c:
        raise ExecutionError(
            f"input channels {ifm.shape[2]} do not match weight channels {in_c}"
        )
    if padding == "same":
        from .ops import same_padding

        pad_h = same_padding(ifm.shape[0], kh, strides[0])
        pad_w = same_padding(ifm.shape[1], kw, strides[1])
        ifm = np.pad(ifm, (pad_h, pad_w, (0, 0)))
    out_h = (ifm.shape[0] - kh) // strides[0] + 1
    out_w = (ifm.shape[1] - kw) // strides[1] + 1
    patches = im2col_patches(ifm, (kh, kw), strides)
    kernel_matrix = weights.reshape(kh * kw * in_c, out_c)
    result = patches @ kernel_matrix
    if bias is not None:
        result = result + bias
    return result.reshape(out_h, out_w, out_c)


def _pool_windows(
    ifm: np.ndarray,
    pool: tuple[int, int],
    strides: tuple[int, int],
    padding: str,
    reducer: str,
) -> np.ndarray:
    """Shared max/avg pooling implementation."""
    ph, pw = pool
    sh, sw = strides
    if padding == "same":
        from .ops import same_padding

        pad_h = same_padding(ifm.shape[0], ph, sh)
        pad_w = same_padding(ifm.shape[1], pw, sw)
        fill = -np.inf if reducer == "max" else 0.0
        ifm = np.pad(ifm, (pad_h, pad_w, (0, 0)), constant_values=fill)
    out_h = (ifm.shape[0] - ph) // sh + 1
    out_w = (ifm.shape[1] - pw) // sw + 1
    out = np.empty((out_h, out_w, ifm.shape[2]), dtype=np.result_type(ifm.dtype, float))
    for row in range(out_h):
        for col in range(out_w):
            window = ifm[row * sh : row * sh + ph, col * sw : col * sw + pw, :]
            if reducer == "max":
                out[row, col, :] = window.max(axis=(0, 1))
            else:
                out[row, col, :] = window.mean(axis=(0, 1))
    return out


def _apply_activation(x: np.ndarray, kind: str, alpha: float) -> np.ndarray:
    if kind == "linear":
        return x
    if kind == "relu":
        return np.maximum(x, 0.0)
    if kind == "relu6":
        return np.clip(x, 0.0, 6.0)
    if kind == "leaky_relu":
        return np.where(x >= 0.0, x, alpha * x)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-x))
    if kind == "tanh":
        return np.tanh(x)
    raise ExecutionError(f"unknown activation kind {kind!r}")


class Executor:
    """Evaluates a graph on concrete numpy inputs.

    Example
    -------
    >>> outputs = Executor(graph).run({"input": image})
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.shapes = graph.infer_shapes()

    def run(
        self,
        inputs: Union[np.ndarray, dict[str, np.ndarray]],
        node_names: Optional[list[str]] = None,
    ) -> dict[str, np.ndarray]:
        """Execute the graph.

        Parameters
        ----------
        inputs:
            Either a dict mapping input node names to arrays, or a bare
            array when the graph has exactly one input.
        node_names:
            Which node outputs to return; defaults to the graph outputs.

        Returns
        -------
        dict[str, np.ndarray]
            Requested node outputs, keyed by node name.
        """
        input_names = self.graph.input_names()
        if not isinstance(inputs, dict):
            if len(input_names) != 1:
                raise ExecutionError(
                    f"graph has {len(input_names)} inputs; pass a dict of arrays"
                )
            inputs = {input_names[0]: inputs}
        missing = [name for name in input_names if name not in inputs]
        if missing:
            raise ExecutionError(f"missing values for graph inputs {missing}")

        values: dict[str, np.ndarray] = {}
        requested = node_names if node_names is not None else self.graph.output_names()
        for name in self.graph.topological_order():
            op = self.graph[name]
            if isinstance(op, Input):
                value = np.asarray(inputs[name], dtype=float)
                if value.shape != self.shapes[name].hwc:
                    raise ExecutionError(
                        f"input '{name}' has shape {value.shape}, "
                        f"expected {self.shapes[name].hwc}"
                    )
                values[name] = value
            else:
                values[name] = self._evaluate(op, [values[p] for p in op.inputs])
        return {name: values[name] for name in requested}

    def run_single(self, inputs: Union[np.ndarray, dict[str, np.ndarray]]) -> np.ndarray:
        """Execute and return the single graph output array."""
        outputs = self.graph.output_names()
        if len(outputs) != 1:
            raise ExecutionError(f"graph has {len(outputs)} outputs, expected 1")
        return self.run(inputs)[outputs[0]]

    def _evaluate(self, op: Op, args: list[np.ndarray]) -> np.ndarray:
        if isinstance(op, Conv2D):
            if op.weights is None:
                raise ExecutionError(
                    f"Conv2D '{op.name}' has no weights; call graph.initialize_weights()"
                )
            bias = op.bias if op.use_bias else None
            return conv2d_reference(args[0], op.weights, op.strides, op.padding, bias)
        if isinstance(op, Dense):
            if op.weights is None:
                raise ExecutionError(
                    f"Dense '{op.name}' has no weights; call graph.initialize_weights()"
                )
            flat = args[0].reshape(-1)
            result = flat @ op.weights
            if op.use_bias and op.bias is not None:
                result = result + op.bias
            return result.reshape(1, 1, -1)
        if isinstance(op, BatchNorm):
            if op.gamma is None or op.variance is None:
                raise ExecutionError(
                    f"BatchNorm '{op.name}' has no parameters; "
                    "call graph.initialize_weights()"
                )
            scale = op.gamma / np.sqrt(op.variance + op.epsilon)
            return (args[0] - op.mean) * scale + op.beta
        if isinstance(op, BiasAdd):
            if op.bias is None:
                raise ExecutionError(f"BiasAdd '{op.name}' has no bias values")
            return args[0] + op.bias
        if isinstance(op, Pad):
            return np.pad(
                args[0],
                ((op.pad_top, op.pad_bottom), (op.pad_left, op.pad_right), (0, 0)),
                constant_values=op.value,
            )
        if isinstance(op, Activation):
            return _apply_activation(args[0], op.kind, op.alpha)
        if isinstance(op, MaxPool):
            return _pool_windows(args[0], op.pool, op.strides, op.padding, "max")
        if isinstance(op, AvgPool):
            return _pool_windows(args[0], op.pool, op.strides, op.padding, "avg")
        if isinstance(op, GlobalAvgPool):
            return args[0].mean(axis=(0, 1), keepdims=True)
        if isinstance(op, Add):
            result = args[0]
            for arg in args[1:]:
                result = result + arg
            return result
        if isinstance(op, Concat):
            return np.concatenate(args, axis=2)
        if isinstance(op, ConcatSpatial):
            return np.concatenate(args, axis=0 if op.axis == "height" else 1)
        if isinstance(op, Slice):
            in_shape = Shape.from_tuple(args[0].shape)
            h, w, c = op.resolved_sizes(in_shape)
            h0, w0, c0 = op.offsets
            return args[0][h0 : h0 + h, w0 : w0 + w, c0 : c0 + c]
        if isinstance(op, Upsample):
            return np.repeat(np.repeat(args[0], op.factor, axis=0), op.factor, axis=1)
        if isinstance(op, Flatten):
            return args[0].reshape(1, 1, -1)
        if isinstance(op, Identity):
            return args[0]
        raise ExecutionError(f"no executor rule for op type {op.op_type}")


def run_graph(
    graph: Graph, inputs: Union[np.ndarray, dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(graph).run(inputs)
