"""Operator definitions for the NN graph IR.

Every operator implements two pieces of geometry that the CLSA-CIM
algorithm needs:

``infer_shape(input_shapes)``
    Forward shape inference (HWC, batch-free).

``input_regions(out_rect, input_shapes, output_shape)``
    *Backward region propagation*: given a spatial rectangle of the
    operator's output, return the rectangle of each input that is
    required to produce it.  Stage II of CLSA-CIM ("determine
    dependencies") is built entirely on this method — the paper notes
    that "when adding new base layers to the algorithm, this dependency
    has to be specified", which in this implementation means
    subclassing :class:`Op` and overriding :meth:`Op.input_regions`.

Operators are split into *base layers* (executed on crossbar PEs:
:class:`Conv2D`, :class:`Dense`) and *non-base layers* (executed on the
tile's general-purpose execution unit: everything else), mirroring the
partitioning of Section III-A of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .tensor import Rect, Shape

#: Padding modes accepted by convolution and pooling operators.
PADDING_MODES = ("valid", "same")

#: Supported activation kinds.
ACTIVATION_KINDS = ("linear", "relu", "leaky_relu", "relu6", "sigmoid", "tanh")


class OpError(ValueError):
    """Raised for invalid operator construction or shape mismatch."""


def _check_positive_pair(name: str, pair: tuple[int, int]) -> tuple[int, int]:
    """Validate a 2-tuple of positive ints (kernel, stride, pool...)."""
    if len(pair) != 2:
        raise OpError(f"{name} must be a 2-tuple, got {pair!r}")
    h, w = int(pair[0]), int(pair[1])
    if h < 1 or w < 1:
        raise OpError(f"{name} entries must be >= 1, got {pair!r}")
    return (h, w)


def same_padding(in_size: int, kernel: int, stride: int) -> tuple[int, int]:
    """TensorFlow-style SAME padding: ``(pad_before, pad_after)``.

    Output size is ``ceil(in / stride)``; total padding is distributed
    with the extra element *after* (TF convention), which is what
    produces the ``(417, 417, 3)`` padded input of Table I from a
    416x416 image with a 3x3 stride-2 kernel.
    """
    out_size = math.ceil(in_size / stride)
    total = max(0, (out_size - 1) * stride + kernel - in_size)
    before = total // 2
    return (before, total - before)


def conv_out_size(in_size: int, kernel: int, stride: int, padding: str) -> int:
    """Output spatial size of a convolution/pooling window."""
    if padding == "same":
        return math.ceil(in_size / stride)
    if padding == "valid":
        if in_size < kernel:
            raise OpError(f"valid window of size {kernel} does not fit input of size {in_size}")
        return (in_size - kernel) // stride + 1
    raise OpError(f"unknown padding mode {padding!r}")


def window_input_rect(
    out_rect: Rect,
    kernel: tuple[int, int],
    strides: tuple[int, int],
    pads_before: tuple[int, int],
    input_shape: Shape,
) -> Rect:
    """Backward region rule shared by convolutions and pooling.

    For output rows ``[r0, r1)`` a window op with kernel ``kh`` and
    stride ``sh`` reads input rows ``[r0*sh - pt, (r1-1)*sh + kh - pt)``
    (and analogously for columns), clipped to the input bounds.
    """
    if out_rect.is_empty():
        return Rect.empty()
    kh, kw = kernel
    sh, sw = strides
    pt, pl = pads_before
    rect = Rect(
        out_rect.r0 * sh - pt,
        out_rect.c0 * sw - pl,
        (out_rect.r1 - 1) * sh + kh - pt,
        (out_rect.c1 - 1) * sw + kw - pl,
    )
    return rect.clip(input_shape.height, input_shape.width)


@dataclass
class Op:
    """Base class of all IR operators.

    Attributes
    ----------
    name:
        Unique node name within a :class:`~repro.ir.graph.Graph`.
    inputs:
        Names of producer nodes, in positional order.
    """

    name: str
    inputs: list[str] = field(default_factory=list)

    #: Whether this operator executes on crossbar PEs (MVM workload).
    is_base: bool = field(default=False, init=False, repr=False)

    @property
    def op_type(self) -> str:
        """The operator's type name (its class name)."""
        return type(self).__name__

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        """Forward shape inference. Subclasses must override."""
        raise NotImplementedError

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        """Backward region propagation. Subclasses must override."""
        raise NotImplementedError

    def _expect_arity(self, input_shapes: list[Shape], arity: int) -> None:
        if len(input_shapes) != arity:
            raise OpError(
                f"{self.op_type} '{self.name}' expects {arity} input(s), "
                f"got {len(input_shapes)}"
            )

    def param_count(self) -> int:
        """Number of learned scalar parameters held by the operator."""
        return 0


@dataclass
class Input(Op):
    """Graph input placeholder carrying the model's input shape."""

    shape: Shape = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.shape is None:
            raise OpError(f"Input '{self.name}' requires a shape")
        if not isinstance(self.shape, Shape):
            self.shape = Shape.from_tuple(self.shape)
        if self.inputs:
            raise OpError(f"Input '{self.name}' cannot have producers")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 0)
        return self.shape

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return []


@dataclass
class Conv2D(Op):
    """2-D convolution — a *base layer* executed on crossbar PEs.

    In the canonical (preprocessed) form, ``padding`` is ``'valid'`` and
    ``use_bias`` is ``False``: padding lives in an explicit :class:`Pad`
    node and the bias in a :class:`BiasAdd` node (Section III-A,
    Fig. 2).  Freshly built models may use ``'same'`` padding and a
    fused bias; the frontend decouples them.
    """

    out_channels: int = 0
    kernel: tuple[int, int] = (1, 1)
    strides: tuple[int, int] = (1, 1)
    padding: str = "valid"
    use_bias: bool = False
    #: Optional numeric weights of shape (kh, kw, in_c, out_c).
    weights: Optional[np.ndarray] = field(default=None, repr=False)
    #: Optional numeric bias of shape (out_c,).
    bias: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.is_base = True
        if self.out_channels < 1:
            raise OpError(f"Conv2D '{self.name}' needs out_channels >= 1")
        self.kernel = _check_positive_pair("kernel", self.kernel)
        self.strides = _check_positive_pair("strides", self.strides)
        if self.padding not in PADDING_MODES:
            raise OpError(f"Conv2D '{self.name}': unknown padding {self.padding!r}")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        in_shape = input_shapes[0]
        kh, kw = self.kernel
        sh, sw = self.strides
        out_h = conv_out_size(in_shape.height, kh, sh, self.padding)
        out_w = conv_out_size(in_shape.width, kw, sw, self.padding)
        return Shape(out_h, out_w, self.out_channels)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if self.padding == "same":
            pads = (
                same_padding(in_shape.height, self.kernel[0], self.strides[0])[0],
                same_padding(in_shape.width, self.kernel[1], self.strides[1])[0],
            )
        else:
            pads = (0, 0)
        return [window_input_rect(out_rect, self.kernel, self.strides, pads, in_shape)]

    def kernel_matrix_shape(self, in_channels: int) -> tuple[int, int]:
        """im2col kernel-matrix dimensions ``(KW*KH*KI, KO)`` (Fig. 3)."""
        kh, kw = self.kernel
        return (kh * kw * in_channels, self.out_channels)

    def param_count(self) -> int:
        count = 0
        if self.weights is not None:
            count += int(self.weights.size)
        if self.bias is not None:
            count += int(self.bias.size)
        return count


@dataclass
class Dense(Op):
    """Fully connected layer — a *base layer* (1x1 spatial output)."""

    units: int = 0
    use_bias: bool = False
    #: Optional numeric weights of shape (in_features, units).
    weights: Optional[np.ndarray] = field(default=None, repr=False)
    bias: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.is_base = True
        if self.units < 1:
            raise OpError(f"Dense '{self.name}' needs units >= 1")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        in_shape = input_shapes[0]
        if in_shape.height != 1 or in_shape.width != 1:
            raise OpError(
                f"Dense '{self.name}' requires a flattened (1, 1, N) input, got {in_shape}"
            )
        return Shape(1, 1, self.units)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if out_rect.is_empty():
            return [Rect.empty()]
        return [in_shape.full_rect()]

    def kernel_matrix_shape(self, in_features: int) -> tuple[int, int]:
        """Kernel-matrix dimensions ``(in_features, units)``."""
        return (in_features, self.units)

    def param_count(self) -> int:
        count = 0
        if self.weights is not None:
            count += int(self.weights.size)
        if self.bias is not None:
            count += int(self.bias.size)
        return count


@dataclass
class BatchNorm(Op):
    """Batch normalization (inference mode); folded away by the frontend."""

    gamma: Optional[np.ndarray] = field(default=None, repr=False)
    beta: Optional[np.ndarray] = field(default=None, repr=False)
    mean: Optional[np.ndarray] = field(default=None, repr=False)
    variance: Optional[np.ndarray] = field(default=None, repr=False)
    epsilon: float = 1e-3

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return input_shapes[0]

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect]

    def param_count(self) -> int:
        return sum(
            int(p.size)
            for p in (self.gamma, self.beta, self.mean, self.variance)
            if p is not None
        )


@dataclass
class BiasAdd(Op):
    """Per-channel bias addition, decoupled from the base layer."""

    bias: Optional[np.ndarray] = field(default=None, repr=False)

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return input_shapes[0]

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect]

    def param_count(self) -> int:
        return 0 if self.bias is None else int(self.bias.size)


@dataclass
class Pad(Op):
    """Explicit zero padding ``(top, bottom, left, right)``."""

    pad_top: int = 0
    pad_bottom: int = 0
    pad_left: int = 0
    pad_right: int = 0
    value: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("pad_top", "pad_bottom", "pad_left", "pad_right"):
            if getattr(self, field_name) < 0:
                raise OpError(f"Pad '{self.name}': {field_name} must be >= 0")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        in_shape = input_shapes[0]
        return Shape(
            in_shape.height + self.pad_top + self.pad_bottom,
            in_shape.width + self.pad_left + self.pad_right,
            in_shape.channels,
        )

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        rect = out_rect.shift(-self.pad_top, -self.pad_left)
        return [rect.clip(in_shape.height, in_shape.width)]

    @property
    def is_identity(self) -> bool:
        """True when all four pad amounts are zero."""
        return not (self.pad_top or self.pad_bottom or self.pad_left or self.pad_right)


@dataclass
class Activation(Op):
    """Elementwise activation function."""

    kind: str = "relu"
    alpha: float = 0.1  # leaky_relu negative slope

    def __post_init__(self) -> None:
        if self.kind not in ACTIVATION_KINDS:
            raise OpError(f"Activation '{self.name}': unknown kind {self.kind!r}")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return input_shapes[0]

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect]


@dataclass
class _Pool(Op):
    """Shared geometry of max/average pooling."""

    pool: tuple[int, int] = (2, 2)
    strides: Optional[tuple[int, int]] = None
    padding: str = "valid"

    def __post_init__(self) -> None:
        self.pool = _check_positive_pair("pool", self.pool)
        if self.strides is None:
            self.strides = self.pool
        self.strides = _check_positive_pair("strides", self.strides)
        if self.padding not in PADDING_MODES:
            raise OpError(f"{self.op_type} '{self.name}': unknown padding {self.padding!r}")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        in_shape = input_shapes[0]
        out_h = conv_out_size(in_shape.height, self.pool[0], self.strides[0], self.padding)
        out_w = conv_out_size(in_shape.width, self.pool[1], self.strides[1], self.padding)
        return Shape(out_h, out_w, in_shape.channels)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if self.padding == "same":
            pads = (
                same_padding(in_shape.height, self.pool[0], self.strides[0])[0],
                same_padding(in_shape.width, self.pool[1], self.strides[1])[0],
            )
        else:
            pads = (0, 0)
        return [window_input_rect(out_rect, self.pool, self.strides, pads, in_shape)]


@dataclass
class MaxPool(_Pool):
    """Max pooling over spatial windows."""


@dataclass
class AvgPool(_Pool):
    """Average pooling over spatial windows."""


@dataclass
class GlobalAvgPool(Op):
    """Global average pooling to a (1, 1, C) tensor."""

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return Shape(1, 1, input_shapes[0].channels)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if out_rect.is_empty():
            return [Rect.empty()]
        return [in_shape.full_rect()]


@dataclass
class Add(Op):
    """Elementwise addition of two or more same-shaped tensors."""

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise OpError(f"Add '{self.name}' needs at least 2 inputs")
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape != first:
                raise OpError(
                    f"Add '{self.name}': mismatched input shapes {first} vs {shape}"
                )
        return first

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect for _ in input_shapes]


@dataclass
class Concat(Op):
    """Channel-axis concatenation of two or more tensors."""

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise OpError(f"Concat '{self.name}' needs at least 2 inputs")
        first = input_shapes[0]
        channels = 0
        for shape in input_shapes:
            if (shape.height, shape.width) != (first.height, first.width):
                raise OpError(
                    f"Concat '{self.name}': mismatched spatial dims {first} vs {shape}"
                )
            channels += shape.channels
        return Shape(first.height, first.width, channels)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect for _ in input_shapes]


@dataclass
class ConcatSpatial(Op):
    """Concatenation along a spatial axis (``'height'`` or ``'width'``).

    Weight duplication (Fig. 4) splits an OFM into disjoint spatial
    parts computed by duplicate layers and re-assembles them with
    concatenations along the cut dimensions; this op is that
    re-assembly.  Inputs are stacked in order along ``axis``.
    """

    axis: str = "height"

    def __post_init__(self) -> None:
        if self.axis not in ("height", "width"):
            raise OpError(f"ConcatSpatial '{self.name}': bad axis {self.axis!r}")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise OpError(f"ConcatSpatial '{self.name}' needs at least 2 inputs")
        first = input_shapes[0]
        if self.axis == "height":
            total = 0
            for shape in input_shapes:
                if (shape.width, shape.channels) != (first.width, first.channels):
                    raise OpError(
                        f"ConcatSpatial '{self.name}': mismatched width/channels "
                        f"{first} vs {shape}"
                    )
                total += shape.height
            return Shape(total, first.width, first.channels)
        total = 0
        for shape in input_shapes:
            if (shape.height, shape.channels) != (first.height, first.channels):
                raise OpError(
                    f"ConcatSpatial '{self.name}': mismatched height/channels "
                    f"{first} vs {shape}"
                )
            total += shape.width
        return Shape(first.height, total, first.channels)

    def input_offsets(self, input_shapes: list[Shape]) -> list[int]:
        """Start offset of each input along the concat axis."""
        offsets = []
        position = 0
        for shape in input_shapes:
            offsets.append(position)
            position += shape.height if self.axis == "height" else shape.width
        return offsets

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        rects = []
        for shape, offset in zip(input_shapes, self.input_offsets(input_shapes)):
            if self.axis == "height":
                rect = out_rect.shift(-offset, 0)
            else:
                rect = out_rect.shift(0, -offset)
            rects.append(rect.clip(shape.height, shape.width))
        return rects


@dataclass
class Slice(Op):
    """Static slice in spatial and/or channel dimensions.

    ``offsets`` is ``(h0, w0, c0)`` and ``sizes`` ``(h, w, c)``; a size
    of ``-1`` extends to the end of that dimension.  Spatial slices
    implement weight-duplication input splitting (Fig. 4); channel
    slices implement CSP route-group splits in TinyYOLOv4.
    """

    offsets: tuple[int, int, int] = (0, 0, 0)
    sizes: tuple[int, int, int] = (-1, -1, -1)

    def __post_init__(self) -> None:
        if len(self.offsets) != 3 or len(self.sizes) != 3:
            raise OpError(f"Slice '{self.name}': offsets/sizes must be 3-tuples")
        if any(o < 0 for o in self.offsets):
            raise OpError(f"Slice '{self.name}': offsets must be >= 0")
        if any(s == 0 or s < -1 for s in self.sizes):
            raise OpError(f"Slice '{self.name}': sizes must be positive or -1")

    def resolved_sizes(self, in_shape: Shape) -> tuple[int, int, int]:
        """Sizes with ``-1`` resolved against the input shape."""
        bounds = in_shape.hwc
        resolved = []
        for offset, size, bound in zip(self.offsets, self.sizes, bounds):
            actual = bound - offset if size == -1 else size
            if offset + actual > bound:
                raise OpError(
                    f"Slice '{self.name}': slice [{offset}, {offset + actual}) "
                    f"exceeds dimension of size {bound}"
                )
            resolved.append(actual)
        return (resolved[0], resolved[1], resolved[2])

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return Shape(*self.resolved_sizes(input_shapes[0]))

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        rect = out_rect.shift(self.offsets[0], self.offsets[1])
        return [rect.clip(in_shape.height, in_shape.width)]


@dataclass
class Upsample(Op):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    factor: int = 2

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise OpError(f"Upsample '{self.name}': factor must be >= 1")

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        in_shape = input_shapes[0]
        return Shape(
            in_shape.height * self.factor,
            in_shape.width * self.factor,
            in_shape.channels,
        )

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if out_rect.is_empty():
            return [Rect.empty()]
        rect = Rect(
            out_rect.r0 // self.factor,
            out_rect.c0 // self.factor,
            math.ceil(out_rect.r1 / self.factor),
            math.ceil(out_rect.c1 / self.factor),
        )
        return [rect.clip(in_shape.height, in_shape.width)]


@dataclass
class Flatten(Op):
    """Flatten a (H, W, C) tensor to (1, 1, H*W*C)."""

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return Shape(1, 1, input_shapes[0].num_elements)

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        in_shape = input_shapes[0]
        if out_rect.is_empty():
            return [Rect.empty()]
        return [in_shape.full_rect()]


@dataclass
class Identity(Op):
    """No-op passthrough (useful as a named alias in rewrites)."""

    def infer_shape(self, input_shapes: list[Shape]) -> Shape:
        self._expect_arity(input_shapes, 1)
        return input_shapes[0]

    def input_regions(
        self, out_rect: Rect, input_shapes: list[Shape], output_shape: Shape
    ) -> list[Rect]:
        return [out_rect]


#: All concrete op classes, keyed by type name (used by serialization).
OP_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Input,
        Conv2D,
        Dense,
        BatchNorm,
        BiasAdd,
        Pad,
        Activation,
        MaxPool,
        AvgPool,
        GlobalAvgPool,
        Add,
        Concat,
        ConcatSpatial,
        Slice,
        Upsample,
        Flatten,
        Identity,
    )
}

#: Base-layer op type names (executed on crossbar PEs).
BASE_OP_TYPES = ("Conv2D", "Dense")
