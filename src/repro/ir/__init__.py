"""NN graph intermediate representation.

The IR is the substrate every other subsystem builds on: a batch-free
HWC tensor model, a DAG of operators with shape inference and backward
region propagation, a numpy reference executor, and JSON serialization.
"""

from .builder import GraphBuilder
from .executor import Executor, conv2d_reference, im2col_patches, run_graph
from .graph import Graph, GraphError, sequential
from .ops import (
    ACTIVATION_KINDS,
    BASE_OP_TYPES,
    OP_TYPES,
    Activation,
    Add,
    AvgPool,
    BatchNorm,
    BiasAdd,
    Concat,
    ConcatSpatial,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    MaxPool,
    Op,
    OpError,
    Pad,
    Slice,
    Upsample,
    conv_out_size,
    same_padding,
)
from .serialize import dumps, graph_from_dict, graph_to_dict, load, loads, save
from .tensor import Rect, Shape, rect_grid, split_extent
from .validate import check_graph, validate_graph
from .viz import save_dot, to_dot

__all__ = [
    "ACTIVATION_KINDS",
    "Activation",
    "Add",
    "AvgPool",
    "BASE_OP_TYPES",
    "BatchNorm",
    "BiasAdd",
    "Concat",
    "ConcatSpatial",
    "Conv2D",
    "Dense",
    "Executor",
    "Flatten",
    "GlobalAvgPool",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Identity",
    "Input",
    "MaxPool",
    "OP_TYPES",
    "Op",
    "OpError",
    "Pad",
    "Rect",
    "Shape",
    "Slice",
    "Upsample",
    "check_graph",
    "conv2d_reference",
    "conv_out_size",
    "dumps",
    "graph_from_dict",
    "graph_to_dict",
    "im2col_patches",
    "load",
    "loads",
    "rect_grid",
    "run_graph",
    "same_padding",
    "save",
    "save_dot",
    "sequential",
    "split_extent",
    "to_dot",
    "validate_graph",
]
