"""Directed acyclic graph container for NN models.

A :class:`Graph` owns a set of named :class:`~repro.ir.ops.Op` nodes.
Edges are implicit: every op names its producers in ``op.inputs``.  The
graph offers topological traversal, cached shape inference, consumer
lookup, and the small mutation API (replace/insert/remove) that the
frontend passes and the weight-duplication rewrite are built on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from .ops import BatchNorm, Conv2D, Dense, Input, Op, OpError
from .tensor import Shape


class GraphError(ValueError):
    """Raised for structural graph errors (cycles, dangling edges...)."""


class Graph:
    """A named-node DAG of IR operators.

    Nodes are added in any order; edges may reference nodes added later.
    All analyses validate lazily.  Mutation invalidates cached shapes.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._ops: dict[str, Op] = {}
        self._shape_cache: Optional[dict[str, Shape]] = None
        self._topo_cache: Optional[list[str]] = None

    # ------------------------------------------------------------------
    # Construction and lookup
    # ------------------------------------------------------------------

    def add(self, op: Op) -> Op:
        """Add an operator; its name must be unique in the graph."""
        if op.name in self._ops:
            raise GraphError(f"duplicate node name '{op.name}'")
        self._ops[op.name] = op
        self._invalidate()
        return op

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __getitem__(self, name: str) -> Op:
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"no node named '{name}' in graph '{self.name}'") from None

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops.values())

    def node_names(self) -> list[str]:
        """All node names in insertion order."""
        return list(self._ops)

    def input_names(self) -> list[str]:
        """Names of all :class:`Input` nodes."""
        return [op.name for op in self._ops.values() if isinstance(op, Input)]

    def output_names(self) -> list[str]:
        """Names of all nodes that no other node consumes."""
        consumed = {producer for op in self._ops.values() for producer in op.inputs}
        return [name for name in self._ops if name not in consumed]

    def consumers(self, name: str) -> list[str]:
        """Names of nodes that read the output of ``name``."""
        return [op.name for op in self._ops.values() if name in op.inputs]

    def base_layers(self) -> list[str]:
        """Names of base-layer nodes (Conv2D/Dense) in topological order."""
        return [name for name in self.topological_order() if self._ops[name].is_base]

    def non_base_layers(self) -> list[str]:
        """Names of non-base nodes (excluding Inputs) in topological order."""
        return [
            name
            for name in self.topological_order()
            if not self._ops[name].is_base and not isinstance(self._ops[name], Input)
        ]

    # ------------------------------------------------------------------
    # Traversal and analysis
    # ------------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Node names in a producer-before-consumer order.

        Raises :class:`GraphError` on cycles or dangling edges.  The
        order is deterministic (Kahn's algorithm with FIFO tie-breaking
        on insertion order).
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree: dict[str, int] = {}
        for name, op in self._ops.items():
            for producer in op.inputs:
                if producer not in self._ops:
                    raise GraphError(
                        f"node '{name}' references missing producer '{producer}'"
                    )
            indegree[name] = len(op.inputs)
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        consumers: dict[str, list[str]] = {name: [] for name in self._ops}
        for name, op in self._ops.items():
            for producer in op.inputs:
                consumers[producer].append(name)
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._ops):
            unresolved = sorted(set(self._ops) - set(order))
            raise GraphError(f"graph contains a cycle involving {unresolved}")
        self._topo_cache = order
        return list(order)

    def infer_shapes(self) -> dict[str, Shape]:
        """Shapes of every node's output, keyed by node name (cached)."""
        if self._shape_cache is not None:
            return dict(self._shape_cache)
        shapes: dict[str, Shape] = {}
        for name in self.topological_order():
            op = self._ops[name]
            input_shapes = [shapes[producer] for producer in op.inputs]
            try:
                shapes[name] = op.infer_shape(input_shapes)
            except OpError as exc:
                raise GraphError(f"shape inference failed at '{name}': {exc}") from exc
        self._shape_cache = shapes
        return dict(shapes)

    def shape_of(self, name: str) -> Shape:
        """Output shape of a single node."""
        return self.infer_shapes()[name]

    def in_channels_of(self, name: str) -> int:
        """Channel count of a single-input node's input tensor."""
        op = self[name]
        if len(op.inputs) != 1:
            raise GraphError(f"'{name}' does not have exactly one input")
        return self.infer_shapes()[op.inputs[0]].channels

    # ------------------------------------------------------------------
    # Mutation (used by frontend passes and rewrites)
    # ------------------------------------------------------------------

    def replace_input(self, node_name: str, old_producer: str, new_producer: str) -> None:
        """Rewire every edge ``old_producer -> node_name`` to the new producer."""
        op = self[node_name]
        if old_producer not in op.inputs:
            raise GraphError(f"'{node_name}' does not consume '{old_producer}'")
        if new_producer not in self._ops:
            raise GraphError(f"new producer '{new_producer}' is not in the graph")
        op.inputs = [new_producer if item == old_producer else item for item in op.inputs]
        self._invalidate()

    def remove(self, name: str) -> Op:
        """Remove a node; it must have no consumers."""
        remaining = self.consumers(name)
        if remaining:
            raise GraphError(f"cannot remove '{name}': still consumed by {remaining}")
        op = self._ops.pop(name)
        self._invalidate()
        return op

    def bypass(self, name: str) -> None:
        """Remove a single-input node, rewiring consumers to its producer."""
        op = self[name]
        if len(op.inputs) != 1:
            raise GraphError(f"cannot bypass '{name}': it has {len(op.inputs)} inputs")
        producer = op.inputs[0]
        for consumer in self.consumers(name):
            self.replace_input(consumer, name, producer)
        self.remove(name)

    def insert_after(self, producer_name: str, new_op: Op) -> Op:
        """Insert ``new_op`` between ``producer_name`` and all its consumers."""
        consumers = self.consumers(producer_name)
        new_op.inputs = [producer_name]
        self.add(new_op)
        for consumer in consumers:
            self.replace_input(consumer, producer_name, new_op.name)
        return new_op

    def unique_name(self, stem: str) -> str:
        """A node name derived from ``stem`` that is unused in the graph."""
        if stem not in self._ops:
            return stem
        index = 1
        while f"{stem}_{index}" in self._ops:
            index += 1
        return f"{stem}_{index}"

    def copy(self, name: Optional[str] = None) -> "Graph":
        """A structural copy; numeric parameter arrays are shared."""
        import copy as _copy

        clone = Graph(name or self.name)
        for op in self._ops.values():
            duplicate = _copy.copy(op)
            duplicate.inputs = list(op.inputs)
            clone._ops[duplicate.name] = duplicate
        return clone

    def _invalidate(self) -> None:
        self._shape_cache = None
        self._topo_cache = None

    # ------------------------------------------------------------------
    # Weight materialization
    # ------------------------------------------------------------------

    def initialize_weights(self, seed: int = 0, scale: float = 0.1) -> None:
        """Fill in missing numeric parameters with seeded random values.

        Scheduling only needs geometry, but the functional executor and
        the quantization tests need numbers; this provides reproducible
        synthetic weights (see DESIGN.md, substitutions table).
        """
        rng = np.random.default_rng(seed)
        shapes = self.infer_shapes()
        for name in self.topological_order():
            op = self._ops[name]
            if isinstance(op, Conv2D):
                in_c = shapes[op.inputs[0]].channels
                kh, kw = op.kernel
                if op.weights is None:
                    op.weights = rng.normal(0.0, scale, (kh, kw, in_c, op.out_channels))
                if op.use_bias and op.bias is None:
                    op.bias = rng.normal(0.0, scale, (op.out_channels,))
            elif isinstance(op, Dense):
                in_features = shapes[op.inputs[0]].channels
                if op.weights is None:
                    op.weights = rng.normal(0.0, scale, (in_features, op.units))
                if op.use_bias and op.bias is None:
                    op.bias = rng.normal(0.0, scale, (op.units,))
            elif isinstance(op, BatchNorm):
                channels = shapes[op.inputs[0]].channels
                if op.gamma is None:
                    op.gamma = rng.uniform(0.5, 1.5, (channels,))
                if op.beta is None:
                    op.beta = rng.normal(0.0, scale, (channels,))
                if op.mean is None:
                    op.mean = rng.normal(0.0, scale, (channels,))
                if op.variance is None:
                    op.variance = rng.uniform(0.5, 1.5, (channels,))
            else:
                bias = getattr(op, "bias", None)
                if hasattr(op, "bias") and bias is None:
                    channels = shapes[op.inputs[0]].channels
                    op.bias = rng.normal(0.0, scale, (channels,))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable multi-line description of the graph."""
        shapes = self.infer_shapes()
        lines = [f"Graph '{self.name}': {len(self)} nodes"]
        for name in self.topological_order():
            op = self._ops[name]
            marker = "*" if op.is_base else " "
            producers = ", ".join(op.inputs) if op.inputs else "-"
            lines.append(
                f" {marker} {name:<28} {op.op_type:<14} {str(shapes[name]):<18} <- {producers}"
            )
        lines.append(" (* = base layer)")
        return "\n".join(lines)


def sequential(name: str, ops: Iterable[Op]) -> Graph:
    """Build a graph from a linear chain of operators.

    Each op's ``inputs`` is overwritten to point at the previous op in
    the iterable (the first must be an :class:`Input`).
    """
    graph = Graph(name)
    previous: Optional[str] = None
    for op in ops:
        if previous is None:
            if not isinstance(op, Input):
                raise GraphError("first op of a sequential graph must be an Input")
        else:
            op.inputs = [previous]
        graph.add(op)
        previous = op.name
    return graph
