"""Fluent builder for constructing IR graphs.

The model zoo (``repro.models``) uses this builder; it handles unique
naming and wiring so model definitions read like framework code::

    b = GraphBuilder("lenet-ish")
    x = b.input((28, 28, 1))
    x = b.conv2d(x, 8, kernel=3, padding="same")
    x = b.activation(x, "relu")
    x = b.maxpool(x, 2)
    g = b.graph
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .graph import Graph
from .ops import (
    Activation,
    Add,
    AvgPool,
    BatchNorm,
    BiasAdd,
    Concat,
    ConcatSpatial,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Identity,
    Input,
    MaxPool,
    Pad,
    Slice,
    Upsample,
)
from .tensor import Shape

IntPair = Union[int, tuple[int, int]]


def _pair(value: IntPair) -> tuple[int, int]:
    """Normalise an int or 2-tuple to a 2-tuple."""
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


class GraphBuilder:
    """Incrementally builds a :class:`~repro.ir.graph.Graph`.

    Every method adds one node and returns its name, which is then used
    as the input handle for subsequent nodes.
    """

    def __init__(self, name: str = "model") -> None:
        self.graph = Graph(name)
        self._counters: dict[str, int] = {}

    def _next_name(self, stem: str, explicit: Optional[str]) -> str:
        if explicit is not None:
            return explicit
        count = self._counters.get(stem, 0)
        self._counters[stem] = count + 1
        # Match the TensorFlow naming scheme visible in the paper's
        # Table I: first instance 'conv2d', then 'conv2d_1', ...
        return stem if count == 0 else f"{stem}_{count}"

    def input(self, shape: Sequence[int], name: Optional[str] = None) -> str:
        """Add a graph input with HWC ``shape``."""
        op = Input(self._next_name("input", name), [], shape=Shape.from_tuple(shape))
        self.graph.add(op)
        return op.name

    def conv2d(
        self,
        x: str,
        out_channels: int,
        kernel: IntPair = 3,
        strides: IntPair = 1,
        padding: str = "same",
        use_bias: bool = True,
        name: Optional[str] = None,
    ) -> str:
        """Add a Conv2D base layer."""
        op = Conv2D(
            self._next_name("conv2d", name),
            [x],
            out_channels=out_channels,
            kernel=_pair(kernel),
            strides=_pair(strides),
            padding=padding,
            use_bias=use_bias,
        )
        self.graph.add(op)
        return op.name

    def dense(
        self, x: str, units: int, use_bias: bool = True, name: Optional[str] = None
    ) -> str:
        """Add a Dense base layer (input must be flattened)."""
        op = Dense(self._next_name("dense", name), [x], units=units, use_bias=use_bias)
        self.graph.add(op)
        return op.name

    def batch_norm(self, x: str, name: Optional[str] = None, epsilon: float = 1e-3) -> str:
        """Add an inference-mode BatchNorm node."""
        op = BatchNorm(self._next_name("batch_normalization", name), [x], epsilon=epsilon)
        self.graph.add(op)
        return op.name

    def bias_add(self, x: str, name: Optional[str] = None) -> str:
        """Add an explicit BiasAdd node."""
        op = BiasAdd(self._next_name("bias_add", name), [x])
        self.graph.add(op)
        return op.name

    def pad(
        self,
        x: str,
        pads: tuple[int, int, int, int],
        name: Optional[str] = None,
    ) -> str:
        """Add explicit zero padding ``(top, bottom, left, right)``."""
        top, bottom, left, right = pads
        op = Pad(
            self._next_name("pad", name),
            [x],
            pad_top=top,
            pad_bottom=bottom,
            pad_left=left,
            pad_right=right,
        )
        self.graph.add(op)
        return op.name

    def activation(
        self, x: str, kind: str = "relu", alpha: float = 0.1, name: Optional[str] = None
    ) -> str:
        """Add an elementwise activation."""
        op = Activation(self._next_name(kind, name), [x], kind=kind, alpha=alpha)
        self.graph.add(op)
        return op.name

    def leaky_relu(self, x: str, alpha: float = 0.1, name: Optional[str] = None) -> str:
        """Shorthand for a LeakyReLU activation."""
        return self.activation(x, "leaky_relu", alpha=alpha, name=name)

    def relu(self, x: str, name: Optional[str] = None) -> str:
        """Shorthand for a ReLU activation."""
        return self.activation(x, "relu", name=name)

    def maxpool(
        self,
        x: str,
        pool: IntPair = 2,
        strides: Optional[IntPair] = None,
        padding: str = "valid",
        name: Optional[str] = None,
    ) -> str:
        """Add a MaxPool node."""
        op = MaxPool(
            self._next_name("max_pooling2d", name),
            [x],
            pool=_pair(pool),
            strides=None if strides is None else _pair(strides),
            padding=padding,
        )
        self.graph.add(op)
        return op.name

    def avgpool(
        self,
        x: str,
        pool: IntPair = 2,
        strides: Optional[IntPair] = None,
        padding: str = "valid",
        name: Optional[str] = None,
    ) -> str:
        """Add an AvgPool node."""
        op = AvgPool(
            self._next_name("average_pooling2d", name),
            [x],
            pool=_pair(pool),
            strides=None if strides is None else _pair(strides),
            padding=padding,
        )
        self.graph.add(op)
        return op.name

    def global_avgpool(self, x: str, name: Optional[str] = None) -> str:
        """Add a GlobalAvgPool node."""
        op = GlobalAvgPool(self._next_name("global_average_pooling2d", name), [x])
        self.graph.add(op)
        return op.name

    def add(self, xs: Sequence[str], name: Optional[str] = None) -> str:
        """Add an elementwise Add over ``xs``."""
        op = Add(self._next_name("add", name), list(xs))
        self.graph.add(op)
        return op.name

    def concat(self, xs: Sequence[str], name: Optional[str] = None) -> str:
        """Add a channel Concat over ``xs``."""
        op = Concat(self._next_name("concatenate", name), list(xs))
        self.graph.add(op)
        return op.name

    def concat_spatial(
        self, xs: Sequence[str], axis: str = "height", name: Optional[str] = None
    ) -> str:
        """Add a spatial ConcatSpatial over ``xs``."""
        op = ConcatSpatial(self._next_name("concat_spatial", name), list(xs), axis=axis)
        self.graph.add(op)
        return op.name

    def slice(
        self,
        x: str,
        offsets: tuple[int, int, int] = (0, 0, 0),
        sizes: tuple[int, int, int] = (-1, -1, -1),
        name: Optional[str] = None,
    ) -> str:
        """Add a static Slice node."""
        op = Slice(self._next_name("slice", name), [x], offsets=offsets, sizes=sizes)
        self.graph.add(op)
        return op.name

    def channel_slice(
        self, x: str, begin: int, size: int, name: Optional[str] = None
    ) -> str:
        """Slice a channel range, keeping the full spatial extent."""
        return self.slice(x, offsets=(0, 0, begin), sizes=(-1, -1, size), name=name)

    def upsample(self, x: str, factor: int = 2, name: Optional[str] = None) -> str:
        """Add nearest-neighbour upsampling."""
        op = Upsample(self._next_name("up_sampling2d", name), [x], factor=factor)
        self.graph.add(op)
        return op.name

    def flatten(self, x: str, name: Optional[str] = None) -> str:
        """Add a Flatten node."""
        op = Flatten(self._next_name("flatten", name), [x])
        self.graph.add(op)
        return op.name

    def identity(self, x: str, name: Optional[str] = None) -> str:
        """Add an Identity alias node."""
        op = Identity(self._next_name("identity", name), [x])
        self.graph.add(op)
        return op.name

    # Composite helpers ------------------------------------------------

    def conv_bn_act(
        self,
        x: str,
        out_channels: int,
        kernel: IntPair = 3,
        strides: IntPair = 1,
        padding: str = "same",
        activation: str = "leaky_relu",
        alpha: float = 0.1,
        name: Optional[str] = None,
    ) -> str:
        """Conv2D (no bias) + BatchNorm + activation, the common CNN block."""
        x = self.conv2d(
            x,
            out_channels,
            kernel=kernel,
            strides=strides,
            padding=padding,
            use_bias=False,
            name=name,
        )
        x = self.batch_norm(x)
        if activation != "linear":
            x = self.activation(x, activation, alpha=alpha)
        return x
