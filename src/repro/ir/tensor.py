"""Tensor shapes and spatial regions for the NN graph IR.

The IR models single-sample (batch-free) inference tensors in HWC
layout, matching the notation of the CLSA-CIM paper (Table I lists
feature maps as ``(H, W, C)``).  Two geometric primitives live here:

``Shape``
    An immutable ``(height, width, channels)`` descriptor.  Scalar or
    flattened tensors use ``height == width == 1``.

``Rect``
    A half-open spatial rectangle ``[r0, r1) x [c0, c1)`` used as the
    *hyperrectangle* of the paper's Stage I/II: scheduling sets and the
    regions propagated between layers are all ``Rect`` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True, order=True)
class Shape:
    """Immutable (height, width, channels) tensor shape in HWC layout."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for field_name in ("height", "width", "channels"):
            value = getattr(self, field_name)
            if not isinstance(value, int):
                raise TypeError(f"Shape.{field_name} must be int, got {type(value).__name__}")
            if value < 1:
                raise ValueError(f"Shape.{field_name} must be >= 1, got {value}")

    @property
    def hwc(self) -> tuple[int, int, int]:
        """The shape as a plain ``(H, W, C)`` tuple."""
        return (self.height, self.width, self.channels)

    @property
    def num_elements(self) -> int:
        """Total number of scalar elements in the tensor."""
        return self.height * self.width * self.channels

    @property
    def spatial_size(self) -> int:
        """Number of spatial positions (``H * W``)."""
        return self.height * self.width

    def with_channels(self, channels: int) -> "Shape":
        """A copy of this shape with a different channel count."""
        return Shape(self.height, self.width, channels)

    def full_rect(self) -> "Rect":
        """The rectangle covering the entire spatial extent."""
        return Rect(0, 0, self.height, self.width)

    @staticmethod
    def from_tuple(hwc: Sequence[int]) -> "Shape":
        """Build a shape from any length-3 sequence ``(H, W, C)``."""
        if len(hwc) != 3:
            raise ValueError(f"expected a length-3 (H, W, C) sequence, got {tuple(hwc)!r}")
        return Shape(int(hwc[0]), int(hwc[1]), int(hwc[2]))

    def __str__(self) -> str:
        return f"({self.height}, {self.width}, {self.channels})"


@dataclass(frozen=True, order=True)
class Rect:
    """Half-open spatial rectangle ``[r0, r1) x [c0, c1)``.

    Rows index the feature-map height dimension, columns the width
    dimension.  An empty rectangle has ``r1 <= r0`` or ``c1 <= c0``;
    empty rectangles normalise equality through :meth:`is_empty`.
    """

    r0: int
    c0: int
    r1: int
    c1: int

    @property
    def rows(self) -> int:
        """Number of rows covered (0 when empty)."""
        return max(0, self.r1 - self.r0)

    @property
    def cols(self) -> int:
        """Number of columns covered (0 when empty)."""
        return max(0, self.c1 - self.c0)

    @property
    def area(self) -> int:
        """Number of spatial positions covered."""
        return self.rows * self.cols

    def is_empty(self) -> bool:
        """Whether the rectangle covers no positions."""
        return self.r1 <= self.r0 or self.c1 <= self.c0

    def intersect(self, other: "Rect") -> "Rect":
        """The intersection rectangle (possibly empty)."""
        return Rect(
            max(self.r0, other.r0),
            max(self.c0, other.c0),
            min(self.r1, other.r1),
            min(self.c1, other.c1),
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one position."""
        return not self.intersect(other).is_empty()

    def contains(self, other: "Rect") -> bool:
        """Whether ``other`` lies fully inside this rectangle."""
        if other.is_empty():
            return True
        return (
            self.r0 <= other.r0
            and self.c0 <= other.c0
            and other.r1 <= self.r1
            and other.c1 <= self.c1
        )

    def contains_point(self, row: int, col: int) -> bool:
        """Whether position ``(row, col)`` lies inside the rectangle."""
        return self.r0 <= row < self.r1 and self.c0 <= col < self.c1

    def clip(self, height: int, width: int) -> "Rect":
        """Clip the rectangle to the bounds of an ``height x width`` map."""
        return Rect(
            max(0, self.r0),
            max(0, self.c0),
            min(height, self.r1),
            min(width, self.c1),
        )

    def shift(self, d_row: int, d_col: int) -> "Rect":
        """Translate the rectangle by ``(d_row, d_col)``."""
        return Rect(self.r0 + d_row, self.c0 + d_col, self.r1 + d_row, self.c1 + d_col)

    def union_bbox(self, other: "Rect") -> "Rect":
        """The bounding box of the union of the two rectangles."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Rect(
            min(self.r0, other.r0),
            min(self.c0, other.c0),
            max(self.r1, other.r1),
            max(self.c1, other.c1),
        )

    def positions(self) -> Iterator[tuple[int, int]]:
        """Iterate all ``(row, col)`` positions inside the rectangle."""
        for row in range(self.r0, self.r1):
            for col in range(self.c0, self.c1):
                yield (row, col)

    @staticmethod
    def empty() -> "Rect":
        """A canonical empty rectangle."""
        return Rect(0, 0, 0, 0)

    def __str__(self) -> str:
        return f"[{self.r0}:{self.r1}, {self.c0}:{self.c1}]"


def rect_grid(height: int, width: int, tile_rows: int, tile_cols: int) -> list[Rect]:
    """Tile an ``height x width`` map into a grid of rectangles.

    Tiles are at most ``tile_rows x tile_cols``; border tiles shrink to
    fit.  Tiles are returned in row-major order and exactly partition
    the map (disjoint and covering), which is the invariant Stage I of
    CLSA-CIM requires of scheduling sets.
    """
    if height < 1 or width < 1:
        raise ValueError(f"map dimensions must be positive, got {height}x{width}")
    if tile_rows < 1 or tile_cols < 1:
        raise ValueError(f"tile dimensions must be positive, got {tile_rows}x{tile_cols}")
    tiles = []
    for r0 in range(0, height, tile_rows):
        for c0 in range(0, width, tile_cols):
            tiles.append(Rect(r0, c0, min(r0 + tile_rows, height), min(c0 + tile_cols, width)))
    return tiles


def split_extent(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into ``parts`` contiguous near-equal ranges.

    The first ``extent % parts`` ranges receive one extra element, so
    range sizes differ by at most one — the balanced-cut rule used both
    by weight-duplication slicing (Fig. 4) and by set partitioning.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if extent < parts:
        raise ValueError(f"cannot split extent {extent} into {parts} non-empty parts")
    base, remainder = divmod(extent, parts)
    ranges = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
