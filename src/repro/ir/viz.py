"""Graphviz DOT export of IR graphs.

``to_dot`` produces a DOT string (no graphviz dependency needed to
*generate* it); base layers render as green boxes and non-base layers
as blue ellipses, mirroring the paper's Fig. 2 color convention.
"""

from __future__ import annotations

from .graph import Graph
from .ops import Input


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(graph: Graph, include_shapes: bool = True) -> str:
    """Render the graph as Graphviz DOT text.

    Parameters
    ----------
    graph:
        The graph to render.
    include_shapes:
        Append each node's output shape to its label.
    """
    shapes = graph.infer_shapes() if include_shapes else {}
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=TB;"]
    for name in graph.topological_order():
        op = graph[name]
        label = f"{name}\\n{op.op_type}"
        if include_shapes:
            label += f"\\n{shapes[name]}"
        if isinstance(op, Input):
            attrs = 'shape=parallelogram, style=filled, fillcolor="#f0f0f0"'
        elif op.is_base:
            # green boxes: base layers (Fig. 2 convention)
            attrs = 'shape=box, style=filled, fillcolor="#c6e2b5"'
        else:
            # blue ellipses: non-base layers
            attrs = 'shape=ellipse, style=filled, fillcolor="#bcd6ec"'
        lines.append(f'  "{_escape(name)}" [label="{label}", {attrs}];')
    for name in graph.topological_order():
        for producer in graph[name].inputs:
            lines.append(f'  "{_escape(producer)}" -> "{_escape(name)}";')
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: Graph, path: str, include_shapes: bool = True) -> None:
    """Write the DOT rendering to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, include_shapes=include_shapes) + "\n")
