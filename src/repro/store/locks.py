"""Advisory file locking for concurrent store writers.

POSIX ``flock`` on a sidecar lock file; platforms without ``fcntl``
degrade to a no-op lock (publishing stays safe regardless — entries
are written to a unique temp file and ``os.replace``d into place, so
the lock only serializes manifest appends and garbage collection, it
does not guard entry integrity).
"""

from __future__ import annotations

from types import TracebackType
from typing import IO, Optional, Type

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """Advisory exclusive lock on a lock file (reentrant-unsafe).

    Usable as a context manager::

        with FileLock(store_root / "store.lock"):
            ...append to the manifest...

    Blocks until the lock is granted.  The lock file itself is never
    deleted; deleting a lock file another process holds open would
    split future waiters onto a different inode.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[bytes]] = None

    @property
    def held(self) -> bool:
        """Whether this object currently holds the lock."""
        return self._handle is not None

    def acquire(self) -> None:
        """Block until the exclusive lock is granted."""
        if self._handle is not None:
            raise RuntimeError(f"lock {self.path!r} is already held")
        handle = open(self.path, "a+b")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            handle.close()
            raise
        self._handle = handle

    def release(self) -> None:
        """Release the lock (no-op when not held)."""
        handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()
