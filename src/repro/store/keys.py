"""Canonical encoding and digesting of pipeline cache keys.

The in-memory :class:`~repro.core.cache.CompilationCache` keys every
stage by a tuple of plain values and frozen dataclasses —
``("tile", ("graph", fp), CrossbarSpec(...))`` and friends.  The disk
store addresses entries by the SHA-256 of a *canonical* JSON encoding
of that same tuple, so two processes that build identical keys always
agree on the entry path without ever exchanging state.

The encoding is deliberately closed-world: ``None``, ``bool``,
``int``, ``str``, ``float``, tuples/lists, dicts, numpy scalars, and
dataclass instances (encoded by qualified class name + field values).
Anything else — lambdas, arbitrary objects a third-party mapping rule
might key on — raises :class:`UnstableKeyError`, and
:func:`key_digest` returns ``None``: such entries simply stay
memory-only rather than risking a digest that silently changes between
runs.

Both :data:`STORE_SCHEMA_VERSION` and the per-stage codec version are
folded into the digest material, so a format bump makes every old
entry unreachable (clean invalidation) instead of deserializing
garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Hashable, Optional

import numpy as np

__all__ = ["STORE_SCHEMA_VERSION", "UnstableKeyError", "encode_key", "key_digest"]

#: Version of the store's key encoding and on-disk entry layout.
#: Folded into every digest: bumping it orphans (never corrupts) all
#: previously-published entries.
STORE_SCHEMA_VERSION = 1


class UnstableKeyError(TypeError):
    """A cache-key component has no canonical, stable encoding."""


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # Tagged so 1.0 and 1 stay distinct keys; repr round-trips
        # floats exactly.  Coerced first: np.float64 subclasses float
        # but reprs as "np.float64(...)".
        return {"~f": repr(float(value))}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return {"~f": repr(float(value))}
    if isinstance(value, (tuple, list)):
        return [_encode(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "~dc": f"{cls.__module__}.{cls.__qualname__}",
            "f": {
                f.name: _encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        pairs = [[_encode(k), _encode(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"~d": pairs}
    if isinstance(value, frozenset):
        items = [_encode(item) for item in value]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"~s": items}
    raise UnstableKeyError(
        f"cache-key component of type {type(value).__qualname__} has no "
        "canonical encoding; the entry stays memory-only"
    )


def encode_key(key: tuple[Hashable, ...]) -> Any:
    """The canonical JSON-compatible encoding of one cache key.

    Raises :class:`UnstableKeyError` on components outside the
    closed-world vocabulary (see module docstring).
    """
    return _encode(tuple(key))


def key_digest(key: tuple[Hashable, ...], codec_version: int) -> Optional[str]:
    """SHA-256 content address of ``key``, or ``None`` if unencodable.

    The digest covers the store schema version and the stage codec
    version alongside the encoded key, so either bump cleanly orphans
    old entries.
    """
    try:
        encoded = encode_key(key)
    except UnstableKeyError:
        return None
    payload = json.dumps(
        {"schema": STORE_SCHEMA_VERSION, "codec": codec_version, "key": encoded},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
