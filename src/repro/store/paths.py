"""Store path resolution: explicit path → env override → user cache dir."""

from __future__ import annotations

import os
from typing import Optional, Union

from .disk import ArtifactStore

__all__ = ["ENV_STORE_PATH", "default_store_path", "resolve_store"]

#: Environment variable overriding the default store location.
ENV_STORE_PATH = "REPRO_STORE_PATH"


def default_store_path() -> str:
    """The default artifact-store directory.

    ``$REPRO_STORE_PATH`` when set, else
    ``$XDG_CACHE_HOME/clsa-cim-repro/store`` (``~/.cache`` when XDG is
    unset).  The directory is not created here — opening an
    :class:`~repro.store.disk.ArtifactStore` on it does that.
    """
    env = os.environ.get(ENV_STORE_PATH)
    if env:
        return os.path.abspath(env)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    if not cache_home:
        cache_home = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(cache_home, "clsa-cim-repro", "store")


def resolve_store(
    store: Union[ArtifactStore, bool, None] = None,
    store_path: Union[str, "os.PathLike[str]", None] = None,
) -> Optional[ArtifactStore]:
    """Resolve the ``store=`` / ``store_path=`` keyword pair.

    ``store`` may be an :class:`ArtifactStore` instance (used as-is),
    ``True`` (open the default path, honouring ``$REPRO_STORE_PATH``),
    or ``None``/``False``; ``store_path`` opens a store at an explicit
    directory.  Passing both is an error; passing neither returns
    ``None`` (no persistent tier).
    """
    if store is not None and store is not False and store_path is not None:
        raise ValueError("pass either store= or store_path=, not both")
    if isinstance(store, ArtifactStore):
        return store
    if store is True:
        return ArtifactStore(default_store_path())
    if store_path is not None:
        return ArtifactStore(os.fspath(store_path))
    return None
