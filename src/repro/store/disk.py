"""The disk-backed, content-addressed artifact store.

:class:`ArtifactStore` persists pipeline-stage results under a root
directory::

    <root>/
      meta.json            # store format marker + schema version
      store.lock           # advisory writer/GC lock (flock)
      manifest.jsonl       # append-only publish journal (header first)
      objects/<dd>/<digest>.json
      tmp/                 # in-flight writes (unique names, fsynced)
      quarantine/          # entries that failed integrity checks

Entries are addressed by the SHA-256 of the canonically-encoded cache
key (:func:`repro.store.keys.key_digest`) — the same
``(stage, graph fingerprint, arch, option prefix)`` tuples the
in-memory :class:`~repro.core.cache.CompilationCache` uses — so any
process that builds the same key reads the same file.

Crash safety and concurrency:

* **Atomic publish**: entries are written to a unique file under
  ``tmp/``, fsynced, then ``os.replace``d into ``objects/``; readers
  can never observe a partial entry, and a writer killed mid-publish
  leaves only tmp litter (swept by :meth:`gc`).
* **Advisory locking**: an ``flock`` on ``store.lock`` serializes
  publishes, manifest appends, GC, and ``clear`` between concurrent
  writers; reads are lock-free.
* **Integrity on read**: every entry embeds the SHA-256 of its
  payload, verified before decoding; undecodable or mismatching
  entries are moved to ``quarantine/`` and treated as a miss — a
  corrupt store never crashes a compile, it recompiles.
* **LRU + size budget**: reads touch the entry mtime; :meth:`gc`
  evicts oldest-read entries until the store fits ``max_bytes``.
  A store constructed with ``max_bytes`` also self-collects when
  publishes push it past the budget.

Every failure mode on the read/write path degrades to a miss — the
store is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from .codecs import codec_for
from .keys import STORE_SCHEMA_VERSION, key_digest
from .locks import FileLock

__all__ = ["ArtifactStore", "GCResult", "StoreStats"]

#: Document marker of store metadata and entry files.
STORE_FORMAT = "clsa-cim-store"
ENTRY_FORMAT = "clsa-cim-store-entry"

#: tmp files older than this (seconds) are crash litter and GC-swept.
_TMP_MAX_AGE_S = 3600.0


def _canonical_payload(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _payload_sha256(payload: dict[str, Any]) -> str:
    import hashlib

    return hashlib.sha256(_canonical_payload(payload)).hexdigest()


@dataclass(frozen=True)
class GCResult:
    """Outcome of one :meth:`ArtifactStore.gc` run."""

    evicted_entries: int
    evicted_bytes: int
    remaining_entries: int
    remaining_bytes: int
    swept_tmp: int = 0


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one store (disk state + session counters)."""

    root: str
    schema: int
    entries: int
    total_bytes: int
    per_stage: dict[str, tuple[int, int]] = field(default_factory=dict)
    quarantined: int = 0
    #: This process's read/write outcomes since the store was opened.
    session_hits: int = 0
    session_misses: int = 0
    session_corrupt: int = 0
    session_writes: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (CLI ``--format json``)."""
        return {
            "root": self.root,
            "schema": self.schema,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "per_stage": {
                stage: {"entries": count, "bytes": size}
                for stage, (count, size) in sorted(self.per_stage.items())
            },
            "quarantined": self.quarantined,
            "session": {
                "hits": self.session_hits,
                "misses": self.session_misses,
                "corrupt": self.session_corrupt,
                "writes": self.session_writes,
            },
        }


class ArtifactStore:
    """Disk-backed second cache tier (see module docstring).

    Parameters
    ----------
    root:
        Store directory; created (with parents) when missing.
    max_bytes:
        Optional standing size budget: publishes that push the store
        past it trigger an automatic :meth:`gc` back under budget.
        ``None`` (default) never self-collects — run ``repro cache gc``
        or :meth:`gc` explicitly.
    """

    def __init__(self, root: str, *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = os.path.abspath(os.fspath(root))
        self.max_bytes = max_bytes
        self._objects = os.path.join(self.root, "objects")
        self._tmp = os.path.join(self.root, "tmp")
        self._quarantine = os.path.join(self.root, "quarantine")
        self._manifest = os.path.join(self.root, "manifest.jsonl")
        self._lock_path = os.path.join(self.root, "store.lock")
        for path in (self.root, self._objects, self._tmp, self._quarantine):
            os.makedirs(path, exist_ok=True)
        self._write_meta()
        #: Read/write outcomes of this process (mirrors StageStats
        #: granularity).
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self._approx_bytes: Optional[int] = None
        self._publish_seq = 0

    def __repr__(self) -> str:
        return f"ArtifactStore({self.root!r})"

    @property
    def path(self) -> str:
        """The store root (alias of :attr:`root`)."""
        return self.root

    # -- layout --------------------------------------------------------

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self._objects, digest[:2], f"{digest}.json")

    def _lock(self) -> FileLock:
        return FileLock(self._lock_path)

    def _write_meta(self) -> None:
        meta_path = os.path.join(self.root, "meta.json")
        record = {"format": STORE_FORMAT, "schema": STORE_SCHEMA_VERSION}
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                if json.load(handle) == record:
                    return
        except (OSError, ValueError):
            pass
        # New store, older schema, or damaged meta: stamp the current
        # schema.  Old-schema entries are unreachable either way (the
        # schema is folded into every digest); GC reclaims them.
        try:
            with self._lock():
                with open(meta_path, "w", encoding="utf-8") as handle:
                    json.dump(record, handle)
        except OSError:
            pass

    # -- read path -----------------------------------------------------

    def get(self, stage: str, key: tuple[Hashable, ...]) -> tuple[bool, Any]:
        """Look up ``key`` → ``(hit, value)``.

        Never raises: unencodable keys, missing entries, I/O errors,
        and corrupt/undecodable entries all return ``(False, None)``
        (corrupt entries are additionally quarantined).
        """
        codec = codec_for(stage)
        if codec is None:
            return False, None
        digest = key_digest(key, codec.version)
        if digest is None:
            return False, None
        path = self._entry_path(digest)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            return False, None
        try:
            record = json.loads(raw)
            if (
                not isinstance(record, dict)
                or record.get("format") != ENTRY_FORMAT
                or record.get("schema") != STORE_SCHEMA_VERSION
                or record.get("stage") != stage
                or record.get("codec") != codec.version
            ):
                raise ValueError("entry header mismatch")
            payload = record["payload"]
            if record.get("sha256") != _payload_sha256(payload):
                raise ValueError("payload digest mismatch")
            value = codec.decode(payload)
        except Exception:
            self._quarantine_entry(path, digest)
            self.corrupt += 1
            self.misses += 1
            return False, None
        try:
            os.utime(path, None)  # LRU touch
        except OSError:
            pass
        self.hits += 1
        return True, value

    def _quarantine_entry(self, path: str, digest: str) -> None:
        """Move a bad entry aside so it is recompiled, not re-read."""
        target = os.path.join(self._quarantine, f"{digest}.json")
        try:
            os.replace(path, target)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass

    # -- write path ----------------------------------------------------

    def put(self, stage: str, key: tuple[Hashable, ...], value: Any) -> bool:
        """Publish ``value`` under ``key``; returns whether it is stored.

        Best-effort and crash-safe: the entry is written to a unique
        tmp file, fsynced, and atomically renamed into place under the
        writer lock.  Unencodable keys/values and I/O failures return
        ``False`` without raising.
        """
        codec = codec_for(stage)
        if codec is None:
            return False
        digest = key_digest(key, codec.version)
        if digest is None:
            return False
        path = self._entry_path(digest)
        if os.path.exists(path):
            return True
        try:
            payload = codec.encode(value)
            record = {
                "format": ENTRY_FORMAT,
                "schema": STORE_SCHEMA_VERSION,
                "stage": stage,
                "codec": codec.version,
                "sha256": _payload_sha256(payload),
                "payload": payload,
            }
            # No sort_keys here: payload dicts keyed by layer name carry
            # topological order that decoding must see again.  The
            # integrity digest canonicalizes independently.
            text = json.dumps(record, separators=(",", ":"))
        except Exception:
            return False
        tmp_path = os.path.join(
            self._tmp, f"{digest}.{os.getpid()}.{os.urandom(4).hex()}"
        )
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with self._lock():
                os.replace(tmp_path, path)
                self._append_manifest(digest, stage, len(text))
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            return False
        self.writes += 1
        self._after_publish(len(text))
        return True

    def _append_manifest(self, digest: str, stage: str, size: int) -> None:
        """Journal one publish (caller holds the writer lock)."""
        line = json.dumps(
            {"digest": digest, "stage": stage, "bytes": size},
            sort_keys=True,
            separators=(",", ":"),
        )
        try:
            fresh = not os.path.exists(self._manifest)
            with open(self._manifest, "a", encoding="utf-8") as handle:
                if fresh:
                    header = json.dumps(
                        {"format": STORE_FORMAT, "schema": STORE_SCHEMA_VERSION},
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    handle.write(header + "\n")
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            pass

    def _after_publish(self, size: int) -> None:
        """Keep the running size estimate; self-collect over budget."""
        if self.max_bytes is None:
            return
        if self._approx_bytes is None:
            self._approx_bytes = sum(s for _p, s, _m in self._scan_entries())
        else:
            self._approx_bytes += size
        if self._approx_bytes > self.max_bytes:
            self.gc(self.max_bytes)

    # -- index / maintenance -------------------------------------------

    def index(self) -> list[dict[str, Any]]:
        """The journalled publishes (manifest records, torn tail tolerated)."""
        records: list[dict[str, Any]] = []
        try:
            with open(self._manifest, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return records
        for line in lines[1:]:  # skip header
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a killed writer
            if isinstance(record, dict) and "digest" in record:
                records.append(record)
        return records

    def _scan_entries(self) -> list[tuple[str, int, float]]:
        """Every published entry as ``(path, size, mtime)``."""
        entries: list[tuple[str, int, float]] = []
        try:
            shards = sorted(os.scandir(self._objects), key=lambda e: e.name)
        except OSError:
            return entries
        for shard in shards:
            if not shard.is_dir():
                continue
            try:
                children = sorted(os.scandir(shard.path), key=lambda e: e.name)
            except OSError:
                continue
            for child in children:
                if not child.name.endswith(".json"):
                    continue
                try:
                    info = child.stat()
                except OSError:
                    continue
                entries.append((child.path, info.st_size, info.st_mtime))
        return entries

    def _entry_stage(self, path: str) -> str:
        """The stage recorded in one entry (``"?"`` when unreadable)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            return str(record.get("stage", "?"))
        except (OSError, ValueError):
            return "?"

    def stats(self) -> StoreStats:
        """Current disk state plus this process's read counters."""
        per_stage: dict[str, tuple[int, int]] = {}
        total = 0
        entries = self._scan_entries()
        for path, size, _mtime in entries:
            stage = self._entry_stage(path)
            count, stage_bytes = per_stage.get(stage, (0, 0))
            per_stage[stage] = (count + 1, stage_bytes + size)
            total += size
        try:
            quarantined = len(
                [e for e in os.scandir(self._quarantine) if e.is_file()]
            )
        except OSError:
            quarantined = 0
        return StoreStats(
            root=self.root,
            schema=STORE_SCHEMA_VERSION,
            entries=len(entries),
            total_bytes=total,
            per_stage=per_stage,
            quarantined=quarantined,
            session_hits=self.hits,
            session_misses=self.misses,
            session_corrupt=self.corrupt,
            session_writes=self.writes,
        )

    def gc(self, max_bytes: Optional[int] = None) -> GCResult:
        """Sweep crash litter and evict LRU entries down to ``max_bytes``.

        ``max_bytes`` defaults to the store's standing budget; with
        neither set only tmp litter is swept.  Quarantined entries
        count toward the budget and are evicted *first* (they are dead
        weight — never read again, kept only for post-mortems); live
        entries then evict in mtime order — reads touch entries, so
        this is least-recently-*used*, not least-recently-written.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        import time as _time

        now = _time.time()
        with self._lock():
            swept = 0
            try:
                tmp_files = list(os.scandir(self._tmp))
            except OSError:
                tmp_files = []
            for entry in tmp_files:
                try:
                    if now - entry.stat().st_mtime >= _TMP_MAX_AGE_S:
                        os.remove(entry.path)
                        swept += 1
                except OSError:
                    pass
            entries = self._scan_entries()
            quarantined = self._scan_quarantine()
            total = sum(size for _p, size, _m in entries)
            total += sum(size for _p, size, _m in quarantined)
            evicted = 0
            evicted_bytes = 0
            if budget is not None and total > budget:
                entries.sort(key=lambda item: item[2])  # oldest mtime first
                quarantined.sort(key=lambda item: item[2])
                for path, size, _mtime in quarantined + entries:
                    if total <= budget:
                        break
                    try:
                        os.remove(path)
                    except OSError:
                        continue
                    total -= size
                    evicted += 1
                    evicted_bytes += size
            remaining = self._scan_entries()
            self._rewrite_manifest(remaining)
            self._approx_bytes = sum(size for _p, size, _m in remaining)
            return GCResult(
                evicted_entries=evicted,
                evicted_bytes=evicted_bytes,
                remaining_entries=len(remaining),
                remaining_bytes=self._approx_bytes,
                swept_tmp=swept,
            )

    def _scan_quarantine(self) -> list[tuple[str, int, float]]:
        """Every quarantined entry as ``(path, size, mtime)``."""
        entries: list[tuple[str, int, float]] = []
        try:
            files = sorted(os.scandir(self._quarantine), key=lambda e: e.name)
        except OSError:
            return entries
        for entry in files:
            try:
                if not entry.is_file():
                    continue
                stat = entry.stat()
            except OSError:
                continue
            entries.append((entry.path, stat.st_size, stat.st_mtime))
        return entries

    def _rewrite_manifest(self, entries: list[tuple[str, int, float]]) -> None:
        """Compact the manifest to the surviving entries (lock held)."""
        lines = [
            json.dumps(
                {"format": STORE_FORMAT, "schema": STORE_SCHEMA_VERSION},
                sort_keys=True,
                separators=(",", ":"),
            )
        ]
        for path, size, _mtime in entries:
            digest = os.path.splitext(os.path.basename(path))[0]
            lines.append(
                json.dumps(
                    {
                        "digest": digest,
                        "stage": self._entry_stage(path),
                        "bytes": size,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        tmp_path = os.path.join(self._tmp, f"manifest.{os.getpid()}")
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
            os.replace(tmp_path, self._manifest)
        except OSError:
            pass

    def clear(self) -> int:
        """Remove every entry (and quarantine/tmp litter); returns count."""
        removed = 0
        with self._lock():
            for path, _size, _mtime in self._scan_entries():
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
            for directory in (self._quarantine, self._tmp):
                try:
                    children = list(os.scandir(directory))
                except OSError:
                    continue
                for entry in children:
                    try:
                        os.remove(entry.path)
                    except OSError:
                        pass
            self._rewrite_manifest([])
            self._approx_bytes = 0
        return removed
