"""Persistent, content-addressed artifact store (the disk cache tier).

Layers under the in-memory :class:`~repro.core.cache.CompilationCache`
as a read-through/write-through second tier: every pipeline stage a
session compiles is published to disk, and any later process — a pool
worker, a fresh CLI invocation, a service restart — that builds the
same cache key is served the decoded artifact instead of recomputing
the stage.  See :mod:`repro.store.disk` for the on-disk layout and the
crash-safety/concurrency story, :mod:`repro.store.keys` for the
content-address scheme, and :mod:`repro.store.codecs` for the
per-stage serialization formats.

Typical use goes through the session layer::

    session = Session(arch, store_path="~/.cache/clsa-cim-repro/store")
    session = Session(arch, store=True)   # default path / $REPRO_STORE_PATH

and the ``repro cache`` CLI subcommand (``stats``, ``gc``, ``clear``,
``path``) administers a store directory.
"""

from .codecs import CODECS, StageCodec, codec_for
from .disk import ArtifactStore, GCResult, StoreStats
from .keys import STORE_SCHEMA_VERSION, UnstableKeyError, encode_key, key_digest
from .locks import FileLock
from .paths import ENV_STORE_PATH, default_store_path, resolve_store

__all__ = [
    "ArtifactStore",
    "CODECS",
    "ENV_STORE_PATH",
    "FileLock",
    "GCResult",
    "STORE_SCHEMA_VERSION",
    "StageCodec",
    "StoreStats",
    "UnstableKeyError",
    "codec_for",
    "default_store_path",
    "encode_key",
    "key_digest",
    "resolve_store",
]
