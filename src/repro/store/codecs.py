"""Per-stage artifact codecs over the versioned serialization vocabulary.

Every pipeline stage the store can persist gets one :class:`StageCodec`
pairing an ``encode`` (stage value → JSON-compatible payload) with a
``decode``.  The payload formats ride the existing
:mod:`repro.ir.serialize` vocabulary wherever one exists (graphs,
architectures, sets, schedules, duplication solutions, rewrites); the
two stage values that format never stored standalone — per-layer
tilings and placements — get small codecs here.  Placements store
their tilings explicitly: unlike the compiled-artifact loader, a store
decode has no mapped graph in hand to recompute them from.

Each codec carries a ``version`` that is folded into the entry's
content address (see :func:`repro.store.keys.key_digest`), so bumping
a codec orphans only that stage's entries.

Stages without a codec here (third-party mapping rules keyed through
``ctx.cached``) simply stay memory-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..ir.serialize import (
    _dependencies_from_list,
    _dependencies_to_list,
    _duplication_from_dict,
    _duplication_to_dict,
    _rewrite_from_dict,
    _rewrite_to_dict,
    _sets_from_dict,
    _sets_to_dict,
    arch_from_dict,
    arch_to_dict,
    graph_from_dict,
    graph_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = ["CODECS", "StageCodec", "codec_for"]


@dataclass(frozen=True)
class StageCodec:
    """(encode, decode, version) of one persistable pipeline stage."""

    stage: str
    version: int
    encode: Callable[[Any], dict[str, Any]]
    decode: Callable[[dict[str, Any]], Any]


# -- graphs (preprocess) ----------------------------------------------------


def _encode_graph(value: Any) -> dict[str, Any]:
    return {"graph": graph_to_dict(value, include_params=True)}


def _decode_graph(payload: dict[str, Any]) -> Any:
    return graph_from_dict(payload["graph"])


# -- tilings (tile) ---------------------------------------------------------


def _encode_tilings(value: Any) -> dict[str, Any]:
    return {
        "tilings": {
            layer: {
                "lowering": {
                    "layer": tiling.lowering.layer,
                    "kernel_rows": tiling.lowering.kernel_rows,
                    "kernel_cols": tiling.lowering.kernel_cols,
                    "num_mvms": tiling.lowering.num_mvms,
                    "ofm_shape": list(tiling.lowering.ofm_shape.hwc),
                },
                "pe_grid": list(tiling.pe_grid),
            }
            for layer, tiling in value.items()
        }
    }


def _decode_tilings(payload: dict[str, Any]) -> Any:
    from ..ir.tensor import Shape
    from ..mapping.im2col import GemmLowering
    from ..mapping.tiling import LayerTiling

    return {
        layer: LayerTiling(
            lowering=GemmLowering(
                layer=record["lowering"]["layer"],
                kernel_rows=int(record["lowering"]["kernel_rows"]),
                kernel_cols=int(record["lowering"]["kernel_cols"]),
                num_mvms=int(record["lowering"]["num_mvms"]),
                ofm_shape=Shape.from_tuple(record["lowering"]["ofm_shape"]),
            ),
            pe_grid=(int(record["pe_grid"][0]), int(record["pe_grid"][1])),
        )
        for layer, record in payload["tilings"].items()
    }


# -- duplication solution + rewrite (wdup) ----------------------------------


def _encode_wdup(value: Any) -> dict[str, Any]:
    duplication, rewrite = value
    return {
        "duplication": _duplication_to_dict(duplication),
        "graph": graph_to_dict(rewrite.graph, include_params=True),
        "rewrite": _rewrite_to_dict(rewrite),
    }


def _decode_wdup(payload: dict[str, Any]) -> Any:
    mapped = graph_from_dict(payload["graph"])
    return (
        _duplication_from_dict(payload["duplication"]),
        _rewrite_from_dict(payload["rewrite"], mapped),
    )


# -- placement (place) ------------------------------------------------------


def _encode_placement(value: Any) -> dict[str, Any]:
    return {
        "arch": arch_to_dict(value.arch),
        "pe_ranges": {
            layer: list(pe_range) for layer, pe_range in value.pe_ranges.items()
        },
        **_encode_tilings(value.tilings),
    }


def _decode_placement(payload: dict[str, Any]) -> Any:
    from ..mapping.placement import Placement

    return Placement(
        arch=arch_from_dict(payload["arch"]),
        pe_ranges={
            layer: (int(start), int(end))
            for layer, (start, end) in payload["pe_ranges"].items()
        },
        tilings=_decode_tilings(payload),
    )


# -- Stage I sets (sets) ----------------------------------------------------


def _encode_sets(value: Any) -> dict[str, Any]:
    return {"sets": _sets_to_dict(value)}


def _decode_sets(payload: dict[str, Any]) -> Any:
    return _sets_from_dict(payload["sets"])


# -- Stage II dependencies (deps) -------------------------------------------


def _encode_deps(value: Any) -> dict[str, Any]:
    return {"sets": _sets_to_dict(value.sets), "deps": _dependencies_to_list(value)}


def _decode_deps(payload: dict[str, Any]) -> Any:
    return _dependencies_from_list(payload["deps"], _sets_from_dict(payload["sets"]))


# -- schedule ---------------------------------------------------------------


def _encode_schedule(value: Any) -> dict[str, Any]:
    return {"schedule": schedule_to_dict(value)}


def _decode_schedule(payload: dict[str, Any]) -> Any:
    return schedule_from_dict(payload["schedule"])


#: Stage name → codec, for every stage the pipeline caches.
CODECS: dict[str, StageCodec] = {
    codec.stage: codec
    for codec in (
        StageCodec("preprocess", 1, _encode_graph, _decode_graph),
        StageCodec("tile", 1, _encode_tilings, _decode_tilings),
        StageCodec("wdup", 1, _encode_wdup, _decode_wdup),
        StageCodec("place", 1, _encode_placement, _decode_placement),
        StageCodec("sets", 1, _encode_sets, _decode_sets),
        StageCodec("deps", 1, _encode_deps, _decode_deps),
        StageCodec("schedule", 1, _encode_schedule, _decode_schedule),
    )
}


def codec_for(stage: str) -> Optional[StageCodec]:
    """The codec of ``stage``, or ``None`` (entry stays memory-only)."""
    return CODECS.get(stage)
