"""Weight-duplication optimization (Section III-C, Optimization Problem 1).

Given per-layer intra-layer latencies ``t_i`` (cycles) and PE costs
``c_i`` (Eq. 1), choose integer duplication factors ``d_i >= 1``::

    minimize    sum_i t_i / d_i
    subject to  sum_i c_i * d_i <= F

where ``F`` is the architecture's PE count.  Duplicating a layer ``d``
times divides its work (input vectors) across ``d`` PE groups, reducing
its latency to ``t_i / d_i`` (Sec. III-C).

Three solvers are provided:

``solve_greedy``
    Marginal-gain-per-PE heuristic.  Each step buys the duplicate with
    the largest latency reduction per extra PE; near-optimal in
    practice (the objective has diminishing returns in each ``d_i``).
``solve_dp``
    Exact dynamic program over the extra-PE budget ``F - C_num``
    (pseudo-polynomial; the paper's sweeps use x <= 32 extra PEs, where
    it is instant).
``continuous_lower_bound``
    KKT water-filling solution of the real-valued relaxation — a lower
    bound used to certify solver quality in tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Optional

from .tiling import LayerTiling


class DuplicationError(ValueError):
    """Raised for infeasible or malformed duplication problems."""


@dataclass(frozen=True)
class DuplicationProblem:
    """One instance of Optimization Problem 1.

    Attributes
    ----------
    layers:
        Base layer names (defines the index order of ``t``/``c``).
    t:
        Intra-layer latency of each layer in cycles (``t_OFM,i``).
    c:
        PE cost of each layer (``c_i``).
    budget:
        Total available PEs ``F``.
    d_max:
        Per-layer duplication cap. Work is split along the OFM height
        (Fig. 4 row cuts), so a layer cannot usefully exceed ``OH``
        duplicates; callers may tighten this further.
    """

    layers: tuple[str, ...]
    t: tuple[int, ...]
    c: tuple[int, ...]
    budget: int
    d_max: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.layers)
        if not (len(self.t) == len(self.c) == len(self.d_max) == n):
            raise DuplicationError("layers, t, c and d_max must have equal length")
        if n == 0:
            raise DuplicationError("problem needs at least one layer")
        if any(value <= 0 for value in self.t):
            raise DuplicationError("latencies must be positive")
        if any(value <= 0 for value in self.c):
            raise DuplicationError("PE costs must be positive")
        if any(value < 1 for value in self.d_max):
            raise DuplicationError("d_max entries must be >= 1")
        if self.base_cost > self.budget:
            raise DuplicationError(
                f"infeasible: storing all weights once needs {self.base_cost} PEs "
                f"but the budget is {self.budget}"
            )

    @property
    def base_cost(self) -> int:
        """``C_num``: PEs with no duplication (all ``d_i = 1``)."""
        return sum(self.c)

    @property
    def extra_budget(self) -> int:
        """PEs available beyond the minimum (the paper's ``x``)."""
        return self.budget - self.base_cost


@dataclass
class DuplicationSolution:
    """Solution vector and bookkeeping for one solved problem."""

    problem: DuplicationProblem
    d: dict[str, int]
    method: str
    #: Objective value sum(t_i / d_i) in (fractional) cycles.
    objective: float = field(init=False)
    #: PEs consumed, sum(c_i * d_i).
    pes_used: int = field(init=False)

    def __post_init__(self) -> None:
        problem = self.problem
        missing = [name for name in problem.layers if name not in self.d]
        if missing:
            raise DuplicationError(f"solution missing layers {missing}")
        self.objective = sum(
            t / self.d[name] for name, t in zip(problem.layers, problem.t)
        )
        self.pes_used = sum(
            c * self.d[name] for name, c in zip(problem.layers, problem.c)
        )
        if self.pes_used > problem.budget:
            raise DuplicationError(
                f"solution uses {self.pes_used} PEs, budget is {problem.budget}"
            )

    @property
    def duplicated_layers(self) -> list[str]:
        """Layers with ``d_i > 1``, in problem order."""
        return [name for name in self.problem.layers if self.d[name] > 1]

    def speedup_layer_by_layer(self) -> float:
        """Layer-by-layer speedup of this mapping vs no duplication."""
        baseline = sum(self.problem.t)
        return baseline / self.objective


def problem_from_tilings(
    tilings: dict[str, LayerTiling],
    budget: int,
    d_max_cap: Optional[int] = None,
    axis: str = "width",
) -> DuplicationProblem:
    """Build Optimization Problem 1 from per-layer tilings.

    ``d_max`` defaults to each layer's OFM extent along the planned cut
    ``axis`` (a slab must be at least one column/row wide, Fig. 4),
    optionally capped by ``d_max_cap``.
    """
    if axis not in ("width", "height"):
        raise DuplicationError(f"axis must be 'width' or 'height', got {axis!r}")
    layers = tuple(tilings)
    t = tuple(t.latency_cycles for t in tilings.values())
    c = tuple(t.num_pes for t in tilings.values())
    caps = []
    for tiling in tilings.values():
        shape = tiling.lowering.ofm_shape
        cap = shape.width if axis == "width" else shape.height
        if d_max_cap is not None:
            cap = min(cap, d_max_cap)
        caps.append(max(1, cap))
    return DuplicationProblem(layers=layers, t=t, c=c, budget=budget, d_max=tuple(caps))


def solve_greedy(problem: DuplicationProblem) -> DuplicationSolution:
    """Marginal-gain-per-PE greedy solver.

    Buying duplicate ``d -> d+1`` of layer ``i`` reduces the objective
    by ``t_i / (d * (d+1))`` at a price of ``c_i`` PEs; each step takes
    the affordable purchase with the best reduction-per-PE ratio.
    """
    d = [1] * len(problem.layers)
    remaining = problem.extra_budget

    def gain(i: int, current: int) -> float:
        return problem.t[i] / (current * (current + 1))

    # Max-heap of (-gain/cost, index, d_at_push). Stale entries are
    # re-validated on pop.
    heap = [
        (-gain(i, 1) / problem.c[i], i, 1)
        for i in range(len(problem.layers))
        if problem.d_max[i] > 1 and problem.c[i] <= remaining
    ]
    heapq.heapify(heap)
    while heap:
        neg_ratio, i, at = heapq.heappop(heap)
        if at != d[i]:
            continue  # stale
        if problem.c[i] > remaining or d[i] >= problem.d_max[i]:
            continue
        d[i] += 1
        remaining -= problem.c[i]
        if d[i] < problem.d_max[i] and problem.c[i] <= remaining:
            heapq.heappush(heap, (-gain(i, d[i]) / problem.c[i], i, d[i]))
    return DuplicationSolution(
        problem=problem,
        d=dict(zip(problem.layers, d)),
        method="greedy",
    )


def solve_dp(problem: DuplicationProblem) -> DuplicationSolution:
    """Exact dynamic program over the extra-PE budget.

    State: ``dp[j]`` = minimum total latency achievable using at most
    ``j`` extra PEs over the layers processed so far.  Per layer the
    transition tries every duplicate count up to ``d_max``.  Runtime is
    ``O(N * B * max_k)`` — instant for the paper's ``x <= 32`` sweeps.
    """
    extra = problem.extra_budget
    n = len(problem.layers)
    infinity = math.inf
    dp = [0.0] * (extra + 1)
    choices: list[list[int]] = []
    for i in range(n):
        new_dp = [infinity] * (extra + 1)
        choice_row = [1] * (extra + 1)
        t_i, c_i, cap = problem.t[i], problem.c[i], problem.d_max[i]
        for j in range(extra + 1):
            max_extra_copies = min(cap - 1, j // c_i)
            for k in range(max_extra_copies + 1):
                candidate = dp[j - k * c_i] + t_i / (k + 1)
                if candidate < new_dp[j]:
                    new_dp[j] = candidate
                    choice_row[j] = k + 1
        dp = new_dp
        choices.append(choice_row)
    # Reconstruct from the cheapest budget achieving the optimum.
    best_j = min(range(extra + 1), key=lambda j: (dp[j], j))
    d = [1] * n
    j = best_j
    for i in reversed(range(n)):
        d[i] = choices[i][j]
        j -= (d[i] - 1) * problem.c[i]
    return DuplicationSolution(
        problem=problem,
        d=dict(zip(problem.layers, d)),
        method="dp",
    )


def continuous_lower_bound(problem: DuplicationProblem) -> float:
    """Objective lower bound from the real-valued relaxation.

    KKT: unconstrained-by-integrality optimum has
    ``d_i = clamp(sqrt(t_i / (lambda * c_i)), 1, d_max_i)`` with the
    multiplier ``lambda >= 0`` chosen so the budget binds (or zero if
    the caps already fit).  Solved by bisection on ``lambda``.
    """

    def spend(lam: float) -> float:
        total = 0.0
        for t_i, c_i, cap in zip(problem.t, problem.c, problem.d_max):
            d_i = math.sqrt(t_i / (lam * c_i)) if lam > 0 else float(cap)
            d_i = min(max(d_i, 1.0), float(cap))
            total += c_i * d_i
        return total

    def objective(lam: float) -> float:
        total = 0.0
        for t_i, c_i, cap in zip(problem.t, problem.c, problem.d_max):
            d_i = math.sqrt(t_i / (lam * c_i)) if lam > 0 else float(cap)
            d_i = min(max(d_i, 1.0), float(cap))
            total += t_i / d_i
        return total

    if spend(0.0) <= problem.budget:
        return objective(0.0)
    lo, hi = 0.0, 1.0
    while spend(hi) > problem.budget:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - defensive
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if spend(mid) > problem.budget:
            lo = mid
        else:
            hi = mid
    return objective(hi)


def solve(problem: DuplicationProblem, method: str = "greedy") -> DuplicationSolution:
    """Solve Optimization Problem 1 with the chosen method."""
    if method == "greedy":
        return solve_greedy(problem)
    if method == "dp":
        return solve_dp(problem)
    raise DuplicationError(f"unknown method {method!r} (use 'greedy' or 'dp')")
