"""Graph rewrite applying weight duplication (Fig. 4 of the paper).

A base layer with duplication factor ``d`` is replaced by ``d``
duplicate layers, each computing a disjoint spatial slab of the OFM
(balanced cuts along OW by default, or OH).  Each duplicate reads its
required IFM slab through an explicit :class:`Slice` (the paper's
``tf.slice``) — slabs may overlap depending on kernel and stride — and
the slab outputs are re-assembled with a :class:`ConcatSpatial` (the
paper's ``tf.keras.layers.Concatenate``).

Why column (width) cuts by default: with cross-layer scheduling, OFM
rows are the forwarding granularity (sets stream row-major).  Cutting
along the width keeps every duplicate producing *every* row, so global
row ``r`` completes after ``(r+1) * OW / d`` cycles — rows finish in
order, at ``d`` times the un-duplicated rate, and downstream layers
pipeline without waiting for any duplicate to finish its whole slab.
Cutting along the height would make each stripe's final rows available
only when that stripe completes, serializing consumers of stripe
boundaries (measurably worse; see the ablation benchmark).

The rewrite is semantics-preserving: duplicates share the original
weight tensors and the concatenated output is numerically identical to
the un-duplicated layer (verified by the functional tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph, GraphError
from ..ir.ops import ConcatSpatial, Conv2D, Slice
from ..ir.tensor import split_extent
from .duplication import DuplicationSolution


class RewriteError(ValueError):
    """Raised when a duplication rewrite cannot be applied."""


@dataclass
class DuplicatedLayer:
    """Bookkeeping for one duplicated base layer."""

    original: str
    #: Cut axis: ``'width'`` or ``'height'``.
    axis: str = "width"
    duplicates: list[str] = field(default_factory=list)
    slices: list[str] = field(default_factory=list)
    concat: str = ""
    #: OFM ranges [(lo, hi), ...] along the cut axis, per duplicate.
    ranges: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class RewriteReport:
    """Result of :func:`apply_duplication`."""

    graph: Graph
    duplicated: dict[str, DuplicatedLayer] = field(default_factory=dict)
    #: Maps every base layer of the rewritten graph to its original
    #: layer name (identity for non-duplicated layers).
    origin_of: dict[str, str] = field(default_factory=dict)

    def duplicates_of(self, original: str) -> list[str]:
        """Duplicate node names of an original layer (itself if none)."""
        if original in self.duplicated:
            return list(self.duplicated[original].duplicates)
        return [original]


def _duplicate_one(
    graph: Graph, layer_name: str, factor: int, entry: DuplicatedLayer
) -> None:
    """Rewrite a single conv layer into ``factor`` spatial-slab duplicates."""
    op = graph[layer_name]
    if not isinstance(op, Conv2D):
        raise RewriteError(
            f"only Conv2D layers can be duplicated, '{layer_name}' is {op.op_type}"
        )
    if op.padding != "valid":
        raise RewriteError(
            f"'{layer_name}' must be canonical (valid padding) before duplication; "
            "run repro.frontend.preprocess first"
        )
    shapes = graph.infer_shapes()
    out_shape = shapes[layer_name]
    in_shape = shapes[op.inputs[0]]
    along_width = entry.axis == "width"
    out_extent = out_shape.width if along_width else out_shape.height
    if factor > out_extent:
        raise RewriteError(
            f"cannot cut the {out_extent}-{entry.axis} OFM of '{layer_name}' "
            f"into {factor} slabs"
        )
    producer = op.inputs[0]
    kernel = op.kernel[1] if along_width else op.kernel[0]
    stride = op.strides[1] if along_width else op.strides[0]
    in_extent = in_shape.width if along_width else in_shape.height
    consumers = graph.consumers(layer_name)

    duplicate_names = []
    for index, (lo, hi) in enumerate(split_extent(out_extent, factor)):
        in_lo = lo * stride
        in_size = (hi - 1 - lo) * stride + kernel
        if in_lo + in_size > in_extent:  # pragma: no cover - geometry guard
            raise RewriteError(
                f"IFM slab of '{layer_name}' duplicate {index} exceeds input bounds"
            )
        if along_width:
            offsets, sizes = (0, in_lo, 0), (-1, in_size, -1)
        else:
            offsets, sizes = (in_lo, 0, 0), (in_size, -1, -1)
        slice_name = graph.unique_name(f"{layer_name}/dup{index}/slice")
        graph.add(Slice(slice_name, [producer], offsets=offsets, sizes=sizes))
        dup_name = graph.unique_name(f"{layer_name}/dup{index}")
        graph.add(
            Conv2D(
                dup_name,
                [slice_name],
                out_channels=op.out_channels,
                kernel=op.kernel,
                strides=op.strides,
                padding="valid",
                use_bias=False,
                weights=op.weights,  # duplicates share the weight tensor
            )
        )
        duplicate_names.append(dup_name)
        entry.slices.append(slice_name)
        entry.ranges.append((lo, hi))

    concat_name = graph.unique_name(f"{layer_name}/concat")
    graph.add(ConcatSpatial(concat_name, duplicate_names, axis=entry.axis))
    for consumer in consumers:
        graph.replace_input(consumer, layer_name, concat_name)
    graph.remove(layer_name)
    entry.duplicates = duplicate_names
    entry.concat = concat_name


def apply_duplication(
    graph: Graph, solution: DuplicationSolution, axis: str = "width"
) -> RewriteReport:
    """Apply a duplication solution, returning a rewritten graph copy.

    Parameters
    ----------
    graph:
        Canonical model; never modified.
    solution:
        Per-layer duplication factors (layers with ``d_i = 1`` are
        untouched).
    axis:
        Cut direction: ``'width'`` (default; pipelining-friendly, see
        module docstring) or ``'height'`` (Fig. 4's row-cut variant,
        kept for the ablation study).
    """
    if axis not in ("width", "height"):
        raise RewriteError(f"axis must be 'width' or 'height', got {axis!r}")
    rewritten = graph.copy(f"{graph.name}_wdup")
    report = RewriteReport(graph=rewritten)
    for layer_name, factor in solution.d.items():
        if layer_name not in rewritten:
            raise RewriteError(f"solution references unknown layer '{layer_name}'")
        if factor < 1:
            raise RewriteError(f"duplication factor of '{layer_name}' must be >= 1")
        if factor == 1:
            continue
        entry = DuplicatedLayer(original=layer_name, axis=axis)
        _duplicate_one(rewritten, layer_name, factor, entry)
        report.duplicated[layer_name] = entry
    try:
        rewritten.topological_order()
    except GraphError as exc:  # pragma: no cover - rewrite is acyclic
        raise RewriteError(f"duplication produced an invalid graph: {exc}") from exc
    for name in rewritten.base_layers():
        origin = name.split("/dup")[0] if "/dup" in name else name
        report.origin_of[name] = origin
    return report
