"""Conv2D -> GEMM lowering descriptors (Fig. 3 of the paper).

A convolution with kernel ``(KH, KW)`` over ``KI`` input channels and
``KO`` output channels becomes a GEMM against a
``(KW*KH*KI) x KO`` *kernel matrix*; each output feature-map pixel is
one input vector of that GEMM.  This module computes the lowering
geometry for any base layer — the numeric im2col transform itself lives
in :func:`repro.ir.executor.im2col_patches`, which the executor tests
validate against direct convolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph
from ..ir.ops import Conv2D, Dense
from ..ir.tensor import Shape


@dataclass(frozen=True)
class GemmLowering:
    """GEMM view of one base layer.

    Attributes
    ----------
    layer:
        Base layer node name.
    kernel_rows:
        Kernel-matrix rows (``KW*KH*KI`` for conv, input features for
        dense).
    kernel_cols:
        Kernel-matrix columns (``KO`` / units).
    num_mvms:
        Input vectors in the GEMM = spatial positions of the OFM
        (``OH*OW``; 1 for dense).  Under intra-layer scheduling, each
        MVM takes one ``t_MVM`` cycle, so ``num_mvms`` equals the
        layer's latency ``t_OFM`` in cycles (Sec. III-B).
    ofm_shape:
        The layer's output shape.
    """

    layer: str
    kernel_rows: int
    kernel_cols: int
    num_mvms: int
    ofm_shape: Shape

    @property
    def weight_elements(self) -> int:
        """Scalar weights in the kernel matrix."""
        return self.kernel_rows * self.kernel_cols

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the layer's GEMM."""
        return self.weight_elements * self.num_mvms


def lower_layer(graph: Graph, layer_name: str) -> GemmLowering:
    """Compute the GEMM lowering of one base layer."""
    op = graph[layer_name]
    shapes = graph.infer_shapes()
    out_shape = shapes[layer_name]
    if isinstance(op, Conv2D):
        in_channels = shapes[op.inputs[0]].channels
        rows, cols = op.kernel_matrix_shape(in_channels)
        num_mvms = out_shape.spatial_size
    elif isinstance(op, Dense):
        in_features = shapes[op.inputs[0]].channels
        rows, cols = op.kernel_matrix_shape(in_features)
        num_mvms = 1
    else:
        raise ValueError(f"'{layer_name}' is not a base layer (got {op.op_type})")
    return GemmLowering(
        layer=layer_name,
        kernel_rows=rows,
        kernel_cols=cols,
        num_mvms=num_mvms,
        ofm_shape=out_shape,
    )


def lower_graph(graph: Graph) -> dict[str, GemmLowering]:
    """GEMM lowerings of every base layer, keyed by layer name."""
    return {name: lower_layer(graph, name) for name in graph.base_layers()}
