"""Mapping stage: im2col lowering, PE tiling, weight duplication, placement."""

from .duplication import (
    DuplicationError,
    DuplicationProblem,
    DuplicationSolution,
    continuous_lower_bound,
    problem_from_tilings,
    solve,
    solve_dp,
    solve_greedy,
)
from .im2col import GemmLowering, lower_graph, lower_layer
from .placement import Placement, PlacementError, place_graph
from .rewrite import DuplicatedLayer, RewriteError, RewriteReport, apply_duplication
from .tiling import (
    LayerTiling,
    layer_table,
    minimum_pe_requirement,
    tile_graph,
    tile_layer,
)

__all__ = [
    "DuplicatedLayer",
    "DuplicationError",
    "DuplicationProblem",
    "DuplicationSolution",
    "GemmLowering",
    "LayerTiling",
    "Placement",
    "PlacementError",
    "RewriteError",
    "RewriteReport",
    "apply_duplication",
    "continuous_lower_bound",
    "layer_table",
    "lower_graph",
    "lower_layer",
    "minimum_pe_requirement",
    "place_graph",
    "problem_from_tilings",
    "solve",
    "solve_dp",
    "solve_greedy",
    "tile_graph",
    "tile_layer",
]
