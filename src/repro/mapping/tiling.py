"""Kernel-matrix tiling onto crossbar PEs (Eq. 1 of the paper).

The ``(KW*KH*KI) x KO`` kernel matrix of each base layer is subdivided
into ``M x N`` submatrices statically mapped onto PEs::

    c_i = ceil(KW*KH*KI / N) * ceil(KO / M)   (= P_V,i * P_H,i)

``C_num = sum_i c_i`` is the minimum PE count to store the whole NN
once — the "Min. # required PEs" column of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.pe import CrossbarSpec
from ..ir.graph import Graph
from .im2col import GemmLowering, lower_graph


@dataclass(frozen=True)
class LayerTiling:
    """PE tiling of one base layer.

    Attributes
    ----------
    lowering:
        The layer's GEMM geometry.
    pe_grid:
        ``(P_V, P_H)`` submatrix grid of Eq. 1.
    """

    lowering: GemmLowering
    pe_grid: tuple[int, int]

    @property
    def layer(self) -> str:
        """Base layer node name."""
        return self.lowering.layer

    @property
    def num_pes(self) -> int:
        """PEs required by the layer (``c_i``)."""
        return self.pe_grid[0] * self.pe_grid[1]

    @property
    def latency_cycles(self) -> int:
        """Intra-layer latency ``t_OFM`` in cycles: OH*OW (Sec. III-B).

        All PEs of the layer operate in parallel on each OFM vector, so
        the PE count does not appear here — only the OFM spatial size.
        """
        return self.lowering.num_mvms

    def utilization_share(self) -> int:
        """Active PE-cycles the layer contributes (``c_i * t_i``)."""
        return self.num_pes * self.latency_cycles


def tile_layer(lowering: GemmLowering, crossbar: CrossbarSpec) -> LayerTiling:
    """Tile one lowered layer onto ``M x N`` PEs."""
    grid = crossbar.grid_for_kernel_matrix(lowering.kernel_rows, lowering.kernel_cols)
    return LayerTiling(lowering=lowering, pe_grid=grid)


def tile_graph(graph: Graph, crossbar: CrossbarSpec) -> dict[str, LayerTiling]:
    """Tilings of every base layer, keyed by layer name."""
    return {
        name: tile_layer(lowering, crossbar)
        for name, lowering in lower_graph(graph).items()
    }


def minimum_pe_requirement(graph: Graph, crossbar: CrossbarSpec) -> int:
    """``C_num``: PEs needed to store the whole network once (Table II)."""
    return sum(t.num_pes for t in tile_graph(graph, crossbar).values())


def layer_table(graph: Graph, crossbar: CrossbarSpec) -> list[dict]:
    """Per-layer rows in the style of the paper's Table I.

    Each row carries: layer name, IFM shape (the direct — already
    padded — input of the base layer), OFM shape, #PE, and the
    intra-layer latency ``t_init`` in cycles.
    """
    shapes = graph.infer_shapes()
    rows = []
    for name, tiling in tile_graph(graph, crossbar).items():
        op = graph[name]
        ifm = shapes[op.inputs[0]] if op.inputs else None
        rows.append(
            {
                "layer": name,
                "ifm": ifm.hwc if ifm is not None else None,
                "ofm": shapes[name].hwc,
                "num_pes": tiling.num_pes,
                "cycles": tiling.latency_cycles,
            }
        )
    return rows
