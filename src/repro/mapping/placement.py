"""Static placement of base layers onto PEs and tiles.

Weights are programmed once before inference (RRAM endurance,
Sec. II-A), so placement is a static assignment: each base layer of the
(possibly duplication-rewritten) graph owns ``c_i`` PEs exclusively.
PEs are packed consecutively in topological order — with one PE per
tile (the paper's case study) any packing is equivalent; with multiple
PEs per tile, consecutive packing keeps a layer's submatrices close,
which the optional NoC cost model rewards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.config import ArchitectureConfig
from ..ir.graph import Graph
from .tiling import LayerTiling, tile_graph


class PlacementError(ValueError):
    """Raised when a model does not fit the architecture."""


@dataclass
class Placement:
    """PE/tile assignment of every base layer.

    Attributes
    ----------
    arch:
        The architecture placed onto.
    pe_ranges:
        Per base layer, the half-open PE id range ``(first, last+1)``.
    tilings:
        Per-layer tiling (Eq. 1 geometry) used for the assignment.
    """

    arch: ArchitectureConfig
    pe_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    tilings: dict[str, LayerTiling] = field(default_factory=dict)

    @property
    def pes_used(self) -> int:
        """Total PEs claimed by base layers."""
        return sum(end - start for start, end in self.pe_ranges.values())

    def pes_of(self, layer: str) -> list[int]:
        """PE ids owned by a base layer."""
        start, end = self.pe_ranges[layer]
        return list(range(start, end))

    def tiles_of(self, layer: str) -> list[int]:
        """Tile ids hosting a base layer's PEs (sorted, unique)."""
        per_tile = self.arch.tile.pes_per_tile
        start, end = self.pe_ranges[layer]
        return sorted({pe // per_tile for pe in range(start, end)})

    def layer_of_pe(self, pe: int) -> str | None:
        """The base layer owning a PE id, or ``None`` if idle."""
        for layer, (start, end) in self.pe_ranges.items():
            if start <= pe < end:
                return layer
        return None

    def summary(self) -> str:
        """Human-readable placement overview."""
        lines = [
            f"placement on {self.arch.summary()}",
            f"  {self.pes_used}/{self.arch.num_pes} PEs used "
            f"({self.arch.num_pes - self.pes_used} idle)",
        ]
        for layer, (start, end) in self.pe_ranges.items():
            lines.append(f"  {layer:<32} PEs [{start}, {end})")
        return "\n".join(lines)


def place_graph(graph: Graph, arch: ArchitectureConfig) -> Placement:
    """Pack every base layer's PEs consecutively in topological order.

    Raises :class:`PlacementError` when the model needs more PEs than
    the architecture provides (violating the Sec. II-A requirement that
    all weights be storable at least once).
    """
    tilings = tile_graph(graph, arch.crossbar)
    placement = Placement(arch=arch, tilings=tilings)
    cursor = 0
    for layer, tiling in tilings.items():
        placement.pe_ranges[layer] = (cursor, cursor + tiling.num_pes)
        cursor += tiling.num_pes
    if cursor > arch.num_pes:
        raise PlacementError(
            f"model '{graph.name}' needs {cursor} PEs but architecture "
            f"'{arch.name}' has only {arch.num_pes}"
        )
    return placement
