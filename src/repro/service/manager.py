"""The job manager: registry and state machine behind the HTTP frontend.

Every submitted job gets a :class:`JobRecord` — a uuid, the state
machine ``queued → running → done/failed/cancelled``, and eventually
the :class:`~repro.exec.jobs.JobResult` envelope — and executes on an
:class:`~repro.service.async_executor.AsyncExecutor` (bounded
concurrency, unbounded queue).  Execution itself goes through a
per-job :class:`~repro.session.Session`, so the service inherits the
whole resilience stack (retry budgets, cooperative job timeouts,
captured error envelopes) without reimplementing any of it.

Caching is two-tier exactly like the library: with a persistent
:class:`~repro.store.disk.ArtifactStore` every job compiles through a
fresh in-memory cache layered on the shared store — concurrent clients
sweeping the same model see ``cache_store_hits`` and zero recompiles;
without a store all jobs share one in-memory cache.

Terminal records are evicted ``result_ttl`` seconds after finishing
(lazily, on any registry access), bounding the service's memory.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent import futures as cf
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..arch.presets import paper_case_study
from ..core.cache import CompilationCache
from ..exec.futures import JobFuture
from ..exec.jobs import COMPOSITE_KINDS, Job, JobError, JobResult, job_key
from ..exec.resilience import RetryPolicy
from ..session import Session
from .async_executor import AsyncExecutor

__all__ = ["JobManager", "JobRecord", "JobState", "TERMINAL_STATES"]


class JobState:
    """The job lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

ALL_STATES = (JobState.QUEUED, JobState.RUNNING) + TERMINAL_STATES


@dataclass
class JobRecord:
    """One submitted job: identity, state, and (eventually) its result."""

    id: str
    job: Job
    key: str
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic completion stamp driving TTL eviction.
    _finished_mono: Optional[float] = None
    timeout: Optional[float] = None
    result: Optional[JobResult] = None
    future: Optional[JobFuture] = None

    @property
    def kind(self) -> str:
        return self.job.kind

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self) -> Dict[str, Any]:
        """The JSON status body of ``GET /v1/jobs/<id>``."""
        record: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "key": self.key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.result is not None:
            record["ok"] = self.result.ok
            record["attempts"] = self.result.attempts
            record["backend"] = self.result.backend
            if self.result.error is not None:
                record["error"] = {
                    "kind": self.result.error.kind,
                    "message": self.result.error.message,
                }
        return record


class JobManager:
    """Thread-safe in-memory job registry over an async executor.

    Parameters
    ----------
    jobs:
        Concurrency limit of the underlying
        :class:`~repro.service.async_executor.AsyncExecutor`.
    store:
        Shared persistent :class:`~repro.store.disk.ArtifactStore`
        (``None`` = in-memory caching only).
    retry / job_timeout:
        Server-side defaults applied to every job's session; a
        request-level ``timeout`` overrides ``job_timeout`` per job.
    result_ttl:
        Seconds a terminal record stays retrievable (default 1 hour).
    arch:
        Base architecture for jobs that carry none (sweep/explore use
        the same ``paper_case_study(1)`` template as the CLI).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        store: Optional[Any] = None,
        retry: Union[RetryPolicy, int, None] = None,
        job_timeout: Optional[float] = None,
        result_ttl: float = 3600.0,
        arch: Optional[Any] = None,
    ) -> None:
        self._executor = AsyncExecutor(jobs)
        self._store = store
        self._retry = retry
        self._job_timeout = job_timeout
        self._result_ttl = result_ttl
        self._base_arch = arch if arch is not None else paper_case_study(1)
        # RLock on purpose: Future.cancel() runs done-callbacks
        # synchronously in the cancelling thread, re-entering the lock.
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._shared_cache = CompilationCache() if store is None else None
        self._closed = False
        self._counter = 0
        #: Cumulative cache deltas over every finished job.
        self.cache_totals = {"memory_hits": 0, "store_hits": 0, "misses": 0}

    # -- registry -----------------------------------------------------

    def submit(self, job: Job, *, timeout: Optional[float] = None) -> JobRecord:
        """Queue one job; returns its (live) record."""
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is shut down")
            self._evict_expired()
            self._counter += 1
            record = JobRecord(
                id=uuid.uuid4().hex,
                job=job,
                key=job_key(job, self._counter),
                timeout=timeout,
            )
            self._records[record.id] = record
            future = self._executor.submit(self._execute, record)
            record.future = future
        future.add_done_callback(lambda fut: self._finalize(record, fut))
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        """The record for ``job_id`` (``None`` if unknown or evicted)."""
        with self._lock:
            self._evict_expired()
            return self._records.get(job_id)

    def list_records(self) -> list[JobRecord]:
        with self._lock:
            self._evict_expired()
            return list(self._records.values())

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a job; no-op on terminal records.

        Queued jobs never run; running jobs are marked cancelled and
        their eventual (discarded) result never overwrites the
        cancelled envelope — the computing thread is cooperative, not
        killable, exactly like :meth:`JobFuture.cancel`.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                return None
            if record.terminal:
                return record
            if record.future is not None and record.future.cancel():
                # Still queued: the done-callback fires synchronously
                # under this RLock and writes the cancelled envelope.
                return record
            self._mark_cancelled(record)
            return record

    def _mark_cancelled(self, record: JobRecord) -> None:
        record.state = JobState.CANCELLED
        record.result = JobResult(
            key=record.key,
            error=JobError(kind="Cancelled", message="job cancelled by client"),
        )
        record.finished_at = time.time()
        record._finished_mono = time.monotonic()

    def _evict_expired(self) -> None:
        if self._result_ttl is None:
            return
        now = time.monotonic()
        expired = [
            job_id
            for job_id, record in self._records.items()
            if record.terminal
            and record._finished_mono is not None
            and now - record._finished_mono > self._result_ttl
        ]
        for job_id in expired:
            del self._records[job_id]

    # -- execution ----------------------------------------------------

    def _job_cache(self) -> CompilationCache:
        if self._store is not None:
            # Fresh memory tier per job over the shared store: a warm
            # store shows up as cache_store_hits, never as phantom
            # memory hits from another client's job.
            return CompilationCache(store=self._store)
        assert self._shared_cache is not None
        return self._shared_cache

    def _execute(self, record: JobRecord) -> JobResult:
        with self._lock:
            if record.state == JobState.CANCELLED:
                return record.result or JobResult(key=record.key)
            record.state = JobState.RUNNING
            record.started_at = time.time()
        job = record.job
        arch = getattr(job, "arch", None)
        session = Session(
            arch if arch is not None else self._base_arch,
            cache=self._job_cache(),
            retry=self._retry,
            job_timeout=record.timeout
            if record.timeout is not None
            else self._job_timeout,
        )
        try:
            if job.kind in COMPOSITE_KINDS:
                return session.submit(job).result()
            results = list(session.map([job]))
            return results[0]
        finally:
            session.close()

    def _finalize(self, record: JobRecord, future: JobFuture) -> None:
        with self._lock:
            if record.state == JobState.CANCELLED:
                if record.result is None:  # cancelled while queued
                    self._mark_cancelled(record)
                else:
                    record.finished_at = time.time()
                    record._finished_mono = time.monotonic()
                return
            if future.cancelled():
                self._mark_cancelled(record)
                return
            exc = future.raw.exception()
            if exc is not None:
                record.state = JobState.FAILED
                record.result = JobResult(
                    key=record.key,
                    error=JobError(kind=type(exc).__name__, message=str(exc)),
                )
            else:
                result: JobResult = future.raw.result()
                record.result = result
                record.state = JobState.DONE if result.ok else JobState.FAILED
                self._accumulate(record.job.kind, result)
            record.finished_at = time.time()
            record._finished_mono = time.monotonic()

    def _accumulate(self, kind: str, result: JobResult) -> None:
        totals = self.cache_totals
        if result.value is not None and kind == "sweep":
            try:
                for sweep in result.value:
                    if sweep.baseline_cache is not None:
                        memory, store_hits, misses = sweep.baseline_cache
                        totals["memory_hits"] += memory
                        totals["store_hits"] += store_hits
                        totals["misses"] += misses
                    for point in sweep.points:
                        totals["memory_hits"] += point.cache_memory_hits
                        totals["store_hits"] += point.cache_store_hits
                        totals["misses"] += point.cache_misses
                return
            except (TypeError, AttributeError):  # pragma: no cover
                pass
        totals["memory_hits"] += result.cache_memory_hits
        totals["store_hits"] += result.cache_store_hits
        totals["misses"] += result.cache_misses

    # -- introspection ------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The JSON body of ``GET /v1/stats``."""
        with self._lock:
            self._evict_expired()
            by_state = {state: 0 for state in ALL_STATES}
            for record in self._records.values():
                by_state[record.state] += 1
            stats: Dict[str, Any] = {
                "jobs": by_state,
                "total_submitted": self._counter,
                "executor": {"name": self._executor.name, "jobs": self._executor.jobs},
                "cache": dict(self.cache_totals),
            }
            if self._store is not None:
                stats["store"] = self._store.stats().to_dict()
            return stats

    # -- lifecycle ----------------------------------------------------

    def shutdown(self, grace: Optional[float] = 10.0) -> None:
        """Stop accepting jobs, drain in-flight work, then cancel.

        Idempotent: a second call is a no-op.  Waits up to ``grace``
        seconds for non-terminal jobs, then cancels whatever is left
        (queued jobs never run; running jobs get cancelled envelopes).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = [r for r in self._records.values() if not r.terminal]
        deadline = None if grace is None else time.monotonic() + grace
        for record in pending:
            future = record.future
            if future is None:
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                future.raw.exception(timeout=remaining)
            except (cf.TimeoutError, cf.CancelledError):
                pass  # still in flight (or already cancelled) — handled below
        with self._lock:
            for record in self._records.values():
                if not record.terminal:
                    if record.future is not None:
                        record.future.cancel()
                    if not record.terminal:
                        self._mark_cancelled(record)
        self._executor.shutdown(wait=False, cancel_futures=True)
