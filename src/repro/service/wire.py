"""Versioned JSON wire codecs for the compile service.

The HTTP service and its client exchange jobs and result envelopes as
JSON riding the existing :mod:`repro.ir.serialize` vocabulary: graphs
travel as serialized IR, architectures and options as their artifact
records, compiled models as full artifact JSON.  Everything here is a
pure codec — no I/O, no execution — so both ends of the wire (and the
tests) share one definition of the protocol.

Fidelity notes
--------------
Verify reports are *not* wire-encodable (they hold live rule objects);
encoding a job with ``verify=True`` or a result carrying a report
raises :class:`WireError` / silently drops the report respectively —
callers that need verification run it locally on the reconstructed
artifact.  Custom :class:`~repro.explore.space.SearchSpace` or
:class:`~repro.explore.store.RunStore` instances likewise cannot
cross the wire; :class:`~repro.exec.jobs.ExploreJob` payloads carry
the ``max_extra_pes`` bound of the default space instead.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional

from ..exec.jobs import (
    CompileJob,
    EvaluateJob,
    Evaluation,
    ExploreJob,
    Job,
    JobError,
    JobResult,
    SweepJob,
)
from ..ir import serialize
from ..ir.graph import Graph

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "decode_job",
    "decode_result",
    "encode_job",
    "encode_result",
]

#: Version of the job/result wire format.  Bump on incompatible change.
WIRE_VERSION = 1


class WireError(ValueError):
    """A payload that cannot be encoded or decoded at this version."""


# ---------------------------------------------------------------------------
# shared fragments


def _encode_graph_ref(ref: Any) -> Dict[str, Any]:
    if isinstance(ref, Graph):
        return {"graph": serialize.dumps(ref)}
    if isinstance(ref, str):
        return {"model": ref}
    raise WireError(f"graph reference must be a Graph or model name, got {type(ref)!r}")


def _decode_graph_ref(record: Mapping[str, Any]) -> Any:
    if "graph" in record and record["graph"] is not None:
        return serialize.loads(record["graph"])
    return str(record["model"])


def _encode_options(options: Any) -> Optional[Dict[str, Any]]:
    return None if options is None else serialize.options_to_dict(options)


def _decode_options(record: Optional[Mapping[str, Any]]) -> Any:
    return None if record is None else serialize.options_from_dict(dict(record))


def _encode_arch(arch: Any) -> Optional[Dict[str, Any]]:
    return None if arch is None else serialize.arch_to_dict(arch)


def _decode_arch(record: Optional[Mapping[str, Any]]) -> Any:
    return None if record is None else serialize.arch_from_dict(dict(record))


def _encode_overrides(
    overrides: Optional[Mapping[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Sweep ``options_overrides``: JSON scalars plus ``granularity``."""
    if overrides is None:
        return None
    encoded: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key == "granularity" and dataclasses.is_dataclass(value):
            encoded[key] = {"__granularity__": dataclasses.asdict(value)}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            encoded[key] = value
        else:
            raise WireError(
                f"options override {key!r} of type {type(value).__name__} "
                "is not wire-encodable"
            )
    return encoded


def _decode_overrides(
    record: Optional[Mapping[str, Any]],
) -> Optional[Dict[str, Any]]:
    if record is None:
        return None
    from ..core.sets import SetGranularity

    decoded: Dict[str, Any] = {}
    for key, value in record.items():
        if isinstance(value, Mapping) and "__granularity__" in value:
            decoded[key] = SetGranularity(**value["__granularity__"])
        else:
            decoded[key] = value
    return decoded


def _encode_benchmark(ref: Any) -> Dict[str, Any]:
    if isinstance(ref, str):
        return {"model": ref}
    if dataclasses.is_dataclass(ref) and not isinstance(ref, type):
        return {"spec": dataclasses.asdict(ref)}
    raise WireError(f"benchmark must be a name or BenchmarkSpec, got {type(ref)!r}")


def _decode_benchmark(record: Mapping[str, Any]) -> Any:
    if "spec" in record and record["spec"] is not None:
        from ..models.zoo import BenchmarkSpec

        spec = dict(record["spec"])
        spec["input_shape"] = tuple(spec["input_shape"])
        return BenchmarkSpec(**spec)
    return str(record["model"])


def _reject_verify(job: Job) -> None:
    if getattr(job, "verify", False):
        raise WireError(
            "verify=True jobs are not wire-encodable (verify reports do not "
            "serialize); run the verifier locally on the returned artifact"
        )


# ---------------------------------------------------------------------------
# jobs


def encode_job(job: Job) -> Dict[str, Any]:
    """Encode one job description as a JSON-ready dict."""
    record: Dict[str, Any] = {"version": WIRE_VERSION, "kind": job.kind}
    if isinstance(job, (CompileJob, EvaluateJob)):
        _reject_verify(job)
        record["graph"] = _encode_graph_ref(job.graph)
        record["options"] = _encode_options(job.options)
        record["arch"] = _encode_arch(job.arch)
        record["assume_canonical"] = job.assume_canonical
        record["key"] = job.key
        if isinstance(job, EvaluateJob):
            record["want_energy"] = job.want_energy
        return record
    if isinstance(job, SweepJob):
        _reject_verify(job)
        record["benchmarks"] = [_encode_benchmark(b) for b in job.benchmarks]
        record["xs"] = None if job.xs is None else list(job.xs)
        record["options_overrides"] = _encode_overrides(job.options_overrides)
        if job.graphs:
            record["graphs"] = {
                name: serialize.dumps(graph) for name, graph in job.graphs.items()
            }
        else:
            record["graphs"] = None
        record["key"] = job.key
        return record
    if isinstance(job, ExploreJob):
        if job.space is not None:
            raise WireError(
                "custom SearchSpace instances are not wire-encodable; "
                "the server explores the default space (bounded by "
                "max_total_pes)"
            )
        if job.store is not None and not isinstance(job.store, str):
            raise WireError("RunStore instances are not wire-encodable")
        record["model"] = _encode_graph_ref(job.model)
        record["objectives"] = list(job.objectives)
        record["strategy"] = job.strategy
        record["strategy_options"] = (
            None if job.strategy_options is None else dict(job.strategy_options)
        )
        record["budget"] = job.budget
        record["seed"] = job.seed
        record["max_total_pes"] = job.max_total_pes
        record["key"] = job.key
        return record
    raise WireError(f"job kind {job.kind!r} is not wire-encodable")


def decode_job(record: Mapping[str, Any]) -> Job:
    """Decode one job description from its wire dict."""
    version = record.get("version")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version!r} (want {WIRE_VERSION})")
    kind = record.get("kind")
    if kind == "compile":
        return CompileJob(
            graph=_decode_graph_ref(record["graph"]),
            options=_decode_options(record.get("options")),
            arch=_decode_arch(record.get("arch")),
            assume_canonical=bool(record.get("assume_canonical", False)),
            key=record.get("key"),
        )
    if kind == "evaluate":
        return EvaluateJob(
            graph=_decode_graph_ref(record["graph"]),
            options=_decode_options(record.get("options")),
            arch=_decode_arch(record.get("arch")),
            assume_canonical=bool(record.get("assume_canonical", False)),
            want_energy=bool(record.get("want_energy", True)),
            key=record.get("key"),
        )
    if kind == "sweep":
        graphs_rec = record.get("graphs")
        graphs = (
            None
            if graphs_rec is None
            else {name: serialize.loads(text) for name, text in graphs_rec.items()}
        )
        xs = record.get("xs")
        return SweepJob(
            benchmarks=tuple(_decode_benchmark(b) for b in record["benchmarks"]),
            xs=None if xs is None else tuple(int(x) for x in xs),
            options_overrides=_decode_overrides(record.get("options_overrides")),
            graphs=graphs,
            key=record.get("key"),
        )
    if kind == "explore":
        max_extra_pes = record.get("max_extra_pes")
        if max_extra_pes is not None:
            from ..explore import default_space

            space = default_space(max_extra_pes=int(max_extra_pes))
        else:
            space = None
        return ExploreJob(
            model=_decode_graph_ref(record["model"]),
            space=space,
            objectives=tuple(record.get("objectives", ("latency", "energy"))),
            strategy=str(record.get("strategy", "random")),
            strategy_options=record.get("strategy_options"),
            budget=int(record.get("budget", 40)),
            seed=int(record.get("seed", 0)),
            max_total_pes=record.get("max_total_pes"),
            key=record.get("key"),
        )
    raise WireError(f"unknown job kind {kind!r}")


# ---------------------------------------------------------------------------
# values


def _encode_metrics(metrics: Any) -> Dict[str, Any]:
    return dataclasses.asdict(metrics)


def _decode_metrics(record: Mapping[str, Any]) -> Any:
    from ..sim.metrics import Metrics

    fields = dict(record)
    fields["per_layer_busy"] = {
        k: int(v) for k, v in (fields.get("per_layer_busy") or {}).items()
    }
    return Metrics(**fields)


def _encode_energy(energy: Any) -> Optional[Dict[str, Any]]:
    return None if energy is None else dataclasses.asdict(energy)


def _decode_energy(record: Optional[Mapping[str, Any]]) -> Any:
    if record is None:
        return None
    from ..sim.energy import EnergyReport

    return EnergyReport(**dict(record))


def _encode_evaluation(value: Evaluation) -> Dict[str, Any]:
    return {
        "metrics": _encode_metrics(value.metrics),
        "energy": _encode_energy(value.energy),
    }


def _decode_evaluation(record: Mapping[str, Any]) -> Evaluation:
    return Evaluation(
        metrics=_decode_metrics(record["metrics"]),
        energy=_decode_energy(record.get("energy")),
    )


def _encode_config_point(point: Any) -> Dict[str, Any]:
    return {
        "benchmark": point.benchmark,
        "config": point.config,
        "extra_pes": point.extra_pes,
        "metrics": _encode_metrics(point.metrics),
        "speedup": point.speedup,
        "utilization": point.utilization,
        "energy_uj": point.energy_uj,
        "cache_memory_hits": point.cache_memory_hits,
        "cache_store_hits": point.cache_store_hits,
        "cache_misses": point.cache_misses,
        "attempts": point.attempts,
        "backend": point.backend,
    }


def _decode_config_point(record: Mapping[str, Any]) -> Any:
    from ..analysis.sweep import ConfigPoint

    return ConfigPoint(
        benchmark=record["benchmark"],
        config=record["config"],
        extra_pes=int(record["extra_pes"]),
        metrics=_decode_metrics(record["metrics"]),
        speedup=float(record["speedup"]),
        utilization=float(record["utilization"]),
        energy_uj=record.get("energy_uj"),
        cache_memory_hits=int(record.get("cache_memory_hits", 0)),
        cache_store_hits=int(record.get("cache_store_hits", 0)),
        cache_misses=int(record.get("cache_misses", 0)),
        attempts=int(record.get("attempts", 1)),
        backend=str(record.get("backend", "inline")),
    )


def _encode_job_error(error: Optional[JobError]) -> Optional[Dict[str, Any]]:
    if error is None:
        return None
    return {
        "kind": error.kind,
        "message": error.message,
        "traceback": error.traceback,
    }


def _decode_job_error(record: Optional[Mapping[str, Any]]) -> Optional[JobError]:
    if record is None:
        return None
    return JobError(
        kind=str(record["kind"]),
        message=str(record["message"]),
        traceback=str(record.get("traceback", "")),
    )


def _encode_failed_point(failure: Any) -> Dict[str, Any]:
    return {
        "benchmark": failure.benchmark,
        "config": failure.config,
        "extra_pes": failure.extra_pes,
        "error": _encode_job_error(failure.error),
        "attempts": failure.attempts,
        "backend": failure.backend,
    }


def _decode_failed_point(record: Mapping[str, Any]) -> Any:
    from ..analysis.sweep import FailedPoint

    return FailedPoint(
        benchmark=record["benchmark"],
        config=record["config"],
        extra_pes=int(record["extra_pes"]),
        error=_decode_job_error(record["error"]),
        attempts=int(record.get("attempts", 1)),
        backend=str(record.get("backend", "inline")),
    )


def _encode_sweep_result(result: Any) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "min_pes": result.min_pes,
        "baseline": _encode_metrics(result.baseline),
        "points": [_encode_config_point(p) for p in result.points],
        "failures": [_encode_failed_point(f) for f in result.failures],
        "baseline_energy_uj": result.baseline_energy_uj,
        "baseline_cache": (
            None if result.baseline_cache is None else list(result.baseline_cache)
        ),
    }


def _decode_sweep_result(record: Mapping[str, Any]) -> Any:
    from ..analysis.sweep import SweepResult

    baseline_cache = record.get("baseline_cache")
    return SweepResult(
        benchmark=record["benchmark"],
        min_pes=int(record["min_pes"]),
        baseline=_decode_metrics(record["baseline"]),
        points=[_decode_config_point(p) for p in record.get("points", [])],
        failures=[_decode_failed_point(f) for f in record.get("failures", [])],
        baseline_energy_uj=record.get("baseline_energy_uj"),
        baseline_cache=(
            None if baseline_cache is None else tuple(int(n) for n in baseline_cache)
        ),
    )


def _encode_exploration(value: Any) -> Dict[str, Any]:
    return {
        "strategy": value.strategy,
        "budget": value.budget,
        "objectives": list(value.objectives),
        "frontier": [
            {"key": e.key, "values": dict(e.values), "point": dict(e.point)}
            for e in value.frontier.entries()
        ],
        "results": [dataclasses.asdict(r) for r in value.results],
        "counters": dataclasses.asdict(value.counters),
        "store_path": value.store_path,
        "store_size": value.store_size,
    }


def _decode_exploration(record: Mapping[str, Any]) -> Any:
    from ..explore.engine import ExplorationCounters, ExplorationResult
    from ..explore.evaluator import EvaluationResult
    from ..explore.pareto import ParetoFrontier, resolve_objectives

    objectives = tuple(record["objectives"])
    frontier = ParetoFrontier(resolve_objectives(objectives))
    for entry in record.get("frontier", []):
        frontier.add(entry["key"], dict(entry["values"]), dict(entry["point"]))
    return ExplorationResult(
        strategy=str(record["strategy"]),
        budget=int(record["budget"]),
        objectives=objectives,
        frontier=frontier,
        results=[EvaluationResult(**dict(r)) for r in record.get("results", [])],
        counters=ExplorationCounters(**dict(record.get("counters", {}))),
        store_path=record.get("store_path"),
        store_size=int(record.get("store_size", 0)),
    )


def _encode_value(kind: str, value: Any) -> Any:
    if value is None:
        return None
    if kind == "compile":
        return {"compiled": serialize.dumps_compiled(value)}
    if kind == "evaluate":
        return {"evaluation": _encode_evaluation(value)}
    if kind == "sweep":
        return {"sweeps": [_encode_sweep_result(r) for r in value]}
    if kind == "explore":
        return {"exploration": _encode_exploration(value)}
    raise WireError(f"result value for job kind {kind!r} is not wire-encodable")


def _decode_value(kind: str, record: Any) -> Any:
    if record is None:
        return None
    if kind == "compile":
        return serialize.loads_compiled(record["compiled"])
    if kind == "evaluate":
        return _decode_evaluation(record["evaluation"])
    if kind == "sweep":
        return [_decode_sweep_result(r) for r in record["sweeps"]]
    if kind == "explore":
        return _decode_exploration(record["exploration"])
    raise WireError(f"unknown result kind {kind!r}")


# ---------------------------------------------------------------------------
# result envelopes


def encode_result(kind: str, result: JobResult) -> Dict[str, Any]:
    """Encode one result envelope (verify reports are dropped)."""
    return {
        "version": WIRE_VERSION,
        "kind": kind,
        "key": result.key,
        "value": _encode_value(kind, result.value),
        "timings": dict(result.timings),
        "diagnostics": list(result.diagnostics),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cache_store_hits": result.cache_store_hits,
        "cache_stages": {
            stage: list(delta) for stage, delta in result.cache_stages.items()
        },
        "error": _encode_job_error(result.error),
        "attempts": result.attempts,
        "backend": result.backend,
    }


def decode_result(record: Mapping[str, Any]) -> JobResult:
    """Decode one result envelope from its wire dict."""
    version = record.get("version")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version!r} (want {WIRE_VERSION})")
    kind = str(record.get("kind"))
    return JobResult(
        key=str(record["key"]),
        value=_decode_value(kind, record.get("value")),
        timings=dict(record.get("timings", {})),
        diagnostics=tuple(record.get("diagnostics", ())),
        cache_hits=int(record.get("cache_hits", 0)),
        cache_misses=int(record.get("cache_misses", 0)),
        error=_decode_job_error(record.get("error")),
        cache_store_hits=int(record.get("cache_store_hits", 0)),
        cache_stages={
            stage: tuple(int(n) for n in delta)
            for stage, delta in record.get("cache_stages", {}).items()
        },
        attempts=int(record.get("attempts", 1)),
        backend=str(record.get("backend", "inline")),
    )
