"""Compile-as-a-service: job-queue HTTP service, async executor, client.

The service layer turns the library into a shared daemon::

    # server process
    from repro.service import CompileServer
    with CompileServer(port=8787, store_path="/var/cache/repro").start() as srv:
        ...

    # any client process
    from repro.service import Client
    client = Client("http://127.0.0.1:8787")
    handle = client.sweep(["tinyyolov3"], xs=(4, 8))
    results = handle.result().unwrap()       # list[SweepResult]

Two executors register on import of :mod:`repro.exec`:

``async``
    :class:`AsyncExecutor` — an asyncio event loop multiplexing many
    queued jobs over a bounded worker pool (the server's engine).
``remote``
    :class:`RemoteExecutor` — offloads submitted jobs to a running
    server (``Session(executor="remote")`` with ``$REPRO_SERVER_URL``).
"""

from .async_executor import AsyncExecutor
from .client import Client, RemoteError, RemoteExecutor, RemoteJobHandle
from .manager import JobManager, JobRecord, JobState, TERMINAL_STATES
from .server import CompileServer
from .wire import WIRE_VERSION, WireError, decode_job, decode_result, encode_job, encode_result

__all__ = [
    "AsyncExecutor",
    "Client",
    "CompileServer",
    "JobManager",
    "JobRecord",
    "JobState",
    "RemoteError",
    "RemoteExecutor",
    "RemoteJobHandle",
    "TERMINAL_STATES",
    "WIRE_VERSION",
    "WireError",
    "decode_job",
    "decode_result",
    "encode_job",
    "encode_result",
]
